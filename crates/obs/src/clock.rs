//! Injectable time sources.
//!
//! The recorder never calls `Instant::now()` directly: it reads whatever
//! [`Clock`] it was enabled with. Production uses [`RealClock`]; tests
//! that must stay bitwise-deterministic (chaos matrix, golden traces)
//! inject a [`FakeClock`] and advance it by hand, so two runs of the same
//! seed produce byte-identical trace files.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary (per-clock) origin.
    fn now_us(&self) -> u64;
}

/// Wall clock anchored at construction time.
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Manually advanced clock for deterministic tests.
///
/// Every read also auto-advances by `tick_us` (0 by default), which gives
/// span-heavy code distinct, strictly ordered timestamps without any test
/// choreography.
pub struct FakeClock {
    now: AtomicU64,
    tick_us: u64,
}

impl FakeClock {
    pub fn new() -> Self {
        FakeClock {
            now: AtomicU64::new(0),
            tick_us: 0,
        }
    }

    /// A clock that advances by `tick_us` on every read.
    pub fn ticking(tick_us: u64) -> Self {
        FakeClock {
            now: AtomicU64::new(0),
            tick_us,
        }
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Jump to an absolute microsecond timestamp.
    pub fn set(&self, us: u64) {
        self.now.store(us, Ordering::SeqCst);
    }
}

impl Default for FakeClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for FakeClock {
    fn now_us(&self) -> u64 {
        self.now.fetch_add(self.tick_us, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_only_on_request() {
        let c = FakeClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(7);
        assert_eq!(c.now_us(), 7);
        c.set(100);
        assert_eq!(c.now_us(), 100);
    }

    #[test]
    fn ticking_clock_orders_reads() {
        let c = FakeClock::ticking(3);
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 3);
        assert_eq!(c.now_us(), 6);
    }
}
