//! Deterministic discrete-event cluster simulator.
//!
//! `janus-netsim` executes a [`Graph`] of compute, transfer, and credit
//! tasks against a set of capacity-constrained links (produced by
//! [`janus-topology`]) and reports exact task timings, per-link byte
//! counts, and per-domain memory high-water marks.
//!
//! # Model
//!
//! * **Transfers** are fluid flows across a route of directed links.
//!   All concurrently active flows share every link max-min fairly
//!   (progressive filling, recomputed at every flow arrival/departure),
//!   which is the standard flow-level approximation of congestion-controlled
//!   transports such as RDMA RC and NCCL rings.
//! * **Compute** occupies a serial [`LaneId`] for a fixed duration —
//!   one lane per GPU models the CUDA compute stream; additional lanes can
//!   serialize fetch issue per worker (the paper's one-pull-at-a-time
//!   Intra-Node Scheduler).
//! * **Credits** model the paper's credit-based buffer (§5.1.1): an
//!   [`Work::AcquireCredits`] task blocks until its pool has capacity;
//!   [`Work::ReleaseCredits`] returns it.
//! * **Memory** deltas attached to tasks track per-domain usage; the
//!   simulator records the high-water mark so engines can detect the OOM
//!   the paper observes in Figure 16.
//!
//! The simulator is fully deterministic: identical graphs produce
//! identical results, with ties broken by task priority and insertion
//! order.
//!
//! ```
//! use janus_netsim::{GraphBuilder, Work, simulate};
//!
//! // Two flows share one 10 B/s link: each gets 5 B/s, so 50 bytes take 10 s.
//! let mut g = GraphBuilder::new(1, 0);
//! g.task(Work::transfer(vec![0.into()], 50.0), &[]);
//! g.task(Work::transfer(vec![0.into()], 50.0), &[]);
//! let result = simulate(&g.build(), &[10.0]).unwrap();
//! assert!((result.makespan - 10.0).abs() < 1e-9);
//! ```

pub mod fair;
pub mod graph;
pub mod migrate;
pub mod sim;
pub mod trace;

pub use graph::{Graph, GraphBuilder, LaneId, PoolId, TaskId, TaskSpec, Work};
pub use migrate::{price_migration, MigrationEstimate, MigrationFlow, MigrationNet};
pub use sim::{simulate, SimError};
pub use trace::{SimResult, TaskRecord};
