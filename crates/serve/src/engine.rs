//! The disaggregated serving runtime.
//!
//! Rank 0 is the *frontend* (the attention worker of a disaggregated
//! deployment): it owns the model, admits requests through the
//! continuous [`Batcher`], gates each batch, splits every expert's
//! token list into plan-fixed chunks, and dispatches each chunk to one
//! replica over the wire (`TokenDispatch`). Expert workers (ranks
//! `1..`) own no weights at startup — their first dispatch for an
//! expert triggers a `PullRequest` answered by the frontend, cached in
//! the training [`CacheManager`] — run the FFN, and stream the rows
//! back (`TokenReturn`).
//!
//! Failover: the mesh is liveness-monitored, so a dead expert worker
//! surfaces as [`CommError::PeerDead`] instead of a hang. The frontend
//! then *acknowledges* the death ([`Transport::acknowledge_dead`]) so
//! the survivors keep talking, and re-dispatches the dead worker's
//! unresolved chunks to the expert's next live replica. Chunk
//! boundaries depend only on the [`ReplicaPlan`] — never on who is
//! alive — and a re-dispatched chunk reuses its sequence number, so a
//! late return from the original target is bitwise identical and
//! accepting either copy is safe.
//!
//! Bitwise contract (asserted by `tests/chaos_serving.rs`): the
//! response of a request equals [`ServeModel::forward_reference`] of
//! its tokens exactly, regardless of batch composition, faults, or
//! failover — expert kernels are row-independent and the combine loop
//! folds expert outputs in fixed (token, choice-rank) order.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use janus_comm::comm::Comm;
use janus_comm::liveness::{monitored_mesh, LivenessConfig};
use janus_comm::message::Message;
use janus_comm::runtime::run_on_result;
use janus_comm::transport::{CommError, Transport, TransportStats};
use janus_core::exec::weights::{
    expert_from_bytes, expert_to_bytes, tokens_from_bytes, tokens_to_bytes, Slot,
};
use janus_core::queue::{CacheManager, CacheStats};
use janus_moe::expert::{ExpertFfn, ExpertScratch};
use janus_obs::SpanMeta;
use janus_tensor::Matrix;

use crate::batcher::Batcher;
use crate::model::ServeModel;
use crate::replica::ReplicaPlan;
use crate::workload::ServeWorkload;

/// How often the frontend's collect loop wakes to notice liveness
/// transitions when no return is arriving.
const RETURN_POLL: Duration = Duration::from_millis(50);

/// Engine knobs independent of the workload.
#[derive(Debug, Clone, Default)]
pub struct ServeOpts {
    /// Emulated accelerator occupancy: minimum service time per token on
    /// an expert worker, microseconds. Zero for functional tests; the
    /// SLO report sets it so queueing at hot experts is visible.
    pub service_floor_us: u64,
    /// Open-loop pacing: when set, arrival step `s` of the workload
    /// becomes wall-clock time `s × step` and latency is measured
    /// arrival-to-combine. When `None`, admission is step-counted and
    /// deterministic (functional / chaos runs).
    pub pacing_step: Option<Duration>,
}

/// Kill switch for crash tests: worker `rank` panics upon receiving its
/// `after_dispatches`-th dispatch (before returning any rows for it).
#[derive(Debug, Clone, Copy)]
pub struct CrashHook {
    /// Worker rank that dies.
    pub rank: usize,
    /// Which received dispatch triggers the panic (1-based).
    pub after_dispatches: u64,
}

/// Everything a serving run needs.
pub struct ServeSpec<'a> {
    /// The served model (held by the frontend; workers pull from it).
    pub model: &'a ServeModel,
    /// The request stream.
    pub workload: &'a ServeWorkload,
    /// Replica counts and placement.
    pub plan: &'a ReplicaPlan,
    /// Continuous-batching token budget per step.
    pub max_batch_tokens: usize,
    /// Engine knobs.
    pub opts: ServeOpts,
    /// Optional injected crash.
    pub crash: Option<CrashHook>,
}

/// What the frontend measured.
#[derive(Debug, Clone)]
pub struct FrontendOutcome {
    /// Response matrix per request, workload order.
    pub responses: Vec<Matrix>,
    /// Arrival-to-combine latency per request, microseconds.
    pub latencies_us: Vec<u64>,
    /// Observed gate histogram over the whole run.
    pub hist: Vec<usize>,
    /// Engine steps that dispatched at least one chunk.
    pub batches: u64,
    /// Chunks dispatched (first attempts).
    pub dispatches: u64,
    /// Chunks re-dispatched after a replica death.
    pub redispatches: u64,
    /// Worker deaths the frontend failed over from.
    pub failovers: u64,
    /// Weight pull requests answered.
    pub pulls_served: u64,
    /// Transport-stack counters of the frontend endpoint (fault
    /// injection / reliability activity — the chaos matrix's
    /// non-vacuity evidence).
    pub comm_stats: TransportStats,
}

/// What one expert worker measured.
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    /// The worker's rank.
    pub rank: usize,
    /// Dispatches served (token chunks returned).
    pub served: u64,
    /// Weight-cache statistics (pulls deduplicated per expert).
    pub cache: CacheStats,
    /// Transport-stack counters of this worker's endpoint.
    pub comm_stats: TransportStats,
}

/// Outcome of a whole serving run.
#[derive(Debug)]
pub struct ServeRun {
    /// The frontend's measurements.
    pub frontend: FrontendOutcome,
    /// Per expert worker (index 0 = rank 1): its outcome, or the panic
    /// message if it died.
    pub workers: Vec<Result<WorkerOutcome, String>>,
}

impl ServeRun {
    /// Transport counters summed over every surviving rank.
    pub fn total_comm_stats(&self) -> TransportStats {
        let mut sum = self.frontend.comm_stats;
        for w in self.workers.iter().flatten() {
            sum.add(&w.comm_stats);
        }
        sum
    }
}

enum Role {
    Frontend(FrontendOutcome),
    Worker(WorkerOutcome),
}

/// Run the serving plane over the given transport mesh (one endpoint
/// per rank; `endpoints[0]` is the frontend). The mesh should be
/// liveness-monitored if failover is expected to work.
pub fn serve_on<T: Transport + 'static>(endpoints: Vec<T>, spec: &ServeSpec) -> ServeRun {
    assert_eq!(
        endpoints.len(),
        spec.plan.world(),
        "mesh size must match the replica plan"
    );
    let mut results = run_on_result(endpoints, |comm| {
        if comm.rank() == 0 {
            Role::Frontend(run_frontend(&comm, spec))
        } else {
            Role::Worker(run_worker(&comm, spec))
        }
    });
    let frontend = match results.remove(0) {
        Ok(Role::Frontend(f)) => f,
        Ok(Role::Worker(_)) => unreachable!("rank 0 is the frontend"),
        Err(e) => panic!("frontend failed: {e}"),
    };
    let workers = results
        .into_iter()
        .map(|r| match r {
            Ok(Role::Worker(w)) => Ok(w),
            Ok(Role::Frontend(_)) => unreachable!("only rank 0 is the frontend"),
            Err(e) => Err(e),
        })
        .collect();
    ServeRun { frontend, workers }
}

/// [`serve_on`] over an in-process liveness-monitored channel mesh —
/// the entry point of unit, chaos, and crash tests.
pub fn serve_local(spec: &ServeSpec) -> ServeRun {
    serve_on(
        monitored_mesh(spec.plan.world(), LivenessConfig::default()),
        spec,
    )
}

/// Route the whole workload through the gate once (the profiling pass a
/// deployment would run on a traffic sample) and derive the replica
/// plan for `budget` replicas from the observed histogram.
pub fn plan_from_workload(
    model: &ServeModel,
    workload: &ServeWorkload,
    budget: usize,
) -> (Vec<usize>, ReplicaPlan) {
    let mut hist = vec![0usize; model.experts.len()];
    for req in &workload.requests {
        for (e, c) in model.gate.route(&req.tokens).histogram().iter().enumerate() {
            hist[e] += c;
        }
    }
    let plan = ReplicaPlan::from_histogram(&hist, budget);
    (hist, plan)
}

/// One in-flight chunk of an expert's token batch.
struct Dispatch {
    seq: u32,
    expert: usize,
    /// Replica index the chunk is *planned* for (failover may move it).
    replica: usize,
    /// Rank currently serving it.
    target: usize,
    slots: Vec<Slot>,
    rows: Matrix,
    out: Option<Matrix>,
}

fn run_frontend<T: Transport>(comm: &Comm<T>, spec: &ServeSpec) -> FrontendOutcome {
    let rec = janus_obs::global();
    let model = spec.model;
    let wl = spec.workload;
    let plan = spec.plan;
    let h = model.hidden_dim();
    let n = wl.requests.len();
    let start = Instant::now();

    let mut batcher = Batcher::new(spec.max_batch_tokens);
    let mut admit_at: Vec<Instant> = vec![start; n];
    let mut responses: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
    let mut latencies = vec![0u64; n];
    let mut hist = vec![0usize; model.experts.len()];
    let mut alive = vec![true; plan.world()];
    let mut next_arrival = 0usize;
    let mut next_seq: u32 = 0;
    let mut step: u64 = 0;
    let mut completed = 0usize;
    let (mut batches, mut dispatches, mut redispatches) = (0u64, 0u64, 0u64);
    let (mut failovers, mut pulls_served) = (0u64, 0u64);

    while completed < n {
        // --- admit: continuous batching pulls in everything that has
        // arrived since the last step.
        match spec.opts.pacing_step {
            None => {
                while next_arrival < n && wl.requests[next_arrival].arrival_step <= step {
                    let req = &wl.requests[next_arrival];
                    admit_at[next_arrival] = Instant::now();
                    batcher.admit(next_arrival, req.id, req.tokens.rows());
                    next_arrival += 1;
                }
            }
            Some(pace) => loop {
                let due = |i: usize| start + pace * (wl.requests[i].arrival_step as u32 + 1);
                while next_arrival < n && Instant::now() >= due(next_arrival) {
                    let req = &wl.requests[next_arrival];
                    admit_at[next_arrival] = Instant::now();
                    batcher.admit(next_arrival, req.id, req.tokens.rows());
                    next_arrival += 1;
                }
                if batcher.depth() > 0 || next_arrival >= n {
                    break;
                }
                // Open loop: idle until the next arrival is due, staying
                // responsive to weight pulls in the meantime.
                let _ = comm
                    .service_pass(|from, msg| serve_pull(comm, model, from, msg, &mut pulls_served))
                    .map_err(|e| frontend_comm_fault(e, &mut alive, comm, &mut failovers));
                std::thread::sleep(Duration::from_micros(200));
            },
        }
        let batch = batcher.next_batch();
        if batch.is_empty() {
            step += 1;
            continue;
        }
        batches += 1;
        let _span = rec.span(|| SpanMeta::new(format!("serve/batch/{batches}"), "serve", 0, "fe"));

        // --- concatenate the batch and gate it.
        let mut offsets = Vec::with_capacity(batch.len());
        let mut total_rows = 0usize;
        for &(ri, _) in &batch {
            offsets.push(total_rows);
            total_rows += wl.requests[ri].tokens.rows();
        }
        let mut x = Matrix::zeros(total_rows, h);
        for (&(ri, _), &off) in batch.iter().zip(&offsets) {
            let t = &wl.requests[ri].tokens;
            for r in 0..t.rows() {
                x.row_mut(off + r).copy_from_slice(t.row(r));
            }
        }
        let routing = model.gate.route(&x);
        for (e, c) in routing.histogram().iter().enumerate() {
            hist[e] += c;
        }

        // --- split each expert's token list into plan-fixed chunks.
        // Boundaries depend only on the plan, never on liveness, so a
        // crash run partitions rows identically to a clean one.
        let mut ds: Vec<Dispatch> = Vec::new();
        // locator[expert]: token row in `x` -> (dispatch, row in chunk).
        let mut locator: Vec<HashMap<usize, (usize, usize)>> =
            vec![HashMap::new(); model.experts.len()];
        for (e, loc) in locator.iter_mut().enumerate() {
            let toks = routing.tokens_for(e);
            if toks.is_empty() {
                continue;
            }
            let per = toks.len().div_ceil(plan.counts[e]);
            for (replica, chunk) in toks.chunks(per).enumerate() {
                let row_idx: Vec<usize> = chunk.iter().map(|&(t, _)| t).collect();
                let slots: Vec<Slot> = chunk
                    .iter()
                    .map(|&(t, w)| (t as u32, e as u32, w))
                    .collect();
                let di = ds.len();
                for (j, &(t, _)) in chunk.iter().enumerate() {
                    loc.insert(t, (di, j));
                }
                ds.push(Dispatch {
                    seq: {
                        let s = next_seq;
                        next_seq += 1;
                        s
                    },
                    expert: e,
                    replica,
                    target: 0,
                    slots,
                    rows: x.gather_rows(&row_idx),
                    out: None,
                });
            }
        }

        // --- dispatch every chunk to its replica (or a live stand-in).
        for d in ds.iter_mut() {
            send_dispatch(comm, d, plan, &mut alive, &mut failovers);
            dispatches += 1;
        }

        // --- collect returns, answering weight pulls while waiting and
        // failing over when a replica dies.
        let by_seq: HashMap<u32, usize> = ds.iter().enumerate().map(|(i, d)| (d.seq, i)).collect();
        let mut outstanding = ds.len();
        while outstanding > 0 {
            let got = comm.recv_match_or_consume_deadline(
                |_, m| matches!(m, Message::TokenReturn { .. }),
                |from, m| serve_pull(comm, model, from, m, &mut pulls_served),
                Instant::now() + RETURN_POLL,
            );
            match got {
                Ok(Some((_, Message::TokenReturn { seq, data, .. }))) => {
                    if let Some(&di) = by_seq.get(&seq) {
                        if ds[di].out.is_none() {
                            let (slots, y) =
                                tokens_from_bytes(data).expect("well-formed token return");
                            debug_assert_eq!(slots, ds[di].slots);
                            ds[di].out = Some(y);
                            outstanding -= 1;
                        }
                    }
                }
                Ok(Some(_)) => unreachable!("pred admits only TokenReturn"),
                Ok(None) => {} // poll tick; loop re-blocks
                Err(e) => {
                    let dead = frontend_comm_fault(e, &mut alive, comm, &mut failovers);
                    for d in &mut ds {
                        if d.out.is_none() && d.target == dead {
                            redispatches += 1;
                            send_dispatch(comm, d, plan, &mut alive, &mut failovers);
                        }
                    }
                }
            }
        }

        // --- combine, fixed (token, choice-rank) order, and complete
        // the batch's requests.
        for (bi, &(ri, _)) in batch.iter().enumerate() {
            let req = &wl.requests[ri];
            let off = offsets[bi];
            let mut out = Matrix::zeros(req.tokens.rows(), h);
            for r in 0..req.tokens.rows() {
                let t = off + r;
                let dst = out.row_mut(r);
                for (k, &e) in routing.experts[t].iter().enumerate() {
                    let w = routing.weights[t][k];
                    let (di, row) = locator[e][&t];
                    let src = ds[di].out.as_ref().expect("chunk resolved").row(row);
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
            }
            responses[ri] = Some(out);
            latencies[ri] = admit_at[ri].elapsed().as_micros() as u64;
            rec.observe("serve/latency_us", latencies[ri]);
            completed += 1;
        }
        step += 1;
    }

    for (rank, &ok) in alive.iter().enumerate().skip(1) {
        if ok {
            let _ = comm.send(rank, Message::Shutdown);
        }
    }
    let _ = comm.transport().flush();

    rec.count("serve/requests", n as u64);
    rec.count("serve/failovers", failovers);
    let comm_stats = comm.transport().stats();
    FrontendOutcome {
        responses: responses
            .into_iter()
            .map(|r| r.expect("completed"))
            .collect(),
        latencies_us: latencies,
        hist,
        batches,
        dispatches,
        redispatches,
        failovers,
        pulls_served,
        comm_stats,
    }
}

/// Answer a weight pull on the frontend; consumes (drops) anything else
/// that is not claimable — stale `TokenReturn`s of already re-served
/// chunks are bitwise duplicates, so dropping them is safe.
fn serve_pull<T: Transport>(
    comm: &Comm<T>,
    model: &ServeModel,
    from: usize,
    msg: &Message,
    pulls_served: &mut u64,
) -> bool {
    if let Message::PullRequest {
        block,
        expert,
        nonce,
    } = msg
    {
        let data = expert_to_bytes(&model.experts[*expert as usize]);
        // A send to a peer that died mid-pull is fine to drop: the
        // replica taking over re-pulls under its own nonce.
        let _ = comm.send(
            from,
            Message::ExpertPayload {
                block: *block,
                expert: *expert,
                nonce: *nonce,
                data,
            },
        );
        *pulls_served += 1;
    }
    true
}

/// Classify a frontend-side comm error: a peer death becomes a
/// failover (acknowledged so the survivors keep going); anything else
/// is fatal.
fn frontend_comm_fault<T: Transport>(
    err: CommError,
    alive: &mut [bool],
    comm: &Comm<T>,
    failovers: &mut u64,
) -> usize {
    match err {
        CommError::PeerDead { rank, .. } => {
            if alive[rank] {
                alive[rank] = false;
                *failovers += 1;
                comm.transport().acknowledge_dead(rank);
            }
            rank
        }
        e => panic!("frontend comm failed: {e}"),
    }
}

/// (Re)send one chunk to the first live replica of its expert, starting
/// from its planned replica and wrapping around.
fn send_dispatch<T: Transport>(
    comm: &Comm<T>,
    d: &mut Dispatch,
    plan: &ReplicaPlan,
    alive: &mut [bool],
    failovers: &mut u64,
) {
    loop {
        let homes = &plan.homes[d.expert];
        let target = homes
            .iter()
            .cycle()
            .skip(d.replica)
            .take(homes.len())
            .copied()
            .find(|&r| alive[r])
            .unwrap_or_else(|| panic!("no live replica left for expert {}", d.expert));
        let data = tokens_to_bytes(&d.slots, &d.rows);
        match comm.send(
            target,
            Message::TokenDispatch {
                block: 0,
                seq: d.seq,
                data,
            },
        ) {
            Ok(()) => {
                d.target = target;
                return;
            }
            Err(e) => {
                frontend_comm_fault(e, alive, comm, failovers);
            }
        }
    }
}

fn run_worker<T: Transport>(comm: &Comm<T>, spec: &ServeSpec) -> WorkerOutcome {
    let rec = janus_obs::global();
    let cache: CacheManager<ExpertFfn> = CacheManager::new();
    let mut scratch = ExpertScratch::new();
    let mut served = 0u64;
    let mut next_nonce: u32 = (comm.rank() as u32) << 16;

    loop {
        match comm.recv_any() {
            Ok((_, Message::Shutdown)) => break,
            Ok((_, Message::TokenDispatch { seq, data, .. })) => {
                let t0 = Instant::now();
                let (slots, rows) = tokens_from_bytes(data).expect("well-formed dispatch");
                let expert = slots.first().expect("non-empty dispatch").1 as usize;
                let weights = pull_weights(comm, &cache, expert, &mut next_nonce);
                served += 1;
                if let Some(crash) = spec.crash {
                    if comm.rank() == crash.rank && served >= crash.after_dispatches {
                        panic!(
                            "injected crash: expert worker rank {} on dispatch {served}",
                            comm.rank()
                        );
                    }
                }
                scratch.set_input(&rows);
                {
                    let _s = rec.span(|| {
                        SpanMeta::new(
                            format!("serve/expert/e{expert}"),
                            "serve",
                            comm.rank() as u32,
                            "worker",
                        )
                    });
                    weights.forward_scratch(&mut scratch);
                }
                if spec.opts.service_floor_us > 0 {
                    let floor =
                        Duration::from_micros(spec.opts.service_floor_us * rows.rows() as u64);
                    let elapsed = t0.elapsed();
                    if elapsed < floor {
                        std::thread::sleep(floor - elapsed);
                    }
                }
                let data = tokens_to_bytes(&slots, &scratch.y);
                match comm.send(
                    0,
                    Message::TokenReturn {
                        block: 0,
                        seq,
                        data,
                    },
                ) {
                    Ok(()) => {}
                    Err(CommError::PeerDead { .. }) => break, // frontend gone
                    Err(e) => panic!("worker send failed: {e}"),
                }
            }
            Ok(_) => {} // stray (e.g. duplicate payload): ignore
            Err(CommError::PeerDead { rank, .. }) if rank != 0 => {
                // A sibling replica died; not our problem — keep serving.
                comm.transport().acknowledge_dead(rank);
            }
            Err(CommError::PeerDead { .. }) => break, // frontend gone
            Err(e) => panic!("worker recv failed: {e}"),
        }
    }
    WorkerOutcome {
        rank: comm.rank(),
        served,
        cache: cache.stats(),
        comm_stats: comm.transport().stats(),
    }
}

/// Fetch an expert's weights through the cache, pulling from the
/// frontend on a miss. Sibling deaths observed mid-pull are
/// acknowledged and the wait resumes.
fn pull_weights<T: Transport>(
    comm: &Comm<T>,
    cache: &CacheManager<ExpertFfn>,
    expert: usize,
    next_nonce: &mut u32,
) -> std::sync::Arc<ExpertFfn> {
    cache
        .get_or_fetch::<CommError>((0, expert), || {
            *next_nonce += 1;
            let nonce = *next_nonce;
            let _span = janus_obs::global().span(|| {
                SpanMeta::new(
                    format!("pull/serve/e{expert}"),
                    "comm",
                    comm.rank() as u32,
                    "worker",
                )
            });
            comm.send(
                0,
                Message::PullRequest {
                    block: 0,
                    expert: expert as u32,
                    nonce,
                },
            )?;
            loop {
                match comm.recv_match(|from, m| {
                    from == 0 && matches!(m, Message::ExpertPayload { nonce: n, .. } if *n == nonce)
                }) {
                    Ok((_, Message::ExpertPayload { data, .. })) => return expert_from_bytes(data),
                    Ok(_) => unreachable!("pred admits only the payload"),
                    Err(CommError::PeerDead { rank, .. }) if rank != 0 => {
                        comm.transport().acknowledge_dead(rank);
                    }
                    Err(e) => return Err(e),
                }
            }
        })
        .expect("weight pull from frontend failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ServeConfig, ServeWorkload};

    fn run_small(budget: usize) -> (ServeConfig, ServeModel, ServeWorkload, ServeRun) {
        let cfg = ServeConfig::small();
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        let (_, plan) = plan_from_workload(&model, &wl, budget);
        let spec = ServeSpec {
            model: &model,
            workload: &wl,
            plan: &plan,
            max_batch_tokens: cfg.max_batch_tokens,
            opts: ServeOpts::default(),
            crash: None,
        };
        let run = serve_local(&spec);
        (cfg, model, wl, run)
    }

    #[test]
    fn engine_matches_reference_bitwise() {
        let (_, model, wl, run) = run_small(6);
        assert_eq!(run.frontend.responses.len(), wl.requests.len());
        for (req, got) in wl.requests.iter().zip(&run.frontend.responses) {
            let want = model.forward_reference(&req.tokens);
            assert_eq!(
                want.data(),
                got.data(),
                "serving must be bitwise identical to the reference forward"
            );
        }
        assert_eq!(run.frontend.failovers, 0);
        assert_eq!(run.frontend.redispatches, 0);
    }

    #[test]
    fn workers_cache_weight_pulls() {
        let budget = 6;
        let (_, _, _, run) = run_small(budget);
        let mut total_fetches = 0;
        for w in &run.workers {
            let w = w.as_ref().expect("no crash injected");
            assert!(w.served > 0 || w.cache.fetches == 0);
            // One replica per worker: at most one distinct expert pulled.
            assert!(w.cache.fetches <= 1);
            total_fetches += w.cache.fetches;
        }
        assert!(total_fetches as usize <= budget);
        assert_eq!(run.frontend.pulls_served, total_fetches);
    }

    #[test]
    fn batching_is_continuous() {
        let (_, _, wl, run) = run_small(5);
        // Open-loop arrivals over multiple steps must not collapse into
        // one batch, and batches must cover all requests.
        assert!(run.frontend.batches > 1);
        assert!(run.frontend.batches <= wl.requests.len() as u64);
        assert!(run.frontend.dispatches >= run.frontend.batches);
    }
}
