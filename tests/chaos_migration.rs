//! Combined-fault chaos for elastic expert migration: permanent rank
//! loss inside a partition window, and death *during* the migration
//! exchange itself.
//!
//! The elastic driver's contract under fire:
//!
//! * a rank that dies for good — even while the fault plan is also
//!   partitioning links — ends in a committed **drain**: its experts are
//!   re-apportioned across survivors and training completes degraded;
//! * a death in the middle of a migration exchange tears the attempt
//!   down with the round; the placement is **never** installed torn —
//!   every committed epoch's table validates, epochs only move forward,
//!   and the retry at the same boundary re-plans from the committed cut;
//! * the whole schedule is deterministic: the same seed and death/skew
//!   schedule produces bitwise-identical training across compute thread
//!   counts, and the post-migration continuation is bitwise identical to
//!   a reference run started *from* the migrated cut.
//!
//! Every test runs under a watchdog: a hung barrier is a loud failure,
//! never a stuck CI job.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use janus::comm::faulty::{FaultPlan, Partition};
use janus::comm::reliable::RetransmitPolicy;
use janus::core::exec::elastic::{
    resume_from_cut, train_elastic, ElasticOpts, ElasticOutcome, GateSkew, PermanentDeath,
};
use janus::core::exec::model::ExecConfig;
use janus::core::plan::PlanOpts;
use janus::tensor::pool;

const ITERS: u64 = 6;

/// `pool::set_threads` is process-global; the sweeps serialize here.
static THREAD_SWEEP: Mutex<()> = Mutex::new(());

fn cfg() -> ExecConfig {
    ExecConfig {
        tokens: 8,
        ..ExecConfig::small()
    }
}

fn chaos_seeds() -> [u64; 2] {
    let base = std::env::var("JANUS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    [base, base ^ 0x9E37_79B9]
}

/// Aggressive retransmit timeouts so partition-dropped traffic recovers
/// in microseconds.
fn chaos_policy() -> RetransmitPolicy {
    RetransmitPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        max_attempts: 400,
        flush_quiet: Duration::from_millis(40),
        ..RetransmitPolicy::default()
    }
}

fn with_watchdog<R: Send + 'static>(
    label: &str,
    timeout: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let name = format!("chaos-migration:{label}");
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawning watchdog worker");
    match rx.recv_timeout(timeout) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{name} panicked; the original panic is above in stderr")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: {name} did not finish within {timeout:?} (hang, not a diagnostic)")
        }
    }
}

/// No committed epoch may ever be torn: every cut's table validates,
/// epochs only move forward, and the ledger agrees with the cuts.
fn assert_never_torn(out: &ElasticOutcome) {
    let mut last_epoch = 0;
    for cut in &out.cuts {
        cut.placement.assert_valid();
        assert!(
            cut.placement.epoch > last_epoch,
            "epochs must move forward: {} after {last_epoch}",
            cut.placement.epoch
        );
        last_epoch = cut.placement.epoch;
        for (rank, ckpt) in cut.ckpts.iter().enumerate() {
            assert_eq!(
                ckpt.is_some(),
                cut.placement.is_live(rank),
                "cut at iter {}: rank {rank} checkpoint presence must track liveness",
                cut.at_iter
            );
        }
    }
    assert_eq!(
        out.report.epochs.len(),
        out.cuts.len(),
        "every committed epoch must produce a cut"
    );
}

/// The elastic continuation past the last committed cut must be bitwise
/// identical to a fresh run started from that cut.
fn assert_bitwise_resume(cfg: &ExecConfig, el: &ElasticOpts, out: &ElasticOutcome, label: &str) {
    let cut = out.cuts.last().expect("run committed at least one epoch");
    let reference = resume_from_cut(cfg, &PlanOpts::default(), el.skew.as_ref(), cut, ITERS);
    for rank in 0..cfg.world() {
        if !cut.placement.is_live(rank) {
            continue;
        }
        assert_eq!(
            &out.run.losses[rank][cut.at_iter as usize..],
            reference.losses[rank].as_slice(),
            "{label}: rank {rank} losses diverge from the resumed reference"
        );
        assert_eq!(
            out.run.outputs[rank].data(),
            reference.outputs[rank].data(),
            "{label}: rank {rank} outputs diverge from the resumed reference"
        );
    }
}

/// Permanent death landing inside an active partition window: the
/// reliability layer keeps recovering the partition's drops while the
/// elastic driver drains the corpse — degraded completion, bitwise
/// identical across thread counts and to the resumed reference.
#[test]
fn permanent_death_inside_partition_window_drains_and_completes() {
    with_watchdog("death-in-partition", Duration::from_secs(240), || {
        let _sweep = THREAD_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = cfg();
        let dead = cfg.world() - 1;
        for seed in chaos_seeds() {
            let faults = FaultPlan {
                seed,
                drop: 0.02,
                partitions: vec![Partition {
                    a: 0,
                    b: dead,
                    from_op: 2,
                    to_op: 12,
                }],
                ..FaultPlan::default()
            };
            let el = ElasticOpts {
                ckpt_every: 2,
                retransmit: chaos_policy(),
                deaths: vec![PermanentDeath {
                    rank: dead,
                    at_iter: 3,
                    during_migration: false,
                }],
                ..ElasticOpts::default()
            };
            let mut across: Option<ElasticOutcome> = None;
            for threads in [1usize, 4] {
                pool::set_threads(threads);
                let label = format!("death-in-partition seed={seed:#x} threads={threads}");
                let out = train_elastic(&cfg, &PlanOpts::default(), &el, ITERS, faults.clone())
                    .unwrap_or_else(|e| panic!("{label}: {e}"));

                assert!(out.report.degraded, "{label}: run must finish degraded");
                assert_eq!(out.report.dead_ranks, vec![dead], "{label}");
                assert!(
                    out.report
                        .epochs
                        .iter()
                        .any(|e| e.reason.contains(&format!("drain rank {dead}"))),
                    "{label}: no drain epoch committed: {:?}",
                    out.report.epochs
                );
                assert!(
                    out.report.recoveries >= 1 && out.report.replayed_iterations >= 1,
                    "{label}: the death must cost a replayed round: {:?}",
                    out.report
                );
                // Survivors trained to the end; the corpse kept only its
                // committed prefix.
                for rank in 0..cfg.world() {
                    let want = if rank == dead { 2 } else { ITERS as usize };
                    assert_eq!(out.run.losses[rank].len(), want, "{label}: rank {rank}");
                }
                // Non-vacuity: the partition actually dropped traffic and
                // the reliability layer actually recovered it.
                let totals = out.run.comm_totals();
                assert!(totals.faults_dropped > 0, "{label}: partition never fired");
                assert!(totals.retransmits > 0, "{label}: nothing was retransmitted");
                assert!(totals.migrations > 0, "{label}: drain shipped no experts");
                assert_eq!(totals.degraded, 1, "{label}: degraded counter: {totals:?}");

                assert_never_torn(&out);
                assert_bitwise_resume(&cfg, &el, &out, &label);
                if let Some(prev) = &across {
                    assert_eq!(
                        prev.run.losses, out.run.losses,
                        "{label}: thread count changed the loss history"
                    );
                    assert_eq!(
                        prev.report.final_placement_digest, out.report.final_placement_digest,
                        "{label}: thread count changed the final placement"
                    );
                }
                across = Some(out);
            }
        }
        pool::set_threads(0); // restore the JANUS_THREADS/env default
    })
}

/// A rank dying in the middle of the migration exchange: the attempt is
/// torn down with the round, the placement is never installed torn, and
/// the retry (now draining the corpse) still commits a valid epoch and
/// finishes training — bitwise identical across thread counts.
#[test]
fn death_during_migration_aborts_cleanly_and_commits_on_retry() {
    with_watchdog("death-mid-migration", Duration::from_secs(240), || {
        let _sweep = THREAD_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = cfg();
        let skew = GateSkew {
            block: 0,
            expert: 0,
            boost: 8.0,
        };
        let el = ElasticOpts {
            ckpt_every: 2,
            retransmit: chaos_policy(),
            skew_ratio: 1.2,
            max_moves: 4,
            skew: Some(skew),
            deaths: vec![PermanentDeath {
                rank: 0,
                at_iter: 0,
                during_migration: true,
            }],
            ..ElasticOpts::default()
        };
        let mut across: Option<ElasticOutcome> = None;
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let label = format!("death-mid-migration threads={threads}");
            let out = train_elastic(&cfg, &PlanOpts::default(), &el, ITERS, FaultPlan::default())
                .unwrap_or_else(|e| panic!("{label}: {e}"));

            assert!(
                out.report.aborted_migrations >= 1,
                "{label}: the mid-exchange death must abort an attempt: {:?}",
                out.report
            );
            assert!(out.report.degraded, "{label}: rank 0 is gone for good");
            assert_eq!(out.report.dead_ranks, vec![0], "{label}");
            assert!(
                out.report.epochs.iter().any(|e| e.reason.contains("drain")),
                "{label}: the retry must drain the corpse: {:?}",
                out.report.epochs
            );
            // Survivors still finished the full schedule.
            for rank in 1..cfg.world() {
                assert_eq!(
                    out.run.losses[rank].len(),
                    ITERS as usize,
                    "{label}: rank {rank} must train to completion"
                );
            }
            assert_never_torn(&out);
            assert_bitwise_resume(&cfg, &el, &out, &label);
            if let Some(prev) = &across {
                assert_eq!(
                    prev.run.losses, out.run.losses,
                    "{label}: thread count changed the loss history"
                );
                assert_eq!(
                    prev.report.final_placement_digest, out.report.final_placement_digest,
                    "{label}: thread count changed the final placement"
                );
            }
            across = Some(out);
        }
        pool::set_threads(0); // restore the JANUS_THREADS/env default
    })
}
