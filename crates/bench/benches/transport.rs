//! Transport round-trip micro-benchmarks: one message sent and received
//! per iteration on each transport substrate, at control-plane (1 KiB)
//! and data-plane (64 KiB, 1 MiB) payload sizes.
//!
//! These complement `repro bench`'s pipelined throughput lanes: criterion
//! measures the unpipelined per-message cost, which is what a pull
//! request/response pair on the critical path actually pays.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use janus_comm::local::local_mesh;
use janus_comm::tcp::tcp_mesh_localhost;
use janus_comm::{Message, ReliableTransport, Transport};
use std::hint::black_box;

const SIZES: [(usize, &str); 3] = [(1024, "1KiB"), (64 * 1024, "64KiB"), (1024 * 1024, "1MiB")];

fn roundtrip<T: Transport>(a: &T, b: &T, msg: &Message) {
    a.send(b.rank(), msg.clone()).expect("bench send");
    black_box(b.recv().expect("bench recv"));
    // Drain any reliability ack so in-flight state retires.
    let _ = a.try_recv();
}

fn bench_local(c: &mut Criterion) {
    let mut mesh = local_mesh(2);
    let b2 = mesh.pop().unwrap();
    let a = mesh.pop().unwrap();
    for (bytes, label) in SIZES {
        let msg = Message::Collective {
            seq: 1,
            data: Bytes::from(vec![7u8; bytes]),
        };
        c.bench_function(&format!("local_roundtrip_{label}"), |bch| {
            bch.iter(|| roundtrip(&a, &b2, &msg))
        });
    }
}

fn bench_tcp(c: &mut Criterion) {
    let mut mesh = tcp_mesh_localhost(2).expect("tcp mesh");
    let b2 = mesh.pop().unwrap();
    let a = mesh.pop().unwrap();
    for (bytes, label) in SIZES {
        let msg = Message::Collective {
            seq: 1,
            data: Bytes::from(vec![7u8; bytes]),
        };
        c.bench_function(&format!("tcp_roundtrip_{label}"), |bch| {
            bch.iter(|| roundtrip(&a, &b2, &msg))
        });
    }
}

fn bench_reliable(c: &mut Criterion) {
    let mut mesh = tcp_mesh_localhost(2).expect("tcp mesh");
    let b2 = ReliableTransport::new(mesh.pop().unwrap());
    let a = ReliableTransport::new(mesh.pop().unwrap());
    for (bytes, label) in SIZES {
        let msg = Message::Collective {
            seq: 1,
            data: Bytes::from(vec![7u8; bytes]),
        };
        c.bench_function(&format!("reliable_tcp_roundtrip_{label}"), |bch| {
            bch.iter(|| roundtrip(&a, &b2, &msg))
        });
    }
}

criterion_group! {
    name = transport;
    config = Criterion::default().sample_size(10);
    targets = bench_local, bench_tcp, bench_reliable
}
criterion_main!(transport);
