//! Bandwidth and compute presets matching the paper's evaluation platform.

use serde::{Deserialize, Serialize};

/// NVLink aggregate bandwidth on an A100 SXM GPU: 600 GB/s bidirectional
/// (paper Figure 6), i.e. 300 GB/s per direction per GPU port.
pub const A100_NVLINK_PER_DIRECTION: f64 = 300e9;

/// PCIe 4.0 x16 bandwidth quoted by the paper (64 GB/s), per direction.
pub const A100_PCIE_PER_DIRECTION: f64 = 64e9;

/// 200 Gbps RDMA NIC per machine (paper §7.1), per direction, in bytes/s.
pub const A100_NIC_PER_DIRECTION: f64 = 200e9 / 8.0;

/// Effective sustained mixed-precision throughput per A100 used to convert
/// FLOP counts into compute time. Peak fp16 tensor-core throughput is
/// 312 TFLOP/s, but the paper's measured iteration times (e.g. a ~210 ms
/// MoE-GPT forward pass, Figure 13) imply ~20-30 TFLOP/s achieved by the
/// unfused PyTorch MoE training loop at these modest batch shapes, so the
/// simulator uses 25 TFLOP/s to land in the paper's absolute time range.
pub const A100_EFFECTIVE_FLOPS: f64 = 25e12;

/// A100 SXM memory capacity (80 GB).
pub const A100_MEMORY_BYTES: f64 = 80e9;

/// Per-direction bandwidths of the three link classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidths {
    /// NVLink port bandwidth per GPU per direction (bytes/s).
    pub nvlink_per_direction: f64,
    /// PCIe bandwidth per direction (bytes/s) — applies both to GPU lanes
    /// and switch uplinks.
    pub pcie_per_direction: f64,
    /// NIC bandwidth per machine per direction (bytes/s).
    pub nic_per_direction: f64,
}

impl Bandwidths {
    /// Paper values: NVLink 600 GB/s (300 per direction), PCIe 64 GB/s,
    /// NIC 200 Gbps.
    pub fn a100() -> Self {
        Bandwidths {
            nvlink_per_direction: A100_NVLINK_PER_DIRECTION,
            pcie_per_direction: A100_PCIE_PER_DIRECTION,
            nic_per_direction: A100_NIC_PER_DIRECTION,
        }
    }

    /// Uniform bandwidths, useful in tests where the link hierarchy should
    /// not matter.
    pub fn uniform(bytes_per_sec: f64) -> Self {
        Bandwidths {
            nvlink_per_direction: bytes_per_sec,
            pcie_per_direction: bytes_per_sec,
            nic_per_direction: bytes_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_values_match_paper() {
        let b = Bandwidths::a100();
        assert_eq!(b.nvlink_per_direction, 300e9);
        assert_eq!(b.pcie_per_direction, 64e9);
        assert_eq!(b.nic_per_direction, 25e9);
    }

    #[test]
    fn link_hierarchy_ordering() {
        // The paper's heterogeneity observation: NVLink ≫ PCIe ≫ NIC.
        let b = Bandwidths::a100();
        assert!(b.nvlink_per_direction > b.pcie_per_direction);
        assert!(b.pcie_per_direction > b.nic_per_direction);
    }

    #[test]
    fn uniform_is_uniform() {
        let b = Bandwidths::uniform(1e9);
        assert_eq!(b.nvlink_per_direction, b.nic_per_direction);
        assert_eq!(b.pcie_per_direction, 1e9);
    }
}
