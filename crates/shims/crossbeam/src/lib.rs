//! Offline shim for `crossbeam`: the unbounded MPMC channel subset the
//! comm crate uses. Built on `Mutex<VecDeque>` + `Condvar`; adequate for
//! the in-process meshes the tests run (tens of workers, not
//! million-message throughput).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable (MP).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives, all senders drop, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
