//! PR-MoE: one model, two paradigms at once (paper §7.5).
//!
//! Pyramid-Residual MoE models put few experts in shallow blocks and many
//! in deep ones, so the gain metric `R = BSk/(4nHE)` differs per block.
//! Janus's unified mode runs data-centric communication where `R` is
//! large and falls back to All-to-All where it is not — and beats both
//! pure paradigms.
//!
//! ```text
//! cargo run --release --example pr_moe_unified
//! ```

use janus::core::paradigm::{choose_with_threshold, Paradigm};
use janus::core::sim::engine::{simulate_iteration, EngineOpts, ParadigmPolicy};
use janus::moe::config::pr_moe_transformer_xl;
use janus::moe::traffic::r_for_block;
use janus::topology::ClusterSpec;

fn main() {
    for (gpus, machines) in [(16usize, 2usize), (32, 4)] {
        let model = pr_moe_transformer_xl(gpus);
        let cluster = ClusterSpec::a100(machines, 8).build();
        println!("=== PR-MoE-Transformer-xl on {gpus} GPUs ===");
        println!("per-block paradigm choice (conservative threshold R > 2, §7.5):");
        for &b in &model.moe_blocks() {
            let r = r_for_block(&model, b, machines, 8);
            let choice = choose_with_threshold(&model, b, machines, 8, 2.0);
            let experts = model.blocks[b].experts();
            println!(
                "  block {b:>2} ({experts:>3} experts): R = {r:>5.2} → {}",
                match choice {
                    Paradigm::DataCentric => "data-centric",
                    Paradigm::ExpertCentric => "expert-centric",
                }
            );
        }

        let ec = simulate_iteration(
            cluster.clone(),
            model.clone(),
            &EngineOpts::janus_expert_centric(),
        )
        .expect("expert-centric run");
        let dc = simulate_iteration(
            cluster.clone(),
            model.clone(),
            &EngineOpts::data_centric(true, true),
        )
        .expect("data-centric run");
        let unified_opts = EngineOpts {
            policy: ParadigmPolicy::Unified,
            r_threshold: 2.0,
            ..EngineOpts::default()
        };
        let unified = simulate_iteration(cluster, model, &unified_opts).expect("unified run");

        println!("  pure expert-centric : {:>7.1} ms", ec.iter_time * 1e3);
        println!("  pure data-centric   : {:>7.1} ms", dc.iter_time * 1e3);
        println!(
            "  janus unified       : {:>7.1} ms",
            unified.iter_time * 1e3
        );
        println!(
            "  unified speedup over expert-centric: {:.2}× (paper: {})\n",
            ec.iter_time / unified.iter_time,
            if gpus == 16 { "2.06×" } else { "1.44×" }
        );
    }
}
