//! Compute-substrate micro-benchmarks: the scalar reference kernel the
//! seed shipped, the register-blocked kernel pinned to one pool thread,
//! and the blocked kernel at the pool's full width — all at the expert
//! FFN up-projection shape `x(64×H) · w1(H×4H)` for H ∈ {512, 1024}.
//!
//! All three variants produce bit-identical output (see the property
//! tests in `janus-tensor`); only the wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use janus_tensor::{matmul_reference, pool, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const TOKENS: usize = 64;

fn operands(hidden: usize) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(11);
    let x = Matrix::uniform(TOKENS, hidden, 1.0, &mut rng);
    let w1 = Matrix::uniform(hidden, 4 * hidden, 0.1, &mut rng);
    (x, w1)
}

fn bench_kernels(c: &mut Criterion) {
    for hidden in [512usize, 1024] {
        let (x, w1) = operands(hidden);
        c.bench_function(&format!("matmul_scalar_h{hidden}"), |b| {
            b.iter(|| black_box(matmul_reference(black_box(&x), black_box(&w1))))
        });
        pool::set_threads(1);
        c.bench_function(&format!("matmul_blocked_h{hidden}"), |b| {
            b.iter(|| black_box(black_box(&x).matmul(black_box(&w1))))
        });
        pool::set_threads(0);
        c.bench_function(&format!("matmul_blocked_parallel_h{hidden}"), |b| {
            b.iter(|| black_box(black_box(&x).matmul(black_box(&w1))))
        });
    }
}

criterion_group! {
    name = compute;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(compute);
