//! Cross-crate integration tests for the numerical engines: real MoE
//! training over real transports in both paradigms.

use janus::comm::runtime::{run_on, run_workers};
use janus::comm::tcp::tcp_mesh_localhost;
use janus::core::exec::data_centric::{self, MachineShared};
use janus::core::exec::expert_centric;
use janus::core::exec::model::{ExecConfig, WorkerState};
use janus::core::exec::trainer::{
    compare_paradigms, diff_runs, train_data_centric, train_expert_centric, train_unified,
};
use janus::core::exec::unified;
use janus::core::plan::PlanOpts;

fn cfg() -> ExecConfig {
    ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 8,
        blocks: 2,
        experts: 8,
        experts_per_block: vec![],
        top_k: 2,
        tokens: 12,
        seed: 99,
        lr: 0.03,
    }
}

/// The §3.2 equivalence claim end to end: identical forward results and
/// identical weight trajectories — bitwise, since both engines fold
/// per-source gradients in the same pre-reduction order.
#[test]
fn paradigms_match_across_transports_and_scales() {
    for machines in [1usize, 2] {
        for gpus in [1usize, 2] {
            if machines * gpus < 2 {
                continue;
            }
            let cfg = ExecConfig {
                machines,
                gpus_per_machine: gpus,
                ..cfg()
            };
            let diff = compare_paradigms(&cfg, 2);
            assert_eq!(diff.max_output_diff, 0.0, "{machines}x{gpus}: {diff:?}");
            assert_eq!(diff.max_weight_diff, 0.0, "{machines}x{gpus}: {diff:?}");
        }
    }
}

/// The unified engine over a real TCP transport: a mixed-paradigm plan
/// converges, and its losses match the in-process mesh bitwise.
#[test]
fn unified_training_runs_over_tcp() {
    let cfg = ExecConfig::mixed_paradigms();
    let plan = cfg.compile_plan(&PlanOpts::default());
    let shared = MachineShared::for_cluster(&cfg);
    let endpoints = tcp_mesh_localhost(cfg.world()).expect("tcp mesh");
    let tcp_losses = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        (0..3)
            .map(|i| {
                unified::run_iteration(&comm, &mut state, sh, &plan, i)
                    .unwrap()
                    .loss
            })
            .collect::<Vec<_>>()
    });
    let local = train_unified(&cfg, 3);
    for (curve, local_curve) in tcp_losses.iter().zip(&local.losses) {
        assert!(curve.last().unwrap() < curve.first().unwrap(), "{curve:?}");
        assert_eq!(curve, local_curve, "transport must not change numerics");
    }
}

/// On a plan that mixes paradigms across blocks, the unified engine's
/// whole run equals both pure engines bit for bit.
#[test]
fn unified_equals_pure_engines_end_to_end() {
    let cfg = ExecConfig::mixed_paradigms();
    let un = train_unified(&cfg, 2);
    for pure in [train_expert_centric(&cfg, 2), train_data_centric(&cfg, 2)] {
        let diff = diff_runs(&un, &pure);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }
}

/// Both engines converge on both transports.
#[test]
fn training_converges_over_tcp() {
    let cfg = cfg();
    let shared = MachineShared::for_cluster(&cfg);
    let endpoints = tcp_mesh_localhost(cfg.world()).expect("tcp mesh");
    let losses = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        (0..4)
            .map(|i| {
                data_centric::run_iteration(&comm, &mut state, sh, i)
                    .unwrap()
                    .loss
            })
            .collect::<Vec<_>>()
    });
    for curve in losses {
        assert!(curve.last().unwrap() < curve.first().unwrap(), "{curve:?}");
    }
}

/// The expert-centric engine also runs over TCP; the two transports give
/// identical results (the protocol is transport-agnostic).
#[test]
fn transports_are_interchangeable() {
    let cfg = cfg();
    let local = run_workers(cfg.world(), |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        expert_centric::run_iteration(&comm, &mut state, 0)
            .unwrap()
            .loss
    });
    let endpoints = tcp_mesh_localhost(cfg.world()).expect("tcp mesh");
    let tcp = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        expert_centric::run_iteration(&comm, &mut state, 0)
            .unwrap()
            .loss
    });
    assert_eq!(local, tcp, "same inputs and weights ⇒ bitwise-equal losses");
}

/// The hierarchical cache works as specified: per machine, every external
/// expert is fetched exactly once per block per iteration and shared by
/// siblings.
#[test]
fn cache_fetch_counts_match_the_hierarchical_design() {
    let cfg = cfg();
    let shared = MachineShared::for_cluster(&cfg);
    let iters = 3u64;
    run_workers(cfg.world(), |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        for i in 0..iters {
            data_centric::run_iteration(&comm, &mut state, sh, i).unwrap();
        }
    });
    // 4 external experts per machine × 2 blocks × 3 iterations.
    for sh in &shared {
        let stats = sh.cache.stats();
        let (fetches, hits) = (stats.fetches, stats.hits);
        assert_eq!(
            fetches,
            4 * 2 * iters,
            "exactly one wire crossing per expert"
        );
        assert!(hits >= fetches, "siblings must share the cached copies");
        assert_eq!(sh.cache.epoch(), iters, "cache invalidated each iteration");
    }
}

/// The full data-centric protocol survives adversarial cross-peer
/// reordering and duplicated barriers, producing the same losses as the
/// clean run (per-pair FIFO is its only ordering assumption).
#[test]
fn data_centric_training_survives_chaos_transport() {
    use janus::comm::faulty::{FaultPlan, FaultyTransport};
    use janus::comm::local::local_mesh;

    let cfg = cfg();
    let clean = train_data_centric(&cfg, 3);

    let shared = MachineShared::for_cluster(&cfg);
    let endpoints: Vec<_> = local_mesh(cfg.world())
        .into_iter()
        .map(|t| FaultyTransport::new(t, FaultPlan::reorder_only(1234, 0.5, 0.3)))
        .collect();
    let chaotic = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        (0..3)
            .map(|i| {
                data_centric::run_iteration(&comm, &mut state, sh, i)
                    .unwrap()
                    .loss
            })
            .collect::<Vec<_>>()
    });
    // First-iteration losses are bitwise identical (no updates yet);
    // later iterations may differ by f32 summation-order noise because
    // gradient contributions arrive — and are summed — in a different
    // order at owners and aggregators.
    for (c, h) in clean.losses.iter().zip(&chaotic) {
        assert_eq!(c[0], h[0], "pre-update loss must be bitwise identical");
        for (a, b) in c.iter().zip(h) {
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                "losses diverged beyond fp noise: {a} vs {b}"
            );
        }
    }
}

/// Gradient pre-reduction: the trained weights of every replica agree —
/// each owner applied exactly the full-world gradient sum.
#[test]
fn owners_apply_the_full_gradient_sum() {
    let cfg = cfg();
    let dc = train_data_centric(&cfg, 2);
    let ec = train_expert_centric(&cfg, 2);
    for (rank, (d, e)) in dc.experts.iter().zip(&ec.experts).enumerate() {
        for (bd, be) in d.iter().zip(e) {
            for (xd, xe) in bd.iter().zip(be) {
                assert_eq!(
                    xd.w1.max_abs_diff(&xe.w1),
                    0.0,
                    "rank {rank}: weights must match bitwise"
                );
            }
        }
    }
}
