//! Offline shim for `parking_lot`: non-poisoning `Mutex` and `Condvar`
//! built on `std::sync`. Poisoning is deliberately ignored — a panicked
//! holder aborts the test anyway, and parking_lot's API has no poison
//! concept to surface.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Non-poisoning mutex with parking_lot's `lock() -> guard` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait; mirrors parking_lot's `WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Block until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        let std_guard = guard.guard.take().expect("guard present before wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
