//! Scoped worker threads, one per simulated GPU.
//!
//! A panicking worker must fail the run loudly, never hang it: before a
//! worker closure runs, the runtime takes the transport's
//! [`crate::liveness::DeathHandle`]; if the closure panics, the rank is
//! marked dead on the mesh's health board (with the panic message) so
//! every peer blocked in a monitored receive gets
//! [`crate::transport::CommError::PeerDead`] instead of waiting forever.

use crate::comm::Comm;
use crate::liveness::{monitored_mesh, LivenessConfig, LivenessMonitor};
use crate::local::LocalTransport;
use crate::transport::Transport;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Run one closure per endpoint on its own thread; each rank's outcome
/// comes back in rank order, a panicking rank as `Err(panic message)`.
/// Before the results return, every panicking rank has been marked dead
/// on its transport's health board (a no-op for unmonitored transports),
/// so monitored peers fail fast rather than hang. This is the
/// supervisor-facing entry point: callers decide what a dead rank means.
pub fn run_on_result<T, R, F>(endpoints: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Transport + 'static,
    R: Send,
    F: Fn(Comm<T>) -> R + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                std::thread::Builder::new()
                    .name(format!("worker-{rank}"))
                    .spawn_scoped(scope, move || {
                        let death = t.death_handle();
                        let result = catch_unwind(AssertUnwindSafe(|| f(Comm::new(t))));
                        if let Err(payload) = &result {
                            death.mark_dead(&panic_message(payload.as_ref()));
                        }
                        result
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
                // The thread died outside catch_unwind (can't happen for
                // the closure itself); still surface it as a message.
                Err(payload) => Err(panic_message(payload.as_ref())),
            })
            .collect()
    })
}

/// Run one closure per endpoint on its own thread and collect results in
/// rank order. Panics in any worker propagate to the caller.
pub fn run_on<T, R, F>(endpoints: Vec<T>, f: F) -> Vec<R>
where
    T: Transport + 'static,
    R: Send,
    F: Fn(Comm<T>) -> R + Sync,
{
    run_on_result(endpoints, f)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| match r {
            Ok(value) => value,
            Err(msg) => panic!("worker thread panicked: rank {rank}: {msg}"),
        })
        .collect()
}

/// Run `world` workers over an in-process channel mesh. The mesh is
/// liveness-monitored with heartbeats off: traffic is identical to a raw
/// mesh, but a panicking rank surfaces to its peers as
/// [`crate::transport::CommError::PeerDead`] rather than a hang.
pub fn run_workers<R, F>(world: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm<LivenessMonitor<LocalTransport>>) -> R + Sync,
{
    run_on(monitored_mesh(world, LivenessConfig::default()), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::transport::CommError;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run_workers(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn workers_can_exchange_messages() {
        let out = run_workers(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(
                peer,
                Message::Barrier {
                    epoch: comm.rank() as u64,
                },
            )
            .unwrap();
            let (from, msg) = comm.recv_any().unwrap();
            assert_eq!(from, peer);
            msg
        });
        assert_eq!(out[0], Message::Barrier { epoch: 1 });
        assert_eq!(out[1], Message::Barrier { epoch: 0 });
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        run_workers(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    /// Regression: a panicking rank used to leave peers blocked in recv
    /// forever. Now the blocked peer gets `PeerDead` carrying the panic
    /// message within its next poll slice.
    #[test]
    fn peer_blocked_on_panicked_worker_gets_peer_dead_not_a_hang() {
        let start = std::time::Instant::now();
        let out = run_on_result(
            monitored_mesh(2, LivenessConfig::default()),
            |comm| -> Result<(), CommError> {
                if comm.rank() == 1 {
                    panic!("boom at iteration 5");
                }
                // Rank 0 waits for a message rank 1 will never send.
                match comm.recv_any() {
                    Ok(_) => panic!("no message was ever sent"),
                    Err(e) => Err(e),
                }
            },
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "peer hung on a dead rank"
        );
        match &out[0] {
            Ok(Err(CommError::PeerDead { rank, reason, .. })) => {
                assert_eq!(*rank, 1);
                assert!(reason.contains("boom at iteration 5"), "{reason}");
            }
            other => panic!("expected PeerDead at rank 0, got {other:?}"),
        }
        let err = out[1].as_ref().unwrap_err();
        assert!(err.contains("boom at iteration 5"), "{err}");
    }

    #[test]
    fn runs_over_tcp_mesh_too() {
        let endpoints = crate::tcp::tcp_mesh_localhost(3).unwrap();
        let out = run_on(endpoints, |comm| {
            crate::collectives::all_to_all(&comm, 0, vec![vec![comm.rank() as u8]; 3]).unwrap()
        });
        for received in out {
            assert_eq!(received, vec![vec![0u8], vec![1u8], vec![2u8]]);
        }
    }
}
