//! Collectives built on [`Comm`]: barrier, All-to-All, gather-to-owner.
//!
//! The expert-centric baseline uses [`all_to_all`] exactly where NCCL's
//! All-to-All sits in Tutel; [`barrier`] implements the end-of-iteration
//! synchronization both paradigms need before the optimizer step.

use crate::comm::Comm;
use crate::message::Message;
use crate::transport::{CommError, Transport};
use bytes::Bytes;

/// Block until every rank has entered the barrier for `epoch`.
///
/// Every rank posts `Barrier{epoch}` to every peer and waits for one from
/// each distinct peer. Mixing epochs is safe: foreign epochs stay buffered
/// in the `Comm` until their own barrier call claims them.
pub fn barrier<T: Transport>(comm: &Comm<T>, epoch: u64) -> Result<(), CommError> {
    let world = comm.world_size();
    let me = comm.rank();
    for peer in 0..world {
        if peer != me {
            comm.send(peer, Message::Barrier { epoch })?;
        }
    }
    let mut seen = vec![false; world];
    for _ in 0..world.saturating_sub(1) {
        let (from, _) = comm.recv_match(|from, m| {
            matches!(m, Message::Barrier { epoch: e } if *e == epoch) && !seen[from]
        })?;
        seen[from] = true;
    }
    Ok(())
}

/// [`barrier`] restricted to the ranks marked live: dead peers are
/// neither signalled nor waited for, so a degraded world synchronizes
/// among the survivors only. With everyone live this is exactly
/// [`barrier`].
pub fn barrier_among<T: Transport>(
    comm: &Comm<T>,
    epoch: u64,
    live: &[bool],
) -> Result<(), CommError> {
    let world = comm.world_size();
    let me = comm.rank();
    assert_eq!(live.len(), world, "one liveness flag per rank");
    assert!(live[me], "dead rank entered a barrier");
    for (peer, &alive) in live.iter().enumerate() {
        if peer != me && alive {
            comm.send(peer, Message::Barrier { epoch })?;
        }
    }
    let expected = live.iter().filter(|&&l| l).count().saturating_sub(1);
    let mut seen = vec![false; world];
    for _ in 0..expected {
        let (from, _) = comm.recv_match(|from, m| {
            matches!(m, Message::Barrier { epoch: e } if *e == epoch) && !seen[from]
        })?;
        seen[from] = true;
    }
    Ok(())
}

/// Exchange one chunk with every rank: `chunks[j]` goes to rank `j`, the
/// result's slot `j` holds rank `j`'s chunk for us. `seq` must be unique
/// per collective invocation within an iteration (concurrent or back-to-
/// back All-to-Alls would otherwise mix).
pub fn all_to_all<T: Transport>(
    comm: &Comm<T>,
    seq: u64,
    chunks: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>, CommError> {
    all_to_all_serviced(comm, seq, chunks, |_, _| false)
}

/// [`all_to_all`] that stays responsive to an unrelated message protocol
/// while it waits: every non-matching arrival is offered to `consume`
/// first, and only messages `consume` declines are buffered. A unified
/// engine needs this — a worker inside an expert-centric block's
/// collective must keep serving data-centric pull requests and gradient
/// pushes, or a peer blocked on that service could never post its own
/// chunk (deadlock).
pub fn all_to_all_serviced<T: Transport>(
    comm: &Comm<T>,
    seq: u64,
    chunks: Vec<Vec<u8>>,
    mut consume: impl FnMut(usize, &Message) -> bool,
) -> Result<Vec<Vec<u8>>, CommError> {
    let world = comm.world_size();
    let me = comm.rank();
    assert_eq!(chunks.len(), world, "need exactly one chunk per rank");
    let mut result: Vec<Option<Vec<u8>>> = (0..world).map(|_| None).collect();
    for (peer, chunk) in chunks.into_iter().enumerate() {
        if peer == me {
            result[peer] = Some(chunk);
        } else {
            comm.send(
                peer,
                Message::Collective {
                    seq,
                    data: Bytes::from(chunk),
                },
            )?;
        }
    }
    for _ in 0..world.saturating_sub(1) {
        let (from, msg) = comm.recv_match_or_consume(
            |from, m| {
                matches!(m, Message::Collective { seq: s, .. } if *s == seq)
                    && result[from].is_none()
            },
            &mut consume,
        )?;
        match msg {
            Message::Collective { data, .. } => result[from] = Some(data.to_vec()),
            _ => unreachable!("predicate admits only Collective"),
        }
    }
    Ok(result
        .into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect())
}

/// [`all_to_all_serviced`] restricted to the ranks marked live: nothing
/// is sent to dead peers and nothing is expected from them — their
/// result slots come back empty. The live slots are indistinguishable
/// from a full-world exchange, so engines running degraded keep their
/// rank-indexed bookkeeping. With everyone live this is exactly
/// [`all_to_all_serviced`].
pub fn all_to_all_among<T: Transport>(
    comm: &Comm<T>,
    seq: u64,
    chunks: Vec<Vec<u8>>,
    live: &[bool],
    mut consume: impl FnMut(usize, &Message) -> bool,
) -> Result<Vec<Vec<u8>>, CommError> {
    let world = comm.world_size();
    let me = comm.rank();
    assert_eq!(chunks.len(), world, "need exactly one chunk per rank");
    assert_eq!(live.len(), world, "one liveness flag per rank");
    assert!(live[me], "dead rank entered a collective");
    let mut result: Vec<Option<Vec<u8>>> = (0..world).map(|_| None).collect();
    for (peer, chunk) in chunks.into_iter().enumerate() {
        if peer == me {
            result[peer] = Some(chunk);
        } else if live[peer] {
            comm.send(
                peer,
                Message::Collective {
                    seq,
                    data: Bytes::from(chunk),
                },
            )?;
        } else {
            result[peer] = Some(Vec::new());
        }
    }
    let expected = live.iter().filter(|&&l| l).count().saturating_sub(1);
    for _ in 0..expected {
        let (from, msg) = comm.recv_match_or_consume(
            |from, m| {
                matches!(m, Message::Collective { seq: s, .. } if *s == seq)
                    && result[from].is_none()
            },
            &mut consume,
        )?;
        match msg {
            Message::Collective { data, .. } => result[from] = Some(data.to_vec()),
            _ => unreachable!("predicate admits only Collective"),
        }
    }
    Ok(result
        .into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect())
}

/// Gather one chunk from every rank at `root`. Non-root ranks return
/// `None`; the root returns chunks in rank order.
pub fn gather<T: Transport>(
    comm: &Comm<T>,
    seq: u64,
    root: usize,
    chunk: Vec<u8>,
) -> Result<Option<Vec<Vec<u8>>>, CommError> {
    let world = comm.world_size();
    let me = comm.rank();
    if me != root {
        comm.send(
            root,
            Message::Collective {
                seq,
                data: Bytes::from(chunk),
            },
        )?;
        return Ok(None);
    }
    let mut result: Vec<Option<Vec<u8>>> = (0..world).map(|_| None).collect();
    result[me] = Some(chunk);
    for _ in 0..world.saturating_sub(1) {
        let (from, msg) = comm.recv_match(|from, m| {
            matches!(m, Message::Collective { seq: s, .. } if *s == seq) && result[from].is_none()
        })?;
        match msg {
            Message::Collective { data, .. } => result[from] = Some(data.to_vec()),
            _ => unreachable!("predicate admits only Collective"),
        }
    }
    Ok(Some(
        result
            .into_iter()
            .map(|c| c.expect("all slots filled"))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_workers;

    #[test]
    fn all_to_all_routes_chunks_correctly() {
        let out = run_workers(4, |comm| {
            let me = comm.rank() as u8;
            let chunks: Vec<Vec<u8>> = (0..4).map(|peer| vec![me, peer as u8]).collect();
            all_to_all(&comm, 7, chunks).unwrap()
        });
        for (rank, received) in out.iter().enumerate() {
            for (from, chunk) in received.iter().enumerate() {
                assert_eq!(chunk, &vec![from as u8, rank as u8]);
            }
        }
    }

    #[test]
    fn back_to_back_all_to_alls_do_not_mix() {
        let out = run_workers(3, |comm| {
            let a = all_to_all(&comm, 1, vec![vec![1u8]; 3]).unwrap();
            let b = all_to_all(&comm, 2, vec![vec![2u8]; 3]).unwrap();
            (a, b)
        });
        for (a, b) in out {
            assert!(a.iter().all(|c| c == &[1u8]));
            assert!(b.iter().all(|c| c == &[2u8]));
        }
    }

    #[test]
    fn serviced_all_to_all_offers_foreign_messages() {
        let out = run_workers(2, |comm| {
            // Each rank posts an unrelated message before joining the
            // collective; the collective must hand it to `consume`
            // instead of burying it.
            let peer = 1 - comm.rank();
            comm.send(peer, Message::Barrier { epoch: 77 }).unwrap();
            let mut seen = 0;
            let r = all_to_all_serviced(&comm, 9, vec![vec![comm.rank() as u8]; 2], |_, m| {
                if matches!(m, Message::Barrier { epoch: 77 }) {
                    seen += 1;
                    true
                } else {
                    false
                }
            })
            .unwrap();
            (r, seen)
        });
        for (r, seen) in out {
            assert_eq!(r, vec![vec![0u8], vec![1u8]]);
            assert_eq!(seen, 1);
        }
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static ENTERED: AtomicUsize = AtomicUsize::new(0);
        run_workers(4, |comm| {
            ENTERED.fetch_add(1, Ordering::SeqCst);
            barrier(&comm, 0).unwrap();
            // After the barrier, every rank must have entered.
            assert_eq!(ENTERED.load(Ordering::SeqCst), 4);
            barrier(&comm, 1).unwrap();
        });
    }

    #[test]
    fn live_restricted_collectives_skip_dead_ranks() {
        let out = run_workers(4, |comm| {
            let live = vec![true, true, false, true];
            if comm.rank() == 2 {
                // Permanently dead: participates in nothing.
                return Vec::new();
            }
            barrier_among(&comm, 5, &live).unwrap();
            let chunks: Vec<Vec<u8>> = (0..4).map(|p| vec![comm.rank() as u8, p as u8]).collect();
            let got = all_to_all_among(&comm, 6, chunks, &live, |_, _| false).unwrap();
            barrier_among(&comm, 7, &live).unwrap();
            got
        });
        for (rank, received) in out.iter().enumerate() {
            if rank == 2 {
                assert!(received.is_empty());
                continue;
            }
            for (from, chunk) in received.iter().enumerate() {
                if from == 2 {
                    assert!(chunk.is_empty(), "dead rank slot must be empty");
                } else {
                    assert_eq!(chunk, &vec![from as u8, rank as u8]);
                }
            }
        }
    }

    #[test]
    fn fully_live_variants_match_the_plain_collectives() {
        let out = run_workers(3, |comm| {
            let live = vec![true; 3];
            barrier_among(&comm, 0, &live).unwrap();
            all_to_all_among(&comm, 1, vec![vec![comm.rank() as u8]; 3], &live, |_, _| {
                false
            })
            .unwrap()
        });
        for received in out {
            assert_eq!(received, vec![vec![0u8], vec![1u8], vec![2u8]]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_workers(4, |comm| {
            gather(&comm, 3, 2, vec![comm.rank() as u8; 2]).unwrap()
        });
        for (rank, res) in out.iter().enumerate() {
            if rank == 2 {
                let chunks = res.as_ref().unwrap();
                for (from, c) in chunks.iter().enumerate() {
                    assert_eq!(c, &vec![from as u8; 2]);
                }
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn single_rank_world_is_trivial() {
        let out = run_workers(1, |comm| {
            barrier(&comm, 0).unwrap();
            let r = all_to_all(&comm, 0, vec![vec![5u8]]).unwrap();
            let g = gather(&comm, 1, 0, vec![6u8]).unwrap();
            (r, g)
        });
        assert_eq!(out[0].0, vec![vec![5u8]]);
        assert_eq!(out[0].1, Some(vec![vec![6u8]]));
    }
}
