//! Row-major `f32` matrix.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length does not match shape"
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Uniform random matrix in `[-scale, scale]`, deterministic under the
    /// caller's RNG.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshape in place to `rows × cols`, reusing the existing
    /// allocation whenever capacity allows. Contents are unspecified
    /// afterwards; callers are expected to overwrite every element
    /// (the `*_into` kernels and scratch buffers do).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Select rows by index into a new matrix (the dispatch/gather step of
    /// expert routing).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a caller buffer (resized as needed),
    /// so steady-state dispatch reuses one allocation per expert slot.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
    }

    /// Add `other`'s rows into rows of `self` selected by `indices`,
    /// scaled by `weights` (the combine step of expert routing).
    pub fn scatter_add_rows(&mut self, indices: &[usize], weights: &[f32], other: &Matrix) {
        assert_eq!(indices.len(), other.rows, "index/row count mismatch");
        assert_eq!(indices.len(), weights.len(), "index/weight count mismatch");
        assert_eq!(self.cols, other.cols, "column mismatch");
        for (i, (&dst, &w)) in indices.iter().zip(weights).enumerate() {
            let src = other.row(i);
            let out = self.row_mut(dst);
            for (o, s) in out.iter_mut().zip(src) {
                *o += w * s;
            }
        }
    }

    /// Transpose, walked in square tiles so both the source rows and the
    /// destination rows stay cache-resident (the naive row-major walk
    /// strides the destination by `rows` floats per element). With AVX2
    /// the tiles move through 8×8 in-register blocks — pure data
    /// movement, so both paths are trivially bitwise identical.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::active() {
            // SAFETY: `active()` implies AVX2 was detected at runtime.
            unsafe {
                crate::simd::avx2::transpose(&self.data, self.rows, self.cols, &mut out.data)
            };
            return out;
        }
        for rb in (0..self.rows).step_by(TILE) {
            let r_end = (rb + TILE).min(self.rows);
            for cb in (0..self.cols).step_by(TILE) {
                let c_end = (cb + TILE).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise sum into `self`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Broadcast-add a bias row to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Apply a function elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Largest absolute entry difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Size in bytes at a given element width (traffic accounting).
    pub fn size_bytes(&self, dtype_bytes: usize) -> usize {
        self.rows * self.cols * dtype_bytes
    }
}

impl Default for Matrix {
    /// Empty `0 × 0` matrix — the placeholder `std::mem::take` leaves
    /// behind when scratch buffers are loaned out.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.size_bytes(2), 12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_shape() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn tiled_transpose_matches_index_walk_beyond_one_tile() {
        // 50×37 straddles the 32-wide tiles in both dimensions.
        let mut rng = StdRng::seed_from_u64(21);
        let m = Matrix::uniform(50, 37, 1.0, &mut rng);
        let t = m.transpose();
        assert_eq!(t.shape(), (37, 50));
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(t[(c, r)], m[(r, c)]);
            }
        }
    }

    #[test]
    fn resize_reuses_allocation_and_gather_into_reuses_buffer() {
        let mut m = Matrix::zeros(4, 4);
        let ptr = m.data().as_ptr();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.data().as_ptr(), ptr, "shrinking must not reallocate");

        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut buf = Matrix::zeros(0, 0);
        src.gather_rows_into(&[2, 0], &mut buf);
        assert_eq!(buf, src.gather_rows(&[2, 0]));
        src.gather_rows_into(&[1], &mut buf);
        assert_eq!(buf, Matrix::from_rows(&[&[3.0, 4.0]]));
    }

    #[test]
    fn gather_then_scatter_with_unit_weights_is_identity_on_selected_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let picked = m.gather_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[5.0, 6.0]);
        let mut out = Matrix::zeros(3, 2);
        out.scatter_add_rows(&[2, 0], &[1.0, 1.0], &picked);
        assert_eq!(out.row(2), &[5.0, 6.0]);
        assert_eq!(out.row(0), &[1.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_applies_weights_and_accumulates() {
        let mut out = Matrix::zeros(1, 2);
        let part = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        out.scatter_add_rows(&[0, 0], &[0.5, 0.25], &part);
        assert_eq!(out.row(0), &[1.0, 1.0]);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.row(0), &[2.0, 3.0]);
        a.add_bias(&[1.0, -1.0]);
        assert_eq!(a.row(0), &[3.0, 2.0]);
        let d = a.sub(&b);
        assert_eq!(d.row(0), &[0.0, -2.0]);
        assert_eq!(d.max_abs_diff(&Matrix::zeros(1, 2)), 2.0);
        assert!((Matrix::from_rows(&[&[3.0, 4.0]]).norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_is_elementwise() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(m.map(|v| v * v).row(0), &[1.0, 4.0]);
    }

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 4, 0.1, &mut r1);
        let b = Matrix::uniform(4, 4, 0.1, &mut r2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn eye_is_identity_under_index() {
        let i = Matrix::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }
}
