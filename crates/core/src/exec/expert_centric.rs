//! Numerical expert-centric training iteration (the All-to-All baseline).
//!
//! Forward, per block: route tokens, All-to-All the routed slots to the
//! expert owners, compute, All-to-All the results back, combine with the
//! gate weights on a residual stream. Backward mirrors the two
//! collectives; expert owners compute weight gradients per source rank
//! and fold them in exactly the order the data-centric engine does, so
//! the two paradigms (and the unified engine mixing them) apply bitwise
//! identical updates.
//!
//! The per-block bodies ([`forward_block`], [`backward_block`]) are the
//! reusable units the unified engine dispatches to; [`run_iteration`]
//! composes them for a pure expert-centric run. Both take a `service`
//! callback that is offered every unrelated message arriving inside a
//! collective — a no-op for pure runs, the data-centric protocol handler
//! for mixed-paradigm runs.

use crate::exec::model::{loss_and_grad, ExecConfig, WorkerState};
use crate::exec::obs;
use crate::exec::weights::{tokens_from_bytes, tokens_to_bytes, Slot};
use crate::placement::Placement;
use janus_comm::collectives::{all_to_all_among, barrier_among};
use janus_comm::{Comm, CommError, Message, Transport};
use janus_moe::expert::{ExpertGrads, ExpertScratch};
use janus_tensor::{pool, Matrix};

/// Output of one training iteration.
#[derive(Debug, Clone)]
pub struct IterOutput {
    /// Final block output for this worker's tokens.
    pub output: Matrix,
    /// `½‖y‖²` loss over this worker's output.
    pub loss: f32,
}

/// What each owned expert remembers between forward and backward. The
/// activation tape itself lives in the expert's [`WorkerState::scratch`]
/// slot.
pub(crate) struct ExpertTape {
    /// Global expert id.
    pub expert: usize,
    /// Origin of every row of the expert batch: `(src_rank, pos, slot)`
    /// where `pos` indexes the source's dispatch chunk, sources
    /// ascending, slot order within a source. Backward addresses the
    /// grad chunks by `pos` — the sender serializes backward chunks in
    /// dispatch order, so no value lookup (which `NaN` weights would
    /// defeat) is needed.
    pub origins: Vec<(usize, usize, Slot)>,
}

/// Per-block forward bookkeeping.
pub(crate) struct BlockTapeEc {
    /// Slots this worker dispatched, grouped per destination rank.
    pub sent: Vec<Vec<Slot>>,
    /// Tapes of the experts this worker owns.
    pub experts: Vec<ExpertTape>,
}

pub(crate) fn a2a_seq(iter: u64, block: usize, phase: u64) -> u64 {
    (iter << 16) | ((block as u64) << 4) | phase
}

/// Group this worker's routed slots for block `b` by destination rank
/// (the placement's owner), in (expert ascending, token ascending) order
/// — the deterministic order both paradigms share.
fn group_slots(
    cfg: &ExecConfig,
    placement: &Placement,
    b: usize,
    routing: &janus_moe::gate::Routing,
) -> Vec<Vec<Slot>> {
    let mut per_dst: Vec<Vec<Slot>> = vec![Vec::new(); cfg.world()];
    for e in 0..cfg.experts_in(b) {
        let dst = placement.owner_of(b, e);
        for (tok, w) in routing.tokens_for(e) {
            per_dst[dst].push((tok as u32, e as u32, w));
        }
    }
    per_dst
}

/// Count the payload bytes of `chunks` addressed to live ranks on other
/// machines — the deterministic cross-machine traffic metric the
/// migration experiments compare before/after a swap.
fn count_remote_bytes(state: &WorkerState, chunks: &[Vec<u8>]) {
    let my_machine = state.cfg.machine_of(state.rank);
    let total: u64 = chunks
        .iter()
        .enumerate()
        .filter(|&(dst, _)| {
            dst != state.rank
                && state.placement.is_live(dst)
                && state.cfg.machine_of(dst) != my_machine
        })
        .map(|(_, c)| c.len() as u64)
        .sum();
    state.comm.add_remote_bytes(total);
}

/// Decode received All-to-All chunks; a dead rank's slot comes back as an
/// empty chunk and decodes to an empty batch.
fn decode_chunks(
    received: Vec<Vec<u8>>,
    hidden_dim: usize,
) -> Result<Vec<(Vec<Slot>, Matrix)>, CommError> {
    received
        .into_iter()
        .map(|c| {
            if c.is_empty() {
                Ok((Vec::new(), Matrix::zeros(0, hidden_dim)))
            } else {
                tokens_from_bytes(c.into())
            }
        })
        .collect()
}

/// Combine returned rows onto `y` in canonical (expert ascending, token
/// ascending) order with the given weights. The canonical sort makes the
/// accumulation order *placement-invariant*: with the static contiguous
/// layout it reproduces the historical source-rank iteration bit for
/// bit, and after a migration the same tokens still fold in the same
/// order even though they now arrive from different ranks.
fn combine_canonical(
    y: &mut Matrix,
    received: Vec<Vec<u8>>,
    hidden_dim: usize,
    unit_weight: bool,
) -> Result<(), CommError> {
    let mut combined: Vec<(Slot, Vec<f32>)> = Vec::new();
    for chunk in received {
        if chunk.is_empty() {
            continue;
        }
        let (slots, rows) = tokens_from_bytes(chunk.into())?;
        debug_assert_eq!(rows.cols(), hidden_dim);
        for (i, slot) in slots.iter().enumerate() {
            combined.push((*slot, rows.row(i).to_vec()));
        }
    }
    combined.sort_by_key(|((tok, e, _), _)| (*e, *tok));
    for ((tok, _e, w), row) in &combined {
        let w = if unit_weight { 1.0 } else { *w };
        y.scatter_add_rows(&[*tok as usize], &[w], &rows_to_matrix_one(row));
    }
    Ok(())
}

/// Expert-centric forward for one block: dispatch All-to-All, owned-expert
/// compute, combine All-to-All, residual add. Returns the block output and
/// the tape backward needs. `service` is offered every unrelated message
/// that arrives while a collective waits.
pub(crate) fn forward_block<T: Transport>(
    comm: &Comm<T>,
    state: &WorkerState,
    b: usize,
    iter: u64,
    x: &Matrix,
    service: &mut dyn FnMut(usize, &Message) -> bool,
) -> Result<(Matrix, BlockTapeEc), CommError> {
    let cfg = &state.cfg;
    let world = cfg.world();
    let placement = &state.placement;
    let routing = state.gates[b].route(x);
    let sent = group_slots(cfg, placement, b, &routing);

    // Dispatch A2A.
    let chunks: Vec<Vec<u8>> = sent
        .iter()
        .map(|slots| {
            let idx: Vec<usize> = slots.iter().map(|s| s.0 as usize).collect();
            tokens_to_bytes(slots, &x.gather_rows(&idx)).to_vec()
        })
        .collect();
    count_remote_bytes(state, &chunks);
    let a2a_span = obs::span(state.rank, "comm", || {
        (format!("a2a_dispatch/b{b}"), format!("b{b}"))
    });
    let received = all_to_all_among(comm, a2a_seq(iter, b, 0), chunks, &placement.live, {
        let service = &mut *service;
        move |from, m| service(from, m)
    })?;
    obs::end_into(a2a_span, "janus_a2a_us");

    // Build per-owned-expert batches in (src asc, slot order) order.
    let decoded = decode_chunks(received, cfg.hidden_dim)?;
    let owned_ids = &state.owned_ids[b];
    // Per-owned-expert batch assembly + forward as parallel tasks;
    // each expert's activation tape is recorded in its scratch slot.
    let origins_per: Vec<Vec<(usize, usize, Slot)>> = {
        let decoded = &decoded;
        let experts = &state.experts;
        let rank = state.rank;
        pool::run_tasks(owned_ids.len(), |local| {
            let e = owned_ids[local];
            let _span = obs::span(rank, "compute", || {
                (format!("fwd/b{b}/e{e}"), format!("b{b}"))
            });
            let mut origins = Vec::new();
            for (src, (slots, _)) in decoded.iter().enumerate() {
                for (i, slot) in slots.iter().enumerate() {
                    if slot.1 as usize == e {
                        origins.push((src, i, *slot));
                    }
                }
            }
            let mut s = state.scratch_slot(b, e).lock();
            s.x.resize(origins.len(), cfg.hidden_dim);
            for (row, (src, i, _)) in origins.iter().enumerate() {
                s.x.row_mut(row).copy_from_slice(decoded[*src].1.row(*i));
            }
            experts[b][local].forward_scratch(&mut s);
            origins
        })
    };
    // Collect outputs in expert-ascending order (deterministic
    // regardless of task scheduling).
    let mut expert_tapes = Vec::new();
    let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
        (0..world).map(|_| (Vec::new(), Vec::new())).collect();
    for (local, origins) in origins_per.into_iter().enumerate() {
        let e = owned_ids[local];
        let s = state.scratch_slot(b, e).lock();
        for (i, (src, _, slot)) in origins.iter().enumerate() {
            returns[*src].0.push(*slot);
            returns[*src].1.push(s.y.row(i).to_vec());
        }
        expert_tapes.push(ExpertTape { expert: e, origins });
    }

    // Combine A2A: send results home.
    let chunks: Vec<Vec<u8>> = returns
        .iter()
        .map(|(slots, rows)| tokens_to_bytes(slots, &rows_to_matrix(rows, cfg.hidden_dim)).to_vec())
        .collect();
    count_remote_bytes(state, &chunks);
    let a2a_span = obs::span(state.rank, "comm", || {
        (format!("a2a_combine/b{b}"), format!("b{b}"))
    });
    let received = all_to_all_among(comm, a2a_seq(iter, b, 1), chunks, &placement.live, {
        let service = &mut *service;
        move |from, m| service(from, m)
    })?;
    obs::end_into(a2a_span, "janus_a2a_us");

    // y = x + Σ wₖ·expertₖ(x), folded in canonical (expert, token)
    // order — placement-invariant, and bitwise the historical
    // source-rank order under the static contiguous layout.
    let mut y = x.clone();
    combine_canonical(&mut y, received, cfg.hidden_dim, false)?;
    Ok((
        y,
        BlockTapeEc {
            sent,
            experts: expert_tapes,
        },
    ))
}

/// Expert-centric backward for one block: grad-dispatch All-to-All,
/// per-source expert backward, grad fold, dx-return All-to-All, residual
/// add. Returns `dx` and the folded weight gradient of each owned expert
/// (local index order), bitwise identical to what the data-centric
/// owner's inbox fold would produce.
pub(crate) fn backward_block<T: Transport>(
    comm: &Comm<T>,
    state: &WorkerState,
    b: usize,
    iter: u64,
    tape: &BlockTapeEc,
    dy: &Matrix,
    service: &mut dyn FnMut(usize, &Message) -> bool,
) -> Result<(Matrix, Vec<ExpertGrads>), CommError> {
    let cfg = &state.cfg;
    let world = cfg.world();
    let placement = &state.placement;
    let h = cfg.hidden_dim;
    // Send ∂L/∂(expert output) for every dispatched slot: w·dy[token].
    let chunks: Vec<Vec<u8>> = tape
        .sent
        .iter()
        .map(|slots| {
            let mut rows = Vec::with_capacity(slots.len());
            for (tok, _e, w) in slots {
                let mut row = dy.row(*tok as usize).to_vec();
                for v in &mut row {
                    *v *= *w;
                }
                rows.push(row);
            }
            tokens_to_bytes(slots, &rows_to_matrix(&rows, h)).to_vec()
        })
        .collect();
    count_remote_bytes(state, &chunks);
    let a2a_span = obs::span(state.rank, "comm", || {
        (format!("a2a_grad_dispatch/b{b}"), format!("b{b}"))
    });
    let received = all_to_all_among(comm, a2a_seq(iter, b, 2), chunks, &placement.live, {
        let service = &mut *service;
        move |from, m| service(from, m)
    })?;
    obs::end_into(a2a_span, "janus_a2a_us");
    let decoded = decode_chunks(received, h)?;

    // Expert backward, one sub-batch per source rank, as parallel tasks.
    // Each source's rows form a contiguous run of the forward batch (the
    // forward assembled origins sources-ascending), and every forward op
    // is row-local, so the sliced activations are bitwise the ones that
    // source's own data-centric pass would have produced. Folding the
    // per-source gradients in the data-centric order then yields bitwise
    // the gradient a data-centric owner applies.
    let grads: Vec<ExpertGrads> = {
        let decoded = &decoded;
        let experts = &state.experts;
        let tape_experts = &tape.experts;
        let rank = state.rank;
        pool::run_tasks(tape_experts.len(), |ti| {
            let tape_e = &tape_experts[ti];
            let _span = obs::span(rank, "compute", || {
                let e = tape_e.expert;
                (format!("bwd/b{b}/e{e}"), format!("b{b}"))
            });
            let local = ti;
            debug_assert_eq!(state.owned_ids[b][local], tape_e.expert);
            let weights = &experts[b][local];
            let origins = &tape_e.origins;
            let mut s = state.scratch_slot(b, tape_e.expert).lock();
            s.dx.resize(origins.len(), h);
            let mut sub = ExpertScratch::new();
            let mut dy_src = Matrix::zeros(0, 0);
            let mut per_src: Vec<(usize, ExpertGrads)> = Vec::with_capacity(world);
            let mut r0 = 0;
            for (src, (_, mat)) in decoded.iter().enumerate() {
                // A permanently dead source contributes nothing — its
                // tokens are gone, not zero (matching the degraded
                // data-centric accumulation, which only ever sees live
                // contributions).
                if !placement.is_live(src) {
                    continue;
                }
                let mut r1 = r0;
                while r1 < origins.len() && origins[r1].0 == src {
                    r1 += 1;
                }
                let n = r1 - r0;
                dy_src.resize(n, h);
                sub.x.resize(n, h);
                sub.pre.resize(n, 4 * h);
                sub.hidden.resize(n, 4 * h);
                for (i, (_, pos, _)) in origins[r0..r1].iter().enumerate() {
                    dy_src.row_mut(i).copy_from_slice(mat.row(*pos));
                    sub.x.row_mut(i).copy_from_slice(s.x.row(r0 + i));
                    sub.pre.row_mut(i).copy_from_slice(s.pre.row(r0 + i));
                    sub.hidden.row_mut(i).copy_from_slice(s.hidden.row(r0 + i));
                }
                weights.backward_scratch(&dy_src, &mut sub);
                for i in 0..n {
                    s.dx.row_mut(r0 + i).copy_from_slice(sub.dx.row(i));
                }
                per_src.push((src, sub.grad.clone()));
                r0 = r1;
            }
            fold_like_dc(cfg, placement, b, tape_e.expert, per_src)
        })
    };
    // Route dx home, experts ascending.
    let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
        (0..world).map(|_| (Vec::new(), Vec::new())).collect();
    for tape_e in tape.experts.iter() {
        let s = state.scratch_slot(b, tape_e.expert).lock();
        for (i, (src, _, slot)) in tape_e.origins.iter().enumerate() {
            returns[*src].0.push(*slot);
            returns[*src].1.push(s.dx.row(i).to_vec());
        }
    }
    let chunks: Vec<Vec<u8>> = returns
        .iter()
        .map(|(slots, rows)| tokens_to_bytes(slots, &rows_to_matrix(rows, h)).to_vec())
        .collect();
    count_remote_bytes(state, &chunks);
    let a2a_span = obs::span(state.rank, "comm", || {
        (format!("a2a_dx_return/b{b}"), format!("b{b}"))
    });
    let received = all_to_all_among(comm, a2a_seq(iter, b, 3), chunks, &placement.live, {
        let service = &mut *service;
        move |from, m| service(from, m)
    })?;
    obs::end_into(a2a_span, "janus_a2a_us");

    // dx = dy (residual) + returned expert input-gradients, folded in
    // the same canonical (expert, token) order as the forward combine.
    let mut dx = dy.clone();
    combine_canonical(&mut dx, received, h, true)?;
    Ok((dx, grads))
}

/// Fold per-source gradients of one owned expert exactly the way the
/// data-centric path does: live workers on machines other than the
/// owner's are pre-reduced ascending into one part attributed to that
/// machine's (live) designated aggregator, owner-machine workers
/// contribute individually, and the parts fold ascending by sender rank.
/// `per_src` holds `(source rank, gradient)` pairs, rank-ascending, live
/// sources only — a dead rank's tokens are gone, so it has no part.
fn fold_like_dc(
    cfg: &ExecConfig,
    placement: &Placement,
    b: usize,
    e: usize,
    per_src: Vec<(usize, ExpertGrads)>,
) -> ExpertGrads {
    let owner_machine = cfg.machine_of(placement.owner_of(b, e));
    let mut parts: Vec<(usize, ExpertGrads)> = Vec::new();
    for machine in 0..cfg.machines {
        let machine_srcs: Vec<&(usize, ExpertGrads)> = per_src
            .iter()
            .filter(|(src, _)| cfg.machine_of(*src) == machine)
            .collect();
        if machine_srcs.is_empty() {
            continue;
        }
        if machine == owner_machine {
            for (src, g) in machine_srcs {
                parts.push((*src, g.clone()));
            }
        } else {
            let mut sum = machine_srcs[0].1.clone();
            for (_, g) in &machine_srcs[1..] {
                sum.accumulate(g);
            }
            parts.push((
                placement.designated_local(machine, e, cfg.gpus_per_machine),
                sum,
            ));
        }
    }
    parts.sort_by_key(|(sender, _)| *sender);
    let mut it = parts.into_iter();
    let (_, mut grad) = it.next().expect("at least one live machine");
    for (_, g) in it {
        grad.accumulate(&g);
    }
    grad
}

/// Run one expert-centric training iteration.
pub fn run_iteration<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    iter: u64,
) -> Result<IterOutput, CommError> {
    let blocks = state.cfg.blocks;
    let lr = state.cfg.lr;
    let iter_span = obs::span(state.rank, "iter", || {
        (format!("iter/{iter}"), "iter".to_string())
    });
    let mut service = |_: usize, _: &Message| false;
    let mut x = state.inputs.clone();
    let mut tapes: Vec<BlockTapeEc> = Vec::with_capacity(blocks);

    // ---- Forward ----
    for b in 0..blocks {
        let (y, tape) = forward_block(comm, state, b, iter, &x, &mut service)?;
        tapes.push(tape);
        x = y;
    }

    let (loss, mut dy) = loss_and_grad(&x);
    let output = x;

    // ---- Backward ----
    let mut grads: Vec<Vec<ExpertGrads>> = (0..blocks).map(|_| Vec::new()).collect();
    for b in (0..blocks).rev() {
        let (dx, g) = backward_block(comm, state, b, iter, &tapes[b], &dy, &mut service)?;
        grads[b] = g;
        dy = dx;
    }

    // ---- Update ----
    for (b, block_grads) in grads.iter().enumerate() {
        for (local, g) in block_grads.iter().enumerate() {
            state.experts[b][local].apply(g, lr);
        }
    }
    let sync_span = obs::span(state.rank, "sync", || {
        (format!("barrier/{iter}"), "sync".to_string())
    });
    barrier_among(comm, iter, &state.placement.live)?;
    drop(sync_span);
    state.comm.record_transport(comm.transport().stats());
    drop(iter_span);
    Ok(IterOutput { output, loss })
}

fn rows_to_matrix(rows: &[Vec<f32>], cols: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        debug_assert_eq!(r.len(), cols);
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

fn rows_to_matrix_one(row: &[f32]) -> Matrix {
    Matrix::from_vec(1, row.len(), row.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_comm::runtime::run_workers;

    #[test]
    fn iteration_runs_and_losses_are_finite() {
        let cfg = ExecConfig::small();
        let out = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            run_iteration(&comm, &mut state, 0).unwrap()
        });
        for o in &out {
            assert!(o.loss.is_finite() && o.loss > 0.0);
            assert_eq!(o.output.shape(), (cfg.tokens, cfg.hidden_dim));
        }
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let cfg = ExecConfig::small();
        let losses = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            (0..5)
                .map(|i| run_iteration(&comm, &mut state, i).unwrap().loss)
                .collect::<Vec<_>>()
        });
        for per_worker in losses {
            assert!(
                per_worker.last().unwrap() < per_worker.first().unwrap(),
                "loss did not decrease: {per_worker:?}"
            );
        }
    }

    #[test]
    fn updated_weights_agree_across_repeat_runs() {
        // Determinism: two independent runs produce identical weights.
        let cfg = ExecConfig::small();
        let run = || {
            run_workers(cfg.world(), |comm| {
                let mut state = WorkerState::init(&cfg, comm.rank());
                for i in 0..3 {
                    run_iteration(&comm, &mut state, i).unwrap();
                }
                state.experts
            })
        };
        let a = run();
        let b = run();
        for (wa, wb) in a.iter().zip(&b) {
            for (ba, bb) in wa.iter().zip(wb) {
                for (ea, eb) in ba.iter().zip(bb) {
                    assert_eq!(ea, eb);
                }
            }
        }
    }

    #[test]
    fn per_block_layout_runs_with_nonuniform_experts() {
        // The mixed config has a different expert count per block; the
        // expert-centric engine must handle it end to end.
        let cfg = ExecConfig::mixed_paradigms();
        let out = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            run_iteration(&comm, &mut state, 0).unwrap()
        });
        for o in &out {
            assert!(o.loss.is_finite() && o.loss > 0.0);
        }
    }
}
