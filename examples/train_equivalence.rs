//! Real distributed MoE training in both paradigms, demonstrating the
//! paper's equivalence claim (§3.2) numerically.
//!
//! Spawns one thread per simulated GPU, connected by an in-process
//! message mesh. The data-centric run exercises the full Janus Task
//! Queue: pull requests, the per-machine expert cache, and gradient
//! pre-reduction. Outputs and trained weights match the All-to-All
//! baseline.
//!
//! ```text
//! cargo run --release --example train_equivalence
//! ```

use janus::core::exec::model::ExecConfig;
use janus::core::exec::trainer::{compare_paradigms, train_data_centric};

fn main() {
    let cfg = ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 16,
        blocks: 3,
        experts: 8,
        top_k: 2,
        tokens: 32,
        seed: 2023,
        lr: 0.02,
    };
    println!(
        "training a {}-block MoE ({} experts, top-{}) on {} simulated GPUs\n",
        cfg.blocks,
        cfg.experts,
        cfg.top_k,
        cfg.world()
    );

    let iters = 8;
    let run = train_data_centric(&cfg, iters);
    println!("data-centric loss curve (worker 0):");
    for (i, loss) in run.losses[0].iter().enumerate() {
        println!("  iter {i}: {loss:.4}");
    }

    // §3.2's claim: with identical weights, the data-centric forward is
    // *bitwise* identical — moving experts instead of tokens changes
    // nothing numerically. That is exact on the first iteration, before
    // any update has run.
    let first = compare_paradigms(&cfg, 1);
    println!("\nexpert-centric vs data-centric, first forward:");
    println!(
        "  max |Δ output|  = {:.3e} (bitwise-identical forward)",
        first.max_output_diff
    );
    assert_eq!(first.max_output_diff, 0.0);

    // Across many updates the paradigms reduce gradients in different
    // (each internally deterministic) orders, so trained weights drift
    // at floating-point noise level — the paper's "does not affect
    // convergence" regime, not bitwise equality.
    let diff = compare_paradigms(&cfg, iters);
    println!("\nexpert-centric vs data-centric after {iters} iterations:");
    println!(
        "  max |Δ weights| = {:.3e} (fp summation-order noise)",
        diff.max_weight_diff
    );
    println!("  max |Δ loss|    = {:.3e}", diff.max_loss_diff);
    assert!(diff.max_weight_diff < 1e-4);
    println!("\nequivalence holds: moving experts instead of tokens changes nothing numerically");
}
