//! Serving chaos matrix: the inference plane must survive lossy links —
//! and crashed expert workers — without corrupting a single response.
//!
//! Mirrors `tests/chaos_training.rs` for the serving plane: each case
//! stacks `ReliableTransport` over `FaultyTransport` over the in-process
//! mesh and serves the full Zipf request stream while the fault plan
//! drops, delays, duplicates, reorders, and partitions traffic. Because
//! expert kernels are row-independent and the frontend combines in fixed
//! (token, choice-rank) order, every response must be **bitwise
//! identical** to the single-request reference forward — across fault
//! profiles, chaos seeds, and compute thread counts — and no request may
//! hang or be dropped.
//!
//! The crash dimension kills a hot-expert replica mid-run on a
//! liveness-monitored mesh: the frontend must fail over to the expert's
//! surviving replica, re-dispatch the dead worker's chunks, and still
//! produce bitwise-identical responses.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use janus::comm::faulty::{FaultPlan, FaultyTransport, Partition};
use janus::comm::local::local_mesh;
use janus::comm::reliable::{ReliableTransport, RetransmitPolicy};
use janus::serve::{
    plan_from_workload, serve_local, serve_on, CrashHook, ServeConfig, ServeModel, ServeOpts,
    ServeRun, ServeSpec, ServeWorkload,
};
use janus::tensor::{pool, Matrix};

/// `pool::set_threads` is process-global, so tests that sweep thread
/// counts serialize on this lock instead of racing each other.
static THREAD_SWEEP: Mutex<()> = Mutex::new(());

fn cfg() -> ServeConfig {
    ServeConfig::small()
}

const BUDGET: usize = 6;

/// Base chaos seed: `JANUS_CHAOS_SEED` (as set by the CI chaos shard) or
/// a fixed default. A second seed is derived so every local run still
/// covers two distinct fault schedules.
fn chaos_seeds() -> [u64; 2] {
    let base = std::env::var("JANUS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    [base, base ^ 0x9E37_79B9]
}

/// Retransmit policy tuned for tests: aggressive timeouts so dropped
/// messages recover in microseconds, with a budget far above anything a
/// fault plan here can exhaust.
fn chaos_policy() -> RetransmitPolicy {
    RetransmitPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        max_attempts: 400,
        flush_quiet: Duration::from_millis(40),
        ..RetransmitPolicy::default()
    }
}

/// One reliable-over-faulty endpoint per rank.
fn chaos_mesh(
    world: usize,
    plan: &FaultPlan,
) -> Vec<ReliableTransport<FaultyTransport<janus::comm::local::LocalTransport>>> {
    local_mesh(world)
        .into_iter()
        .map(|t| {
            ReliableTransport::with_policy(FaultyTransport::new(t, plan.clone()), chaos_policy())
        })
        .collect()
}

/// The fault matrix: each profile exercises one failure mode, plus one
/// combined profile that layers them all.
fn fault_matrix(seed: u64, world: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drops",
            FaultPlan {
                seed,
                drop: 0.05,
                ..FaultPlan::default()
            },
        ),
        (
            "delays",
            FaultPlan {
                seed,
                delay: 0.4,
                max_delay_ops: 5,
                ..FaultPlan::default()
            },
        ),
        (
            "duplicates",
            FaultPlan {
                seed,
                duplicate: 0.3,
                ..FaultPlan::default()
            },
        ),
        (
            "partition",
            FaultPlan {
                seed,
                partitions: vec![Partition {
                    a: 0,
                    b: world - 1,
                    from_op: 2,
                    to_op: 10,
                }],
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                seed,
                drop: 0.03,
                delay: 0.2,
                max_delay_ops: 3,
                duplicate: 0.15,
                reorder: 0.25,
                partitions: vec![Partition {
                    a: 1,
                    b: 2,
                    from_op: 4,
                    to_op: 9,
                }],
                ..FaultPlan::default()
            },
        ),
    ]
}

/// Run `f` on a helper thread and panic if it does not finish within
/// `timeout` — turning any protocol hang into a loud, named failure.
fn with_watchdog<R: Send + 'static>(
    label: &str,
    timeout: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let name = format!("chaos-serve:{label}");
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawning watchdog worker");
    match rx.recv_timeout(timeout) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{name} panicked; the original panic is above in stderr")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: {name} did not finish within {timeout:?} (hang, not a diagnostic)")
        }
    }
}

/// The bitwise oracle: every response equals the single-request
/// reference forward of its tokens, and every request completed.
fn assert_bitwise(label: &str, model: &ServeModel, wl: &ServeWorkload, run: &ServeRun) {
    assert_eq!(
        run.frontend.responses.len(),
        wl.requests.len(),
        "{label}: requests lost"
    );
    for (i, (req, got)) in wl.requests.iter().zip(&run.frontend.responses).enumerate() {
        let want: Matrix = model.forward_reference(&req.tokens);
        assert_eq!(
            want.data(),
            got.data(),
            "{label}: request {i} (client {} seq {}) not bitwise identical",
            req.id.client,
            req.id.seq
        );
    }
}

/// The headline serving chaos matrix: every fault profile × two chaos
/// seeds × two compute thread counts, every response bitwise identical
/// to the reference forward, no hangs.
///
/// One `#[test]` on purpose: `pool::set_threads` is process-global, so
/// the thread sweep must not race a concurrently running test.
#[test]
fn serving_chaos_matrix_is_bitwise_identical_to_reference() {
    with_watchdog("matrix", Duration::from_secs(240), || {
        let _sweep = THREAD_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = cfg();
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        let (_, plan) = plan_from_workload(&model, &wl, BUDGET);
        let mut clean_across_threads: Option<Vec<Matrix>> = None;
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let spec = ServeSpec {
                model: &model,
                workload: &wl,
                plan: &plan,
                max_batch_tokens: cfg.max_batch_tokens,
                opts: ServeOpts::default(),
                crash: None,
            };
            // Fault-free run: bitwise to reference, zero fault activity.
            let clean = serve_local(&spec);
            assert_bitwise(&format!("clean threads={threads}"), &model, &wl, &clean);
            let cstats = clean.total_comm_stats();
            assert_eq!(cstats.faults_dropped, 0, "clean run saw faults: {cstats:?}");
            assert_eq!(cstats.retransmits, 0, "clean run retransmitted: {cstats:?}");
            if let Some(prev) = &clean_across_threads {
                for (a, b) in prev.iter().zip(&clean.frontend.responses) {
                    assert_eq!(a.data(), b.data(), "threads changed serving numerics");
                }
            }
            for seed in chaos_seeds() {
                for (name, fplan) in fault_matrix(seed, plan.world()) {
                    let label = format!("{name} seed={seed:#x} threads={threads}");
                    eprintln!("chaos-serve: {label}");
                    let run = serve_on(chaos_mesh(plan.world(), &fplan), &spec);
                    assert_bitwise(&label, &model, &wl, &run);
                    for w in &run.workers {
                        assert!(w.is_ok(), "{label}: worker died: {w:?}");
                    }

                    // Non-vacuity: the plan must actually have fired, and
                    // the reliability layer must actually have recovered.
                    let c = run.total_comm_stats();
                    match name {
                        "drops" | "partition" => {
                            assert!(c.faults_dropped > 0, "{label}: no drops injected: {c:?}");
                            assert!(c.retransmits > 0, "{label}: nothing retransmitted: {c:?}");
                        }
                        "delays" => {
                            assert!(c.faults_delayed > 0, "{label}: no delays injected: {c:?}");
                        }
                        "duplicates" => {
                            assert!(c.faults_duplicated > 0, "{label}: no dupes injected: {c:?}");
                            assert!(
                                c.duplicates_dropped > 0,
                                "{label}: receiver dropped no duplicates: {c:?}"
                            );
                        }
                        _ => {
                            assert!(
                                c.faults_dropped + c.faults_delayed + c.faults_duplicated > 0,
                                "{label}: combined plan injected nothing: {c:?}"
                            );
                        }
                    }
                }
            }
            clean_across_threads = Some(clean.frontend.responses);
        }
        pool::set_threads(0); // restore the JANUS_THREADS/env default
    })
}

/// The crash property: killing a hot-expert replica mid-run on a
/// liveness-monitored mesh degrades it to the surviving replica — the
/// dead worker's outstanding chunks are re-dispatched, every request
/// still completes, and every response is still bitwise identical.
#[test]
fn killed_expert_worker_fails_over_to_its_replica_bitwise() {
    with_watchdog("crash", Duration::from_secs(120), || {
        let cfg = cfg();
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        let (hist, plan) = plan_from_workload(&model, &wl, BUDGET);
        // Expert 0 is the Zipf-hottest, so the apportionment must give it
        // at least two replicas — the victim and its stand-in.
        assert!(
            plan.counts[0] >= 2,
            "hot expert needs a replica to fail over to: hist={hist:?} counts={:?}",
            plan.counts
        );
        let victim = plan.homes[0][0];
        for seed_extra_dispatch in [1u64, 2] {
            let spec = ServeSpec {
                model: &model,
                workload: &wl,
                plan: &plan,
                max_batch_tokens: cfg.max_batch_tokens,
                opts: ServeOpts::default(),
                crash: Some(CrashHook {
                    rank: victim,
                    after_dispatches: seed_extra_dispatch,
                }),
            };
            let run = serve_local(&spec);
            let label = format!("crash rank {victim} on dispatch {seed_extra_dispatch}");
            assert_bitwise(&label, &model, &wl, &run);
            assert!(
                run.frontend.failovers >= 1,
                "{label}: frontend never failed over"
            );
            assert!(
                run.frontend.redispatches >= 1,
                "{label}: dead worker's chunks were never re-served"
            );
            let victim_outcome = &run.workers[victim - 1];
            let err = victim_outcome
                .as_ref()
                .expect_err("the crashed worker must report its panic");
            assert!(
                err.contains("injected crash"),
                "{label}: unexpected worker error: {err}"
            );
            for (i, w) in run.workers.iter().enumerate() {
                if i + 1 != victim {
                    assert!(w.is_ok(), "{label}: bystander worker {} died: {w:?}", i + 1);
                }
            }
        }
    })
}
