//! Cluster topology model for the Janus MoE training framework.
//!
//! The paper evaluates Janus on machines with the link structure of an
//! NVIDIA A100 SXM server (paper Figure 6): GPUs inside a machine are
//! connected by NVLink/NVSwitch, pairs of GPUs hang off a shared PCIe
//! switch that connects them to CPU memory, and machines are connected by
//! an RDMA NIC. This crate models that structure explicitly:
//!
//! * [`ClusterSpec`] describes the shape (machines × GPUs) and link
//!   bandwidths of a cluster and materializes into a [`Cluster`].
//! * [`Cluster`] owns the set of directed [`Link`]s and answers routing
//!   queries ([`Cluster::route`]) between the memory domains of the
//!   cluster ([`Location`]): a GPU's HBM or a machine's CPU memory.
//! * [`WorkerId`]/[`MachineId`] identify GPUs (workers) and machines; the
//!   expert-parallel rank layout (which worker holds which expert) is
//!   derived from them.
//!
//! The simulator ([`janus-netsim`]) consumes the link set as a vector of
//! capacities; the engines in `janus-core` consume routes.
//!
//! ```
//! use janus_topology::{ClusterSpec, Location, WorkerId};
//!
//! let cluster = ClusterSpec::a100(4, 8).build();
//! assert_eq!(cluster.num_workers(), 32);
//! // Pulling an expert from GPU 9 (machine 1) into machine 0's CPU cache
//! // crosses the source GPU's PCIe lanes, both NICs, and the PCIe switch
//! // that hosts the destination NIC.
//! let route = cluster.route(Location::Gpu(WorkerId(9)), Location::CpuMem(0.into()));
//! assert_eq!(route.len(), 4);
//! ```

pub mod cluster;
pub mod ids;
pub mod link;
pub mod presets;

pub use cluster::{Cluster, ClusterSpec, Location, Route};
pub use ids::{LinkId, LocalRank, MachineId, PcieSwitchId, WorkerId};
pub use link::{Link, LinkDirection, LinkKind};
pub use presets::Bandwidths;
