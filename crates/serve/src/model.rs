//! The served model: a steering gate over real expert FFNs.
//!
//! Serving tests need a gate whose routing *provably* follows the
//! workload's Zipf intent, so the gate projection is diagonal: logit of
//! expert `e` is `GAIN · x[e]`, and [`crate::workload`] embeds each
//! token's intended expert as a large component at dimension `e`. The
//! top-1 choice is therefore the intent; further choices (for
//! `top_k > 1`) fall to the token's noise dimensions, which spreads
//! secondary load without disturbing the skew. Experts are ordinary
//! seeded [`ExpertFfn`]s — the same kernels training uses.

use janus_moe::expert::ExpertFfn;
use janus_moe::gate::TopKGate;
use janus_tensor::Matrix;
use rand::{rngs::StdRng, SeedableRng};

use crate::workload::ServeConfig;

/// Gate steering gain: large enough that the intended expert always
/// wins the top-1 slot over the ±0.1 embedding noise.
const GAIN: f32 = 4.0;

/// One MoE layer being served: gate plus expert weights.
#[derive(Debug, Clone)]
pub struct ServeModel {
    /// The router.
    pub gate: TopKGate,
    /// Expert weights, indexed by global expert id.
    pub experts: Vec<ExpertFfn>,
}

impl ServeModel {
    /// Build the model for `cfg` (deterministic per seed).
    pub fn new(cfg: &ServeConfig) -> Self {
        assert!(
            cfg.hidden_dim >= cfg.experts,
            "steering gate needs hidden_dim >= experts"
        );
        let mut weight = Matrix::zeros(cfg.hidden_dim, cfg.experts);
        for e in 0..cfg.experts {
            weight[(e, e)] = GAIN;
        }
        let gate = TopKGate {
            weight,
            top_k: cfg.top_k,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let experts = (0..cfg.experts)
            .map(|_| ExpertFfn::new(cfg.hidden_dim, &mut rng))
            .collect();
        ServeModel { gate, experts }
    }

    /// Token width `H`.
    pub fn hidden_dim(&self) -> usize {
        self.gate.weight.rows()
    }

    /// Single-request reference forward pass: gate, run each expert over
    /// its tokens, combine in (token, choice-rank) order. The serving
    /// engine must reproduce this **bitwise** for every request, whatever
    /// the batch composition, chunking, or failover history — expert
    /// kernels are row-independent and the engine combines in this exact
    /// order.
    pub fn forward_reference(&self, tokens: &Matrix) -> Matrix {
        let routing = self.gate.route(tokens);
        let mut per_expert: Vec<Option<(Vec<usize>, Matrix)>> = vec![None; self.experts.len()];
        for (e, expert) in self.experts.iter().enumerate() {
            let toks = routing.tokens_for(e);
            if toks.is_empty() {
                continue;
            }
            let rows: Vec<usize> = toks.iter().map(|&(t, _)| t).collect();
            let (y, _) = expert.forward(&tokens.gather_rows(&rows));
            per_expert[e] = Some((rows, y));
        }
        let mut out = Matrix::zeros(tokens.rows(), tokens.cols());
        for t in 0..tokens.rows() {
            let dst = out.row_mut(t);
            for (k, &e) in routing.experts[t].iter().enumerate() {
                let w = routing.weights[t][k];
                let (rows, y) = per_expert[e].as_ref().expect("expert has tokens");
                let r = rows.iter().position(|&x| x == t).expect("token routed");
                for (d, s) in dst.iter_mut().zip(y.row(r)) {
                    *d += w * s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ServeWorkload;

    #[test]
    fn gate_follows_workload_intent() {
        let cfg = ServeConfig::small();
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        for req in &wl.requests {
            let routing = model.gate.route(&req.tokens);
            for (t, &target) in req.targets.iter().enumerate() {
                assert_eq!(
                    routing.experts[t][0], target,
                    "top-1 choice must be the embedded intent"
                );
            }
        }
    }

    #[test]
    fn reference_forward_is_deterministic() {
        let cfg = ServeConfig::small();
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        let a = model.forward_reference(&wl.requests[0].tokens);
        let b = model.forward_reference(&wl.requests[0].tokens);
        assert_eq!(a.data(), b.data());
        assert!(a.data().iter().all(|v| v.is_finite()));
    }
}
