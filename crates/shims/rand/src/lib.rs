//! Offline shim for `rand` 0.9: the API subset this workspace uses.
//!
//! `StdRng` is a SplitMix64 generator — deterministic per seed and
//! statistically adequate for test-data generation, but intentionally not
//! bit-compatible with upstream `StdRng` (no repo test depends on
//! upstream bit patterns).

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u8, u16, u32, u64);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
signed_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when
            // used as a stream; one add + two xor-shift-multiplies.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = rng.random_range(0usize..=0);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
