//! The transport abstraction and its error type.

use crate::message::Message;
use std::fmt;
use std::io;
use std::time::Duration;

/// Errors raised by transports and the layers above them.
#[derive(Debug)]
pub enum CommError {
    /// Underlying socket/channel failure.
    Io(io::Error),
    /// A peer hung up while messages were still expected.
    Disconnected,
    /// A frame arrived but could not be parsed.
    Decode(String),
    /// A frame exceeded the configured maximum size (corrupt length
    /// header or a hostile peer).
    FrameTooLarge {
        /// Claimed frame length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// A retry budget was exhausted: a reliable delivery, a connection
    /// attempt, or a protocol pull gave up after `attempts` tries over
    /// `elapsed`. `context` names what timed out (peer, sequence number,
    /// block/expert — whatever the layer knows), so the failure is a
    /// diagnostic rather than a hang.
    Timeout {
        /// What was being waited for (names the peer/block/expert/addr).
        context: String,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Wall-clock time spent across all attempts.
        elapsed: Duration,
    },
    /// A peer was declared dead — its worker thread panicked, or it
    /// stopped heartbeating — so blocking on it would hang forever.
    /// Raised by [`crate::liveness::LivenessMonitor`] instead of waiting.
    PeerDead {
        /// The dead peer's rank.
        rank: usize,
        /// This endpoint's virtual op count (messages sent + received)
        /// when the peer was last heard from; 0 if never.
        last_seen: u64,
        /// Why the peer is considered dead (panic message, missed
        /// heartbeats, ...).
        reason: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Io(e) => write!(f, "io error: {e}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Decode(msg) => write!(f, "decode error: {msg}"),
            CommError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            CommError::Timeout {
                context,
                attempts,
                elapsed,
            } => {
                write!(
                    f,
                    "timeout after {attempts} attempts over {elapsed:?}: {context}"
                )
            }
            CommError::PeerDead {
                rank,
                last_seen,
                reason,
            } => {
                write!(
                    f,
                    "peer rank {rank} is dead (last heard at op {last_seen}): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CommError {
    fn from(e: io::Error) -> Self {
        CommError::Io(e)
    }
}

/// Delivery/fault counters accumulated by the transport stack. Every
/// wrapper merges its own counters with its inner transport's, so
/// `stats()` on the outermost layer reports the whole stack.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames retransmitted by a reliability layer.
    pub retransmits: u64,
    /// Duplicate frames discarded by sequence-number dedup.
    pub duplicates_dropped: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Frames that arrived ahead of sequence and were held for reorder.
    pub out_of_order_held: u64,
    /// Messages a fault injector silently dropped (including partition
    /// windows).
    pub faults_dropped: u64,
    /// Messages a fault injector delayed.
    pub faults_delayed: u64,
    /// Messages a fault injector duplicated.
    pub faults_duplicated: u64,
    /// Backoff sleeps shortened by deterministic seeded jitter (proof
    /// the de-synchronization is active, since the sleep itself leaves
    /// no other trace).
    pub jittered_backoffs: u64,
}

impl TransportStats {
    /// Field-wise accumulate.
    pub fn add(&mut self, o: &TransportStats) {
        self.retransmits += o.retransmits;
        self.duplicates_dropped += o.duplicates_dropped;
        self.acks_sent += o.acks_sent;
        self.out_of_order_held += o.out_of_order_held;
        self.faults_dropped += o.faults_dropped;
        self.faults_delayed += o.faults_delayed;
        self.faults_duplicated += o.faults_duplicated;
        self.jittered_backoffs += o.jittered_backoffs;
    }
}

/// Deterministic seeded backoff jitter: a value in `[0, backoff/4]`
/// derived by FNV-mixing `(seed, attempt, seq)`, to be *subtracted*
/// from an exponential backoff so peers that failed in lockstep (a
/// partition healing, a mesh assembling) retry de-synchronized instead
/// of hammering the link in phase. Subtracting keeps every retry within
/// its original deadline, and the same `(seed, attempt, seq)` always
/// yields the same jitter — wall-clock timing shifts, but message
/// contents, ordering guarantees, and therefore training bits do not.
pub fn seeded_jitter(seed: u64, attempt: u32, seq: u64, backoff: Duration) -> Duration {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain((attempt as u64).to_le_bytes())
        .chain(seq.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Scale the hash into [0, 1/4] of the backoff, in nanoseconds.
    let quarter = (backoff.as_nanos() / 4) as u64;
    Duration::from_nanos(if quarter == 0 { 0 } else { h % (quarter + 1) })
}

/// How long the default polling [`Transport::recv_timeout`] sleeps
/// between `try_recv` probes.
const POLL_INTERVAL: Duration = Duration::from_micros(100);

/// Rank-addressed, reliable, ordered message delivery between the members
/// of a fixed-size world. Implementations: [`crate::local::LocalTransport`]
/// (crossbeam channels), [`crate::tcp::TcpTransport`] (length-prefixed
/// frames over `std::net`), [`crate::faulty::FaultyTransport`] (seeded
/// fault injection), and [`crate::reliable::ReliableTransport`]
/// (seq/ack/retransmit over a lossy inner transport).
pub trait Transport: Send {
    /// This endpoint's rank, in `0..world_size`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the mesh.
    fn world_size(&self) -> usize;

    /// Send a message to `to`. Sending to self is allowed and loops back.
    fn send(&self, to: usize, msg: Message) -> Result<(), CommError>;

    /// Block until the next message arrives, returning `(from, message)`.
    fn recv(&self) -> Result<(usize, Message), CommError>;

    /// Non-blocking receive: `Ok(None)` when no message is waiting.
    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError>;

    /// Block up to `timeout` for the next message; `Ok(None)` when the
    /// timeout elapses first. The default implementation polls
    /// [`Transport::try_recv`]; channel-backed transports override it
    /// with a real timed wait.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, Message)>, CommError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(m) = self.try_recv()? {
                return Ok(Some(m));
            }
            if std::time::Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(POLL_INTERVAL.min(timeout));
        }
    }

    /// Delivery/fault counters of this transport stack. Plain transports
    /// report zeros; reliability and fault-injection wrappers override
    /// this and fold in their inner transport's counters.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Block until every message this endpoint sent has been delivered
    /// (acknowledged), as far as this transport can tell. Plain
    /// transports deliver synchronously and return immediately; a
    /// reliability layer drains its retransmit queue and lingers to
    /// re-ack peers still retransmitting. Call before dropping the
    /// endpoint so in-flight traffic is not lost with it.
    fn flush(&self) -> Result<(), CommError> {
        Ok(())
    }

    /// A handle through which the runtime reports this endpoint's own
    /// death (worker panic) to the rest of the mesh. Plain transports
    /// have no shared liveness state and return a no-op handle;
    /// [`crate::liveness::LivenessMonitor`] returns one wired to its
    /// mesh-wide health board, and wrapper transports forward to their
    /// inner transport.
    fn death_handle(&self) -> crate::liveness::DeathHandle {
        crate::liveness::DeathHandle::noop()
    }

    /// Tolerate a peer this endpoint knows to be dead: after the call,
    /// blocking operations no longer fail with [`CommError::PeerDead`]
    /// for `rank`, so the survivors can keep talking to each other
    /// (failover) instead of tearing the whole world down. Sending to
    /// the dead rank still fails. Plain transports never raise
    /// `PeerDead`, so the default is a no-op;
    /// [`crate::liveness::LivenessMonitor`] implements it and wrapper
    /// transports forward to their inner transport.
    fn acknowledge_dead(&self, _rank: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CommError::FrameTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
        let io_err = CommError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(std::error::Error::source(&CommError::Disconnected).is_none());
    }

    #[test]
    fn timeout_display_names_context_attempts_and_elapsed() {
        let e = CommError::Timeout {
            context: "pull of expert 3 (block 1) from peer rank 2".into(),
            attempts: 4,
            elapsed: Duration::from_millis(120),
        };
        let s = e.to_string();
        assert!(s.contains("timeout"), "{s}");
        assert!(s.contains("4 attempts"), "{s}");
        assert!(s.contains("expert 3"), "{s}");
        assert!(s.contains("block 1"), "{s}");
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("120ms"), "{s}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn peer_dead_display_names_rank_and_reason() {
        let e = CommError::PeerDead {
            rank: 3,
            last_seen: 17,
            reason: "worker panicked: boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("op 17"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn stats_accumulate_fieldwise() {
        let mut a = TransportStats {
            retransmits: 1,
            duplicates_dropped: 2,
            acks_sent: 3,
            out_of_order_held: 4,
            faults_dropped: 5,
            faults_delayed: 6,
            faults_duplicated: 7,
            jittered_backoffs: 8,
        };
        a.add(&a.clone());
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.duplicates_dropped, 4);
        assert_eq!(a.acks_sent, 6);
        assert_eq!(a.out_of_order_held, 8);
        assert_eq!(a.faults_dropped, 10);
        assert_eq!(a.faults_delayed, 12);
        assert_eq!(a.faults_duplicated, 14);
        assert_eq!(a.jittered_backoffs, 16);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_attempt_sensitive() {
        let backoff = Duration::from_millis(8);
        let j = seeded_jitter(7, 3, 42, backoff);
        assert_eq!(
            j,
            seeded_jitter(7, 3, 42, backoff),
            "same inputs, same jitter"
        );
        assert!(j <= backoff / 4, "jitter stays within a quarter backoff");
        // Different attempts (and seeds) de-synchronize.
        let other = seeded_jitter(7, 4, 42, backoff);
        assert_ne!(j, other);
        assert_ne!(j, seeded_jitter(8, 3, 42, backoff));
        // Degenerate backoffs never underflow.
        assert_eq!(seeded_jitter(7, 1, 1, Duration::ZERO), Duration::ZERO);
    }
}
