//! Expert-centric MoE-block emitter: tokens move through All-to-All,
//! experts stay put (the Tutel/DeepSpeed baseline and Janus's own
//! expert-centric mode).
//!
//! Each MoE block contributes four All-to-All phases per iteration:
//! forward dispatch (`fd`), forward combine (`fc`), backward combine
//! (`bc`, output gradients to expert owners) and backward dispatch
//! (`bd`, input gradients back to token owners). All four are synchronous
//! collectives: expert computation starts only after the whole phase
//! completes (paper Figure 5a).
//!
//! Whole-iteration graphs are assembled by [`crate::sim::engine`], which
//! mixes these emitters with the data-centric ones per block.

use crate::plan::expert_owner;
use crate::sim::common::Ctx;
use crate::sim::setup::SimSetup;
use janus_moe::flops::{self, BACKWARD_FACTOR};
use janus_netsim::TaskId;
use janus_topology::{Location, WorkerId};

/// Bytes worker `src` sends to worker `dst` in one dispatch All-to-All of
/// block `b` (tokens routed to experts owned by `dst`).
fn pair_bytes(setup: &SimSetup, b: usize, src: usize, dst: usize) -> f64 {
    let asg = setup.assignment(b);
    let experts_total = asg.experts();
    let num_workers = setup.cluster.num_workers();
    let mut tokens = 0usize;
    for e in 0..experts_total {
        if expert_owner(e, experts_total, num_workers).0 == dst {
            tokens += asg.tokens(src, e);
        }
    }
    tokens as f64 * setup.model.token_bytes()
}

/// Emit one All-to-All phase. `bytes(src, dst)` gives the payload of each
/// directed pair; `deps[w]` gates worker `w`'s sends. Returns the global
/// join task.
#[allow(clippy::needless_range_loop)]
fn a2a_phase(
    ctx: &mut Ctx,
    b: usize,
    tag: &str,
    hierarchical: bool,
    deps: &[TaskId],
    bytes: &dyn Fn(usize, usize) -> f64,
) -> TaskId {
    let cluster = &ctx.setup.cluster;
    let w_count = cluster.num_workers();
    let m = cluster.gpus_per_machine();
    let mut all: Vec<TaskId> = deps.to_vec();

    if !hierarchical {
        for src in 0..w_count {
            for dst in 0..w_count {
                if src == dst {
                    continue;
                }
                let payload = bytes(src, dst);
                if payload <= 0.0 {
                    continue;
                }
                let t = ctx.transfer(
                    Location::Gpu(WorkerId(src)),
                    Location::Gpu(WorkerId(dst)),
                    payload,
                    format!("a2a/b{b}/{tag}/w{src}-w{dst}"),
                    0,
                    None,
                    &[deps[src]],
                );
                all.push(t);
            }
        }
        return ctx.join(format!("a2a/b{b}/{tag}/join"), &all);
    }

    // Hierarchical (Tutel-style): three stages.
    let machines: Vec<_> = cluster.machines().collect();
    // agg(machine, remote) = the local GPU responsible for traffic
    // to/from `remote`.
    let agg = |mach: janus_topology::MachineId, remote: janus_topology::MachineId| -> usize {
        cluster
            .worker_at(mach, janus_topology::LocalRank(remote.0 % m))
            .0
    };

    // Intra-machine pairs go direct over NVLink.
    for src in 0..w_count {
        for dst in 0..w_count {
            if src == dst || cluster.machine_of(WorkerId(src)) != cluster.machine_of(WorkerId(dst))
            {
                continue;
            }
            let payload = bytes(src, dst);
            if payload > 0.0 {
                let t = ctx.transfer(
                    Location::Gpu(WorkerId(src)),
                    Location::Gpu(WorkerId(dst)),
                    payload,
                    format!("a2a/b{b}/{tag}/w{src}-w{dst}"),
                    0,
                    None,
                    &[deps[src]],
                );
                all.push(t);
            }
        }
    }

    for &ma in &machines {
        for &mb in &machines {
            if ma == mb {
                continue;
            }
            let src_agg = agg(ma, mb);
            let dst_agg = agg(mb, ma);
            // Stage 1: local workers hand their M_b-bound tokens to the
            // aggregator over NVLink.
            let mut stage1 = Vec::new();
            let mut total = 0.0;
            for src in cluster.workers_on(ma) {
                let to_mb: f64 = cluster.workers_on(mb).map(|d| bytes(src.0, d.0)).sum();
                total += to_mb;
                if src.0 == src_agg || to_mb <= 0.0 {
                    continue;
                }
                let t = ctx.transfer(
                    Location::Gpu(src),
                    Location::Gpu(WorkerId(src_agg)),
                    to_mb,
                    format!("a2a/b{b}/{tag}/agg-w{}-M{}", src.0, mb.0),
                    0,
                    None,
                    &[deps[src.0]],
                );
                stage1.push(t);
                all.push(t);
            }
            if total <= 0.0 {
                continue;
            }
            // Stage 2: one aggregated NIC flow per machine pair.
            let mut s2_deps = stage1;
            s2_deps.push(deps[src_agg]);
            let s2 = ctx.transfer(
                Location::Gpu(WorkerId(src_agg)),
                Location::Gpu(WorkerId(dst_agg)),
                total,
                format!("a2a/b{b}/{tag}/M{}-M{}", ma.0, mb.0),
                0,
                None,
                &s2_deps,
            );
            all.push(s2);
            // Stage 3: distribute at the destination over NVLink.
            for dst in cluster.workers_on(mb) {
                let from_ma: f64 = cluster.workers_on(ma).map(|s| bytes(s.0, dst.0)).sum();
                if dst.0 == dst_agg || from_ma <= 0.0 {
                    continue;
                }
                let t = ctx.transfer(
                    Location::Gpu(WorkerId(dst_agg)),
                    Location::Gpu(dst),
                    from_ma,
                    format!("a2a/b{b}/{tag}/dist-M{}-w{}", ma.0, dst.0),
                    0,
                    None,
                    &[s2],
                );
                all.push(t);
            }
        }
    }
    ctx.join(format!("a2a/b{b}/{tag}/join"), &all)
}

/// Emit the forward expert phase of MoE block `b` (dispatch A2A, expert
/// computation, combine A2A). `shared[w]` is worker `w`'s attention+gate
/// task. Returns the per-worker completion tasks.
pub fn emit_fwd_block(
    ctx: &mut Ctx,
    b: usize,
    shared: &[TaskId],
    hierarchical: bool,
) -> Vec<TaskId> {
    let setup = ctx.setup;
    let w_count = setup.cluster.num_workers();
    let dispatch = a2a_phase(ctx, b, "fd", hierarchical, shared, &|s, d| {
        pair_bytes(setup, b, s, d)
    });

    let asg = setup.assignment(b);
    let experts_total = asg.experts();
    let e_per = experts_total / w_count;
    let mut ep_joins = Vec::with_capacity(w_count);
    for w in 0..w_count {
        let mut deps = vec![dispatch];
        for e in w * e_per..(w + 1) * e_per {
            let tokens = asg.expert_load(e);
            let t = ctx.compute(
                w,
                flops::expert_fwd_flops(&setup.model, tokens),
                format!("w{w}/b{b}/ep{e}/fwd"),
                b as i64,
                &[dispatch],
            );
            deps.push(t);
        }
        ep_joins.push(ctx.join(format!("w{w}/b{b}/experts-fwd"), &deps));
    }

    let combine = a2a_phase(ctx, b, "fc", hierarchical, &ep_joins, &|s, d| {
        pair_bytes(setup, b, d, s)
    });
    (0..w_count)
        .map(|w| ctx.join(format!("w{w}/b{b}/fwd-done"), &[combine]))
        .collect()
}

/// Emit the backward expert phase of MoE block `b`. `prev[w]` carries the
/// incoming gradient of worker `w` (the downstream block's backward).
/// Returns per-worker tasks gating this block's shared backward.
pub fn emit_bwd_block(ctx: &mut Ctx, b: usize, prev: &[TaskId], hierarchical: bool) -> Vec<TaskId> {
    let setup = ctx.setup;
    let w_count = setup.cluster.num_workers();
    let blocks = setup.model.blocks.len();
    // Output gradients travel to the expert owners (same matrix as the
    // forward dispatch).
    let bc = a2a_phase(ctx, b, "bc", hierarchical, prev, &|s, d| {
        pair_bytes(setup, b, s, d)
    });
    let asg = setup.assignment(b);
    let experts_total = asg.experts();
    let e_per = experts_total / w_count;
    let mut ep_joins = Vec::with_capacity(w_count);
    for w in 0..w_count {
        let mut deps = vec![bc];
        for e in w * e_per..(w + 1) * e_per {
            let tokens = asg.expert_load(e);
            let t = ctx.compute(
                w,
                BACKWARD_FACTOR * flops::expert_fwd_flops(&setup.model, tokens),
                format!("w{w}/b{b}/ep{e}/bwd"),
                1000 + (blocks - b) as i64,
                &[bc],
            );
            deps.push(t);
        }
        ep_joins.push(ctx.join(format!("w{w}/b{b}/experts-bwd"), &deps));
    }
    // Input gradients travel back to the token owners.
    let bd = a2a_phase(ctx, b, "bd", hierarchical, &ep_joins, &|s, d| {
        pair_bytes(setup, b, d, s)
    });
    vec![bd; w_count]
}
