//! Gradient pre-reduction in the Inter-Node Scheduler (paper §5.1.2,
//! backward phase).
//!
//! Instead of every worker pushing its expert gradient across the RDMA
//! fabric, the Inter-Node Scheduler accumulates the gradients of all `m`
//! local workers for each external expert and sends one pre-reduced
//! gradient per expert per machine.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Key of an accumulated gradient: (MoE block index, global expert index).
pub type GradKey = (usize, usize);

/// Accumulates per-worker gradients until the expected count arrives.
///
/// Contributions are buffered per sender and folded in ascending sender
/// order once complete, so the reduced sum is independent of arrival
/// order — floating-point reductions stay bitwise reproducible even when
/// the transport reorders messages across peers.
pub struct GradAccumulator<G> {
    expected: usize,
    pending: Mutex<HashMap<GradKey, Vec<(usize, G)>>>,
    /// Contributions folded into a pre-reduced payload beyond the first —
    /// i.e. cross-machine gradient messages the pre-reduction saved.
    prefolds: std::sync::atomic::AtomicU64,
}

impl<G> GradAccumulator<G> {
    /// Accumulator expecting `expected` contributions per expert (the
    /// number of workers on the machine).
    pub fn new(expected: usize) -> Self {
        assert!(expected > 0);
        GradAccumulator {
            expected,
            pending: Mutex::new(HashMap::new()),
            prefolds: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Add the gradient contributed by worker `sender`. When this is the
    /// `expected`-th contribution for `key`, all contributions are folded
    /// in ascending sender order and the pre-reduced gradient is returned
    /// (and the entry removed); otherwise `None`.
    ///
    /// `combine` folds a new contribution into the running sum.
    pub fn add(
        &self,
        key: GradKey,
        sender: usize,
        grad: G,
        combine: impl Fn(&mut G, G),
    ) -> Option<(G, usize)> {
        let mut pending = self.pending.lock();
        let parts = pending.entry(key).or_default();
        debug_assert!(
            parts.iter().all(|(s, _)| *s != sender),
            "duplicate contribution from sender {sender}"
        );
        parts.push((sender, grad));
        if parts.len() < self.expected {
            return None;
        }
        let mut parts = pending.remove(&key).expect("entry just populated");
        parts.sort_by_key(|(s, _)| *s);
        let n = parts.len();
        let mut it = parts.into_iter();
        let (_, mut sum) = it.next().expect("expected > 0");
        for (_, g) in it {
            combine(&mut sum, g);
        }
        let saved = (n as u64).saturating_sub(1);
        if saved > 0 {
            use std::sync::atomic::Ordering;
            self.prefolds.fetch_add(saved, Ordering::Relaxed);
            janus_obs::global().count("janus_grad_prefolds_total", saved);
        }
        Some((sum, n))
    }

    /// Contributions folded away by pre-reduction so far (messages the
    /// fabric never had to carry, paper §5.1.2).
    pub fn prefolds(&self) -> u64 {
        self.prefolds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of experts still waiting for contributions.
    pub fn outstanding(&self) -> usize {
        self.pending.lock().len()
    }

    /// Contributions expected per expert.
    pub fn expected(&self) -> usize {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::ptr_arg)] // must match the accumulator's fold signature
    fn sum(acc: &mut Vec<f32>, other: Vec<f32>) {
        for (a, b) in acc.iter_mut().zip(other) {
            *a += b;
        }
    }

    #[test]
    fn releases_only_on_last_contribution() {
        let acc: GradAccumulator<Vec<f32>> = GradAccumulator::new(3);
        assert!(acc.add((0, 1), 0, vec![1.0, 0.0], sum).is_none());
        assert!(acc.add((0, 1), 1, vec![0.0, 2.0], sum).is_none());
        assert_eq!(acc.outstanding(), 1);
        assert_eq!(acc.prefolds(), 0);
        let (g, n) = acc.add((0, 1), 2, vec![1.0, 1.0], sum).unwrap();
        assert_eq!(g, vec![2.0, 3.0]);
        assert_eq!(n, 3);
        assert_eq!(acc.outstanding(), 0);
        // Three contributions collapsed into one payload: two saved.
        assert_eq!(acc.prefolds(), 2);
    }

    #[test]
    fn keys_accumulate_independently() {
        let acc: GradAccumulator<Vec<f32>> = GradAccumulator::new(2);
        assert!(acc.add((0, 1), 0, vec![1.0], sum).is_none());
        assert!(acc.add((0, 2), 0, vec![10.0], sum).is_none());
        let (g1, _) = acc.add((0, 1), 1, vec![2.0], sum).unwrap();
        let (g2, _) = acc.add((0, 2), 1, vec![20.0], sum).unwrap();
        assert_eq!(g1, vec![3.0]);
        assert_eq!(g2, vec![30.0]);
    }

    #[test]
    fn single_worker_machine_passes_through() {
        let acc: GradAccumulator<Vec<f32>> = GradAccumulator::new(1);
        let (g, n) = acc.add((1, 0), 0, vec![5.0], sum).unwrap();
        assert_eq!(g, vec![5.0]);
        assert_eq!(n, 1);
    }

    #[test]
    fn key_reusable_after_release() {
        // The next iteration accumulates the same expert key again.
        let acc: GradAccumulator<Vec<f32>> = GradAccumulator::new(2);
        acc.add((0, 0), 0, vec![1.0], sum);
        acc.add((0, 0), 1, vec![1.0], sum).unwrap();
        assert!(acc.add((0, 0), 0, vec![7.0], sum).is_none());
        let (g, _) = acc.add((0, 0), 1, vec![1.0], sum).unwrap();
        assert_eq!(g, vec![8.0]);
    }

    #[test]
    fn fold_order_is_sender_order_not_arrival_order() {
        // f32 addition is not associative; picking senders whose partial
        // sums differ by arrival order would expose a nondeterministic
        // reduction. The accumulator must fold by ascending sender.
        let acc: GradAccumulator<Vec<f32>> = GradAccumulator::new(3);
        let (a, b, c) = (1.0e8f32, -1.0e8f32, 1.0f32);
        // ((a + b) + c) != (a + (b + c)) pattern via arrival order c, a, b.
        acc.add((0, 0), 2, vec![c], sum);
        acc.add((0, 0), 0, vec![a], sum);
        let (g, _) = acc.add((0, 0), 1, vec![b], sum).unwrap();
        assert_eq!(g, vec![(a + b) + c], "must reduce in sender order");
    }

    #[test]
    fn concurrent_adders_release_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let acc: Arc<GradAccumulator<Vec<f32>>> = Arc::new(GradAccumulator::new(8));
        let releases = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for sender in 0..8 {
            let acc = acc.clone();
            let releases = releases.clone();
            handles.push(std::thread::spawn(move || {
                if acc.add((0, 3), sender, vec![1.0], sum).is_some() {
                    releases.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(releases.load(Ordering::SeqCst), 1);
    }
}
