//! Iteration reports: the engine output every figure is a view over.

use crate::sim::memory::MemoryEstimate;
use janus_netsim::SimResult;
use janus_topology::Cluster;
use serde::Serialize;

/// Result of simulating one training iteration.
#[derive(Debug, Clone, Serialize)]
pub struct IterationReport {
    /// Which engine produced this (for printing).
    pub engine: String,
    /// Wall-clock of the whole iteration (seconds).
    pub iter_time: f64,
    /// Wall-clock of the forward phase (seconds).
    pub fwd_time: f64,
    /// Total time attributable to expert communication phases: All-to-All
    /// windows in the expert-centric engine; fetch stall time (time a
    /// worker's expert compute waited on an un-arrived expert) in the
    /// data-centric engine.
    pub comm_time: f64,
    /// Cross-node traffic per machine per iteration (bytes), measured on
    /// NIC egress links.
    pub cross_node_bytes_per_machine: f64,
    /// Per-GPU memory estimate (worst case across workers).
    pub memory: MemoryEstimate,
    /// Block completion timestamps at worker 0, forward phase (Figure 13
    /// upper timeline).
    pub block_finish_w0: Vec<f64>,
    /// Expert arrival timestamps at worker 0 `(label, time)`, forward
    /// phase (Figure 13 lower timeline). Empty for expert-centric runs.
    pub expert_arrival_w0: Vec<(String, f64)>,
    /// The raw simulation output (timings of every task, link counters).
    #[serde(skip)]
    pub sim: SimResult,
}

impl IterationReport {
    /// Fraction of the iteration spent in expert communication.
    pub fn comm_share(&self) -> f64 {
        if self.iter_time > 0.0 {
            self.comm_time / self.iter_time
        } else {
            0.0
        }
    }

    /// Derive common aggregates from a raw simulation result.
    ///
    /// * `cross-node traffic` sums NIC egress bytes divided by machine
    ///   count (each machine sends its share once; counting ingress too
    ///   would double count).
    pub fn cross_node_per_machine(cluster: &Cluster, sim: &SimResult) -> f64 {
        use janus_topology::{LinkDirection, LinkKind};
        let mut total = 0.0;
        for link in cluster.links() {
            if let LinkKind::Nic {
                dir: LinkDirection::Egress,
                ..
            } = link.kind
            {
                total += sim.link_bytes[link.id.index()];
            }
        }
        total / cluster.num_machines() as f64
    }
}
