//! Golden pin of the `repro migrate` elastic-migration artifact.
//!
//! The lab manifest hashes `migrate_report.json` through its masked
//! canonical form: parsed, the wall-clock `timing` section nulled,
//! re-rendered compact. This test pins that exact byte stream — the
//! content `repro lab --verify` re-digests — so any unintentional change
//! to the deterministic surface (the placement and plan digests, the
//! committed epochs and their reasons, the simulator's before/after
//! iteration pricing, the measured-on-TCP traffic counters, the
//! bitwise-resume verdicts) fails loudly here with a readable diff. The
//! acceptance criteria ride along as asserts inside `migrate::run()`:
//! the rebalance must cut the probe skew ratio, shorten the simulated
//! iteration, unload the hottest NIC (simulated *and* measured on the
//! real mesh), keep both placements' losses within float reassociation,
//! and every elastic run must be bitwise-resumable from its
//! post-migration cut.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test migrate_golden`.

use janus::lab::canonical_masked_json;
use janus_bench::experiments::migrate;

fn assert_golden(got: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(got, want, "golden mismatch for {name}");
}

#[test]
fn migrate_masked_canonical_form_is_golden() {
    let report = migrate::run();

    // The elastic run committed exactly the swap the probe priced, and
    // both chaos halves restarted bitwise from their migrated cuts.
    assert!(report.elastic.resume_bitwise);
    assert!(report.degraded.resume_bitwise);
    assert!(report.degraded.degraded);
    assert_eq!(report.elastic.migrations as usize, report.sim.moves);
    assert!(report.tcp.losses_equivalent);

    let masked: Vec<String> = migrate::MASKED_KEYS.iter().map(|k| k.to_string()).collect();
    let mut pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    pretty.push('\n');
    let mut canonical =
        canonical_masked_json(pretty.as_bytes(), &masked).expect("report is valid JSON");
    canonical.push('\n');
    assert_golden(&canonical, "migrate_report.json");
}
