//! Per-artifact manifests, diagnostics, and canonical content hashing.
//!
//! A manifest must be *deterministic*: two runs of the same task at the
//! same seed on the same tree produce byte-identical manifests, which is
//! what `repro lab --verify` checks. Anything wall-clock-dependent
//! (elapsed time, counter snapshots, thread configuration) therefore
//! lives in the sibling `diagnostics.json`, never in the manifest.

use janus_core::Fnv64;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::path::Path;

/// One output file of a task, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileEntry {
    /// File name inside the task's artifact directory.
    pub file: String,
    /// Size in bytes of the file as written.
    pub raw_bytes: u64,
    /// Canonical content digest (hex FNV-1a 64): JSON files are hashed
    /// through [`canonical_digest`]'s masked canonical form, everything
    /// else over raw bytes.
    pub digest: String,
    /// Volatile files embed wall-clock content; their digest is recorded
    /// for provenance but excluded from verification.
    pub volatile: bool,
}

/// Everything needed to reproduce (and verify) one task's artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Task name.
    pub task: String,
    /// Lab seed the task ran under.
    pub seed: u64,
    /// The task's configuration, embedded verbatim.
    pub config: Value,
    /// Canonical digest of `config` (hex).
    pub config_digest: String,
    /// `IterationPlan` digests consumed by the artifact (hex), when the
    /// task compiles plans.
    pub plan_digests: Vec<String>,
    /// `git describe --always --dirty` of the producing tree.
    pub git_describe: String,
    /// `rustc -V` of the producing toolchain.
    pub rustc: String,
    /// Workspace crate version.
    pub janus_version: String,
    /// JSON keys nulled before hashing this task's artifacts (the
    /// timing-only fields excluded from bitwise verification).
    pub masked_keys: Vec<String>,
    /// `(dependency task, combined digest of its non-volatile outputs)`.
    pub inputs: Vec<(String, String)>,
    /// Output files, in production order.
    pub outputs: Vec<FileEntry>,
}

impl Manifest {
    /// Render as pretty JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("manifest renders");
        s.push('\n');
        s
    }

    /// Parse a manifest file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Combined digest over this manifest's non-volatile outputs — the
    /// value downstream tasks record in their `inputs`.
    pub fn output_digest(&self) -> String {
        let mut h = Fnv64::new();
        for f in &self.outputs {
            if !f.volatile {
                h.bytes(f.file.as_bytes());
                h.byte(0);
                h.bytes(f.digest.as_bytes());
                h.byte(0);
            }
        }
        format!("{:016x}", h.finish())
    }

    /// The non-volatile output entries (what verification compares).
    pub fn verified_outputs(&self) -> impl Iterator<Item = &FileEntry> {
        self.outputs.iter().filter(|f| !f.volatile)
    }
}

/// How a task run went: the wall-clock side of the ledger, kept out of
/// the manifest so manifests stay reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Wall time of the run closure, milliseconds.
    pub elapsed_ms: u64,
    /// The `--jobs` bound the executor ran under.
    pub jobs: u64,
    /// `janus-tensor` pool width at run time.
    pub pool_threads: u64,
    /// `janus-obs` global counter snapshot after the run, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Diagnostics {
    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("diagnostics renders");
        s.push('\n');
        s
    }
}

/// Canonical content digest of one artifact file (hex FNV-1a 64).
///
/// Files named `*.json` are parsed, every field whose key is in
/// `masked` is recursively replaced with `null`, and the tree is
/// re-rendered compact before hashing — so digests are insensitive to
/// whitespace and to the masked (timing-only) fields, but sensitive to
/// every other byte of content. Non-JSON files (and JSON that fails to
/// parse) hash over raw bytes.
pub fn canonical_digest(name: &str, bytes: &[u8], masked: &[String]) -> String {
    let canonical: Option<String> = if name.ends_with(".json") {
        canonical_masked_json(bytes, masked)
    } else {
        None
    };
    let hashed = canonical.as_deref().map(str::as_bytes).unwrap_or(bytes);
    format!("{:016x}", Fnv64::digest_of(hashed))
}

/// The masked canonical form of a JSON artifact — parsed, every `masked`
/// key recursively nulled, re-rendered compact. This is exactly the byte
/// stream [`canonical_digest`] hashes for `*.json` files, exposed so
/// golden tests can pin the verified (timing-masked) content of an
/// artifact instead of an opaque digest. `None` when `bytes` is not
/// valid JSON.
pub fn canonical_masked_json(bytes: &[u8], masked: &[String]) -> Option<String> {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(text).ok())
        .map(|mut v| {
            mask_value(&mut v, masked);
            serde_json::to_string(&v).expect("value renders")
        })
}

/// Recursively replace every object field whose key is in `masked` with
/// `null`.
fn mask_value(v: &mut Value, masked: &[String]) {
    match v {
        Value::Obj(fields) => {
            for (k, val) in fields.iter_mut() {
                if masked.iter().any(|m| m == k) {
                    *val = Value::Null;
                } else {
                    mask_value(val, masked);
                }
            }
        }
        Value::Arr(items) => {
            for item in items.iter_mut() {
                mask_value(item, masked);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_fields_do_not_affect_digest() {
        let masked = vec!["elapsed_ms".to_string()];
        let a = br#"{"rows": [{"x": 1, "elapsed_ms": 17}], "elapsed_ms": 3}"#;
        let b = br#"{"rows":[{"x":1,"elapsed_ms":99}],"elapsed_ms":123}"#;
        let c = br#"{"rows":[{"x":2,"elapsed_ms":17}],"elapsed_ms":3}"#;
        let da = canonical_digest("r.json", a, &masked);
        let db = canonical_digest("r.json", b, &masked);
        let dc = canonical_digest("r.json", c, &masked);
        assert_eq!(da, db, "masked field + whitespace must not matter");
        assert_ne!(da, dc, "real content must matter");
    }

    #[test]
    fn non_json_hashes_raw_bytes() {
        let d1 = canonical_digest("m.txt", b"abc", &[]);
        let d2 = canonical_digest("m.txt", b"abd", &[]);
        assert_ne!(d1, d2);
        assert_eq!(d1, format!("{:016x}", Fnv64::digest_of(b"abc")));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest {
            task: "fig3".into(),
            seed: 7,
            config: serde_json::from_str(r#"{"iters": 4}"#).unwrap(),
            config_digest: "00000000deadbeef".into(),
            plan_digests: vec!["0123456789abcdef".into()],
            git_describe: "abc1234".into(),
            rustc: "rustc 1.x".into(),
            janus_version: "0.1.0".into(),
            masked_keys: vec!["elapsed_ms".into()],
            inputs: vec![("table1".into(), "0000000000000001".into())],
            outputs: vec![FileEntry {
                file: "fig3.json".into(),
                raw_bytes: 42,
                digest: "0000000000000002".into(),
                volatile: false,
            }],
        };
        let text = m.to_json();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.output_digest(), m.output_digest());
    }

    #[test]
    fn output_digest_ignores_volatile_files() {
        let nonvol = FileEntry {
            file: "a.json".into(),
            raw_bytes: 1,
            digest: "0000000000000001".into(),
            volatile: false,
        };
        let mut m = Manifest {
            task: "t".into(),
            seed: 0,
            config: Value::Null,
            config_digest: String::new(),
            plan_digests: vec![],
            git_describe: String::new(),
            rustc: String::new(),
            janus_version: String::new(),
            masked_keys: vec![],
            inputs: vec![],
            outputs: vec![nonvol],
        };
        let base = m.output_digest();
        m.outputs.push(FileEntry {
            file: "noise.json".into(),
            raw_bytes: 9,
            digest: "00000000000000ff".into(),
            volatile: true,
        });
        assert_eq!(m.output_digest(), base);
    }
}
