//! Shared context for the simulation engines.

use janus_moe::config::ModelConfig;
use janus_moe::workload::{AssignmentMatrix, Imbalance};
use janus_topology::Cluster;

/// Everything an engine needs to compile one training iteration: the
/// cluster, the model, and a token→expert assignment per MoE block.
pub struct SimSetup {
    /// Cluster topology.
    pub cluster: Cluster,
    /// Model + training-task description.
    pub model: ModelConfig,
    /// `assignments[b]` is `Some` exactly for MoE blocks.
    pub assignments: Vec<Option<AssignmentMatrix>>,
}

impl SimSetup {
    /// Build a setup, sampling one assignment matrix per MoE block with
    /// the given imbalance and seed (block index perturbs the seed so
    /// different blocks see different draws).
    pub fn new(cluster: Cluster, model: ModelConfig, imbalance: Imbalance, seed: u64) -> Self {
        model
            .validate_for(cluster.num_workers())
            .unwrap_or_else(|e| panic!("model incompatible with cluster: {e}"));
        let workers = cluster.num_workers();
        let tokens = model.tokens_per_worker();
        let assignments = model
            .blocks
            .iter()
            .enumerate()
            .map(|(b, kind)| {
                if kind.is_moe() {
                    Some(AssignmentMatrix::generate(
                        workers,
                        kind.experts(),
                        tokens,
                        imbalance,
                        seed.wrapping_add(b as u64).wrapping_mul(0x9E37_79B9),
                    ))
                } else {
                    None
                }
            })
            .collect();
        SimSetup {
            cluster,
            model,
            assignments,
        }
    }

    /// Seconds to execute `flops` on one GPU.
    pub fn secs(&self, flops: f64) -> f64 {
        flops / self.cluster.spec().gpu_flops
    }

    /// The assignment of an MoE block (panics on dense blocks).
    pub fn assignment(&self, block: usize) -> &AssignmentMatrix {
        self.assignments[block]
            .as_ref()
            .unwrap_or_else(|| panic!("block {block} is not an MoE block"))
    }

    /// Worst expert-load imbalance across the model's MoE blocks.
    pub fn max_imbalance(&self) -> f64 {
        self.assignments
            .iter()
            .flatten()
            .map(|a| a.imbalance_factor())
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_moe::config::ModelPreset;
    use janus_topology::ClusterSpec;

    #[test]
    fn builds_assignments_only_for_moe_blocks() {
        let setup = SimSetup::new(
            ClusterSpec::a100(4, 8).build(),
            ModelPreset::MoeBert.config(32),
            Imbalance::Balanced,
            0,
        );
        for (b, a) in setup.assignments.iter().enumerate() {
            assert_eq!(a.is_some(), setup.model.blocks[b].is_moe(), "block {b}");
        }
        let a = setup.assignment(2);
        assert_eq!(a.workers(), 32);
        assert_eq!(a.experts(), 32);
        assert_eq!(a.worker_tokens(0), setup.model.tokens_per_worker());
    }

    #[test]
    fn different_blocks_draw_different_assignments() {
        let setup = SimSetup::new(
            ClusterSpec::a100(4, 8).build(),
            ModelPreset::MoeBert.config(32),
            Imbalance::Zipf(0.8),
            7,
        );
        assert_ne!(setup.assignments[2], setup.assignments[5]);
        assert!(setup.max_imbalance() > 1.0);
    }

    #[test]
    fn secs_uses_cluster_throughput() {
        let setup = SimSetup::new(
            ClusterSpec::a100(1, 1).build(),
            ModelPreset::MoeGpt.config(1),
            Imbalance::Balanced,
            0,
        );
        let f = setup.cluster.spec().gpu_flops;
        assert!((setup.secs(f) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn invalid_cluster_model_pair_panics() {
        SimSetup::new(
            ClusterSpec::a100(3, 3).build(), // 9 workers, 32 experts
            ModelPreset::MoeBert.config(32),
            Imbalance::Balanced,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "not an MoE block")]
    fn assignment_of_dense_block_panics() {
        let setup = SimSetup::new(
            ClusterSpec::a100(4, 8).build(),
            ModelPreset::MoeBert.config(32),
            Imbalance::Balanced,
            0,
        );
        setup.assignment(0);
    }
}
