//! Property tests: wire-format round trips and transport invariants,
//! including the reliability layer's exactly-once FIFO contract over an
//! adversarial lossy channel.

use bytes::Bytes;
use janus_comm::codec::{read_message, write_message, DEFAULT_MAX_FRAME};
use janus_comm::faulty::{FaultPlan, FaultyTransport};
use janus_comm::local::local_mesh;
use janus_comm::reliable::{ReliableTransport, RetransmitPolicy};
use janus_comm::{Message, Transport};
use proptest::prelude::*;
use std::io::Cursor;
use std::time::Duration;

fn arb_message() -> impl Strategy<Value = Message> {
    let payload = prop::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from);
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(block, expert, nonce)| {
            Message::PullRequest {
                block,
                expert,
                nonce,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u32>(), payload.clone()).prop_map(
            |(block, expert, nonce, data)| {
                Message::ExpertPayload {
                    block,
                    expert,
                    nonce,
                    data,
                }
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), payload.clone()).prop_map(
            |(block, expert, contributions, data)| Message::GradPush {
                block,
                expert,
                contributions,
                data
            }
        ),
        (any::<u32>(), any::<u32>(), payload.clone())
            .prop_map(|(block, seq, data)| Message::TokenDispatch { block, seq, data }),
        (any::<u32>(), any::<u32>(), payload.clone())
            .prop_map(|(block, seq, data)| Message::TokenReturn { block, seq, data }),
        any::<u64>().prop_map(|epoch| Message::Barrier { epoch }),
        (any::<u64>(), payload.clone()).prop_map(|(seq, data)| Message::Collective { seq, data }),
        Just(Message::Shutdown),
        (any::<u64>(), payload).prop_map(|(seq, data)| Message::Reliable { seq, data }),
        any::<u64>().prop_map(|ack| Message::Ack { ack }),
    ]
}

proptest! {
    /// encode → decode is the identity for every message.
    #[test]
    fn message_codec_round_trips(msg in arb_message()) {
        let decoded = Message::decode(msg.encode()).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Framed streams of arbitrary messages round-trip in order, and the
    /// reader stops cleanly at EOF.
    #[test]
    fn framed_streams_round_trip(msgs in prop::collection::vec(arb_message(), 0..20)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).expect("write");
        }
        let mut cursor = Cursor::new(buf);
        for m in &msgs {
            let got = read_message(&mut cursor, DEFAULT_MAX_FRAME)
                .expect("read")
                .expect("message present");
            prop_assert_eq!(&got, m);
        }
        prop_assert!(read_message(&mut cursor, DEFAULT_MAX_FRAME).expect("eof read").is_none());
    }

    /// Truncating an encoded stream anywhere never panics — it yields a
    /// clean EOF (at a frame boundary) or a decode/disconnect error.
    #[test]
    fn truncation_is_graceful(msg in arb_message(), cut_fraction in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).expect("write");
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        buf.truncate(cut);
        let mut cursor = Cursor::new(buf);
        match read_message(&mut cursor, DEFAULT_MAX_FRAME) {
            Ok(Some(got)) => prop_assert_eq!(got, msg), // cut at the very end
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at zero bytes"),
            Err(_) => {} // truncated mid-frame: error is the contract
        }
    }

    /// Payload length reporting is consistent with the carried bytes.
    #[test]
    fn payload_len_matches(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let n = data.len();
        let msg = Message::ExpertPayload { block: 0, expert: 0, nonce: 0, data: Bytes::from(data) };
        prop_assert_eq!(msg.payload_len(), n);
    }

    /// Over an adversarial lossy channel (drops, duplicates, delays,
    /// cross-peer reordering, all with generated rates), the reliability
    /// layer delivers every message exactly once, in per-pair FIFO
    /// order, in both directions.
    #[test]
    fn reliable_delivery_is_exactly_once_fifo(
        seed in any::<u64>(),
        n in 1usize..40,
        drop in 0.0f64..0.4,
        duplicate in 0.0f64..0.4,
        delay in 0.0f64..0.4,
        reorder in 0.0f64..0.5,
    ) {
        let plan = FaultPlan {
            seed,
            drop,
            duplicate,
            delay,
            max_delay_ops: 4,
            reorder,
            ..FaultPlan::default()
        };
        let policy = RetransmitPolicy {
            initial_backoff: Duration::from_micros(300),
            max_backoff: Duration::from_millis(4),
            max_attempts: 200,
            flush_quiet: Duration::from_millis(10),
            ..RetransmitPolicy::default()
        };
        let mut mesh = local_mesh(2);
        let b = ReliableTransport::with_policy(
            FaultyTransport::new(mesh.pop().unwrap(), plan.clone()),
            policy,
        );
        let a = ReliableTransport::with_policy(
            FaultyTransport::new(mesh.pop().unwrap(), plan),
            policy,
        );
        // Each side sends `n` distinct epochs; the peer must observe
        // exactly 0..n in order, nothing more.
        fn run_side<T: Transport>(me: T, n: u64) {
            for i in 0..n {
                me.send(1 - me.rank(), Message::Barrier { epoch: i }).unwrap();
            }
            for i in 0..n {
                let (from, msg) = me.recv().unwrap();
                assert_eq!(from, 1 - me.rank());
                assert_eq!(msg, Message::Barrier { epoch: i }, "FIFO/exactly-once violated");
            }
            me.flush().unwrap();
            assert!(me.try_recv().unwrap().is_none(), "extra delivery after flush");
        }
        std::thread::scope(|s| {
            s.spawn(move || run_side(a, n as u64));
            s.spawn(move || run_side(b, n as u64));
        });
    }
}
