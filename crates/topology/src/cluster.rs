//! Cluster construction and routing.

use crate::ids::{LinkId, LocalRank, MachineId, PcieSwitchId, WorkerId};
use crate::link::{Link, LinkDirection, LinkKind};
use crate::presets::Bandwidths;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of GPUs that share one PCIe switch on an A100 SXM machine
/// (paper §5.2: "one PCIe switch is connected to two workers").
pub const GPUS_PER_PCIE_SWITCH: usize = 2;

/// Declarative description of a cluster. Build one with
/// [`ClusterSpec::a100`] (paper bandwidths) or fill the fields directly,
/// then call [`ClusterSpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of machines (`n` in the paper's notation).
    pub machines: usize,
    /// GPUs per machine (`m` in the paper's notation).
    pub gpus_per_machine: usize,
    /// Link bandwidths.
    pub bandwidths: Bandwidths,
    /// Effective per-GPU compute throughput in FLOP/s used by the
    /// simulator to turn FLOP counts into durations.
    pub gpu_flops: f64,
    /// GPU memory capacity in bytes (A100 SXM 80 GB in the paper).
    pub gpu_memory_bytes: f64,
}

impl ClusterSpec {
    /// The paper's evaluation platform: `machines` × `gpus_per_machine`
    /// A100 SXM 80 GB GPUs, NVLink 600 GB/s, PCIe 64 GB/s, 200 Gbps NIC.
    pub fn a100(machines: usize, gpus_per_machine: usize) -> Self {
        ClusterSpec {
            machines,
            gpus_per_machine,
            bandwidths: Bandwidths::a100(),
            gpu_flops: crate::presets::A100_EFFECTIVE_FLOPS,
            gpu_memory_bytes: crate::presets::A100_MEMORY_BYTES,
        }
    }

    /// Materialize the link graph.
    pub fn build(self) -> Cluster {
        Cluster::new(self)
    }
}

/// A memory domain in the cluster: the HBM of one GPU or the CPU memory of
/// one machine (where the paper's Cache Manager lives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// A GPU's device memory.
    Gpu(WorkerId),
    /// A machine's CPU memory (host of the Inter-Node Scheduler cache).
    CpuMem(MachineId),
}

/// An ordered list of directed links a flow traverses.
pub type Route = Vec<LinkId>;

/// A materialized cluster: the directed link set plus routing tables.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    links: Vec<Link>,
    by_kind: HashMap<LinkKind, LinkId>,
}

impl Cluster {
    fn new(spec: ClusterSpec) -> Self {
        assert!(spec.machines > 0, "cluster needs at least one machine");
        assert!(spec.gpus_per_machine > 0, "machines need at least one GPU");
        let mut links = Vec::new();
        let mut by_kind = HashMap::new();
        let mut push = |kind: LinkKind, bandwidth: f64| {
            let id = LinkId(links.len());
            by_kind.insert(kind, id);
            links.push(Link {
                id,
                kind,
                bandwidth,
            });
        };

        let num_workers = spec.machines * spec.gpus_per_machine;
        for w in 0..num_workers {
            let worker = WorkerId(w);
            for dir in [LinkDirection::Egress, LinkDirection::Ingress] {
                push(
                    LinkKind::Nvlink { worker, dir },
                    spec.bandwidths.nvlink_per_direction,
                );
                push(
                    LinkKind::PcieGpu { worker, dir },
                    spec.bandwidths.pcie_per_direction,
                );
            }
        }
        let switches_per_machine = spec.gpus_per_machine.div_ceil(GPUS_PER_PCIE_SWITCH);
        for s in 0..spec.machines * switches_per_machine {
            let switch = PcieSwitchId(s);
            for dir in [LinkDirection::Egress, LinkDirection::Ingress] {
                push(
                    LinkKind::PcieSwitch { switch, dir },
                    spec.bandwidths.pcie_per_direction,
                );
            }
        }
        for mch in 0..spec.machines {
            let machine = MachineId(mch);
            for dir in [LinkDirection::Egress, LinkDirection::Ingress] {
                push(
                    LinkKind::Nic { machine, dir },
                    spec.bandwidths.nic_per_direction,
                );
            }
        }

        Cluster {
            spec,
            links,
            by_kind,
        }
    }

    /// The spec this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of machines (`n`).
    pub fn num_machines(&self) -> usize {
        self.spec.machines
    }

    /// GPUs per machine (`m`).
    pub fn gpus_per_machine(&self) -> usize {
        self.spec.gpus_per_machine
    }

    /// Total number of workers (GPUs).
    pub fn num_workers(&self) -> usize {
        self.spec.machines * self.spec.gpus_per_machine
    }

    /// All worker ids in rank order.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.num_workers()).map(WorkerId)
    }

    /// All machine ids.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.num_machines()).map(MachineId)
    }

    /// Workers hosted on `machine`, in local-rank order.
    pub fn workers_on(&self, machine: MachineId) -> impl Iterator<Item = WorkerId> + '_ {
        let m = self.spec.gpus_per_machine;
        (0..m).map(move |r| WorkerId(machine.0 * m + r))
    }

    /// Machine hosting `worker`.
    pub fn machine_of(&self, worker: WorkerId) -> MachineId {
        MachineId(worker.0 / self.spec.gpus_per_machine)
    }

    /// Rank of `worker` inside its machine.
    pub fn local_rank(&self, worker: WorkerId) -> LocalRank {
        LocalRank(worker.0 % self.spec.gpus_per_machine)
    }

    /// Worker with local rank `r` on `machine`.
    pub fn worker_at(&self, machine: MachineId, r: LocalRank) -> WorkerId {
        debug_assert!(r.0 < self.spec.gpus_per_machine);
        WorkerId(machine.0 * self.spec.gpus_per_machine + r.0)
    }

    /// PCIe switch that `worker` hangs off.
    pub fn switch_of(&self, worker: WorkerId) -> PcieSwitchId {
        let switches_per_machine = self.switches_per_machine();
        let m = self.machine_of(worker).0;
        let local_switch = self.local_rank(worker).0 / GPUS_PER_PCIE_SWITCH;
        PcieSwitchId(m * switches_per_machine + local_switch)
    }

    /// PCIe switches per machine.
    pub fn switches_per_machine(&self) -> usize {
        self.spec.gpus_per_machine.div_ceil(GPUS_PER_PCIE_SWITCH)
    }

    /// The other GPU behind the same PCIe switch, if any. This is the
    /// "peer worker" of the paper's PCIe-switch-aware scheduling (§5.2,
    /// Figure 8).
    pub fn pcie_peer(&self, worker: WorkerId) -> Option<WorkerId> {
        let r = self.local_rank(worker).0;
        let peer_r = r ^ 1;
        if peer_r < self.spec.gpus_per_machine
            && peer_r / GPUS_PER_PCIE_SWITCH == r / GPUS_PER_PCIE_SWITCH
        {
            Some(self.worker_at(self.machine_of(worker), LocalRank(peer_r)))
        } else {
            None
        }
    }

    /// The PCIe switch the machine's NIC is attached to (switch 0 of the
    /// machine). Inter-node traffic terminating in CPU memory crosses this
    /// switch's uplink, which is the PCIe limit observed in paper §7.5.
    pub fn nic_switch(&self, machine: MachineId) -> PcieSwitchId {
        PcieSwitchId(machine.0 * self.switches_per_machine())
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Per-link capacities in bytes/s, indexed by [`LinkId`].
    pub fn capacities(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.bandwidth).collect()
    }

    /// Lookup a link id by its kind. Panics if the kind does not exist in
    /// this cluster (programming error, not a runtime condition).
    pub fn link(&self, kind: LinkKind) -> LinkId {
        *self
            .by_kind
            .get(&kind)
            .unwrap_or_else(|| panic!("no such link in cluster: {}", kind.label()))
    }

    /// Link metadata by id.
    pub fn link_info(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Route between two memory domains.
    ///
    /// Routes follow the hardware paths of the paper's Figure 6:
    /// * GPU→GPU on one machine rides NVLink ports only (NVSwitch fabric
    ///   is non-blocking).
    /// * GPU↔CPU on one machine crosses the GPU's PCIe lanes and its
    ///   switch uplink/downlink.
    /// * Anything inter-machine crosses both NICs; endpoints in CPU memory
    ///   additionally cross the NIC-hosting switch, GPU endpoints cross
    ///   their PCIe lanes (GPUDirect RDMA).
    ///
    /// A route from a location to itself is empty (no link time).
    pub fn route(&self, from: Location, to: Location) -> Route {
        use LinkDirection::{Egress, Ingress};
        if from == to {
            return Vec::new();
        }
        let mut path = Vec::new();
        // Source side.
        let (src_machine, src_gpu) = match from {
            Location::Gpu(w) => (self.machine_of(w), Some(w)),
            Location::CpuMem(m) => (m, None),
        };
        let (dst_machine, dst_gpu) = match to {
            Location::Gpu(w) => (self.machine_of(w), Some(w)),
            Location::CpuMem(m) => (m, None),
        };
        let same_machine = src_machine == dst_machine;

        if same_machine {
            match (src_gpu, dst_gpu) {
                (Some(s), Some(d)) => {
                    path.push(self.link(LinkKind::Nvlink {
                        worker: s,
                        dir: Egress,
                    }));
                    path.push(self.link(LinkKind::Nvlink {
                        worker: d,
                        dir: Ingress,
                    }));
                }
                (Some(s), None) => {
                    path.push(self.link(LinkKind::PcieGpu {
                        worker: s,
                        dir: Egress,
                    }));
                    path.push(self.link(LinkKind::PcieSwitch {
                        switch: self.switch_of(s),
                        dir: Egress,
                    }));
                }
                (None, Some(d)) => {
                    path.push(self.link(LinkKind::PcieSwitch {
                        switch: self.switch_of(d),
                        dir: Ingress,
                    }));
                    path.push(self.link(LinkKind::PcieGpu {
                        worker: d,
                        dir: Ingress,
                    }));
                }
                (None, None) => unreachable!("from == to handled above"),
            }
            return path;
        }

        // Inter-machine: source side onto the NIC.
        match src_gpu {
            // GPUDirect RDMA: GPU → (PCIe lanes) → NIC.
            Some(s) => path.push(self.link(LinkKind::PcieGpu {
                worker: s,
                dir: Egress,
            })),
            // CPU memory → NIC crosses the NIC-hosting switch downlink.
            None => path.push(self.link(LinkKind::PcieSwitch {
                switch: self.nic_switch(src_machine),
                dir: Ingress,
            })),
        }
        path.push(self.link(LinkKind::Nic {
            machine: src_machine,
            dir: Egress,
        }));
        path.push(self.link(LinkKind::Nic {
            machine: dst_machine,
            dir: Ingress,
        }));
        match dst_gpu {
            Some(d) => path.push(self.link(LinkKind::PcieGpu {
                worker: d,
                dir: Ingress,
            })),
            None => path.push(self.link(LinkKind::PcieSwitch {
                switch: self.nic_switch(dst_machine),
                dir: Egress,
            })),
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        ClusterSpec::a100(4, 8).build()
    }

    #[test]
    fn shape_counts() {
        let c = cluster();
        assert_eq!(c.num_workers(), 32);
        assert_eq!(c.num_machines(), 4);
        assert_eq!(c.gpus_per_machine(), 8);
        assert_eq!(c.switches_per_machine(), 4);
        // 32 GPUs * 4 links + 16 switches * 2 + 4 NICs * 2
        assert_eq!(c.num_links(), 32 * 4 + 16 * 2 + 4 * 2);
    }

    #[test]
    fn rank_layout_is_contiguous() {
        let c = cluster();
        assert_eq!(c.machine_of(WorkerId(0)), MachineId(0));
        assert_eq!(c.machine_of(WorkerId(7)), MachineId(0));
        assert_eq!(c.machine_of(WorkerId(8)), MachineId(1));
        assert_eq!(c.local_rank(WorkerId(13)), LocalRank(5));
        assert_eq!(c.worker_at(MachineId(1), LocalRank(5)), WorkerId(13));
        let on_m2: Vec<_> = c.workers_on(MachineId(2)).map(|w| w.0).collect();
        assert_eq!(on_m2, (16..24).collect::<Vec<_>>());
    }

    #[test]
    fn pcie_peers_pair_adjacent_gpus() {
        let c = cluster();
        assert_eq!(c.pcie_peer(WorkerId(0)), Some(WorkerId(1)));
        assert_eq!(c.pcie_peer(WorkerId(1)), Some(WorkerId(0)));
        assert_eq!(c.pcie_peer(WorkerId(6)), Some(WorkerId(7)));
        // Peers never cross machine boundaries.
        assert_eq!(c.pcie_peer(WorkerId(8)), Some(WorkerId(9)));
        assert_eq!(c.switch_of(WorkerId(0)), c.switch_of(WorkerId(1)));
        assert_ne!(c.switch_of(WorkerId(1)), c.switch_of(WorkerId(2)));
    }

    #[test]
    fn odd_gpu_count_leaves_last_gpu_unpaired() {
        let c = ClusterSpec::a100(1, 3).build();
        assert_eq!(c.pcie_peer(WorkerId(0)), Some(WorkerId(1)));
        assert_eq!(c.pcie_peer(WorkerId(2)), None);
        assert_eq!(c.switches_per_machine(), 2);
    }

    #[test]
    fn intra_node_gpu_route_uses_only_nvlink() {
        let c = cluster();
        let route = c.route(Location::Gpu(WorkerId(0)), Location::Gpu(WorkerId(3)));
        assert_eq!(route.len(), 2);
        for id in route {
            assert!(matches!(c.link_info(id).kind, LinkKind::Nvlink { .. }));
        }
    }

    #[test]
    fn self_route_is_empty() {
        let c = cluster();
        assert!(c
            .route(Location::Gpu(WorkerId(5)), Location::Gpu(WorkerId(5)))
            .is_empty());
        assert!(c
            .route(
                Location::CpuMem(MachineId(1)),
                Location::CpuMem(MachineId(1))
            )
            .is_empty());
    }

    #[test]
    fn gpu_to_local_cpu_crosses_pcie() {
        let c = cluster();
        let route = c.route(Location::Gpu(WorkerId(2)), Location::CpuMem(MachineId(0)));
        assert_eq!(route.len(), 2);
        assert!(matches!(
            c.link_info(route[0]).kind,
            LinkKind::PcieGpu {
                worker: WorkerId(2),
                dir: LinkDirection::Egress
            }
        ));
        assert!(matches!(
            c.link_info(route[1]).kind,
            LinkKind::PcieSwitch { .. }
        ));
    }

    #[test]
    fn cpu_to_gpu_shares_switch_downlink_between_peers() {
        let c = cluster();
        let r0 = c.route(Location::CpuMem(MachineId(0)), Location::Gpu(WorkerId(0)));
        let r1 = c.route(Location::CpuMem(MachineId(0)), Location::Gpu(WorkerId(1)));
        // First hop (switch downlink) is shared — the Figure 8 contention.
        assert_eq!(r0[0], r1[0]);
        let r2 = c.route(Location::CpuMem(MachineId(0)), Location::Gpu(WorkerId(2)));
        assert_ne!(r0[0], r2[0]);
    }

    #[test]
    fn inter_machine_fetch_crosses_both_nics() {
        let c = cluster();
        let route = c.route(Location::Gpu(WorkerId(9)), Location::CpuMem(MachineId(0)));
        let kinds: Vec<_> = route.iter().map(|&id| c.link_info(id).kind).collect();
        assert!(matches!(
            kinds[0],
            LinkKind::PcieGpu {
                worker: WorkerId(9),
                ..
            }
        ));
        assert!(matches!(
            kinds[1],
            LinkKind::Nic {
                machine: MachineId(1),
                dir: LinkDirection::Egress
            }
        ));
        assert!(matches!(
            kinds[2],
            LinkKind::Nic {
                machine: MachineId(0),
                dir: LinkDirection::Ingress
            }
        ));
        assert!(matches!(kinds[3], LinkKind::PcieSwitch { .. }));
    }

    #[test]
    fn cpu_to_remote_gpu_route() {
        let c = cluster();
        let route = c.route(Location::CpuMem(MachineId(0)), Location::Gpu(WorkerId(20)));
        let kinds: Vec<_> = route.iter().map(|&id| c.link_info(id).kind).collect();
        assert_eq!(route.len(), 4);
        assert!(matches!(kinds[0], LinkKind::PcieSwitch { .. }));
        assert!(matches!(
            kinds[1],
            LinkKind::Nic {
                machine: MachineId(0),
                ..
            }
        ));
        assert!(matches!(
            kinds[2],
            LinkKind::Nic {
                machine: MachineId(2),
                ..
            }
        ));
        assert!(matches!(
            kinds[3],
            LinkKind::PcieGpu {
                worker: WorkerId(20),
                ..
            }
        ));
    }

    #[test]
    fn cross_node_bytes_only_on_nic_links() {
        let c = cluster();
        let route = c.route(Location::Gpu(WorkerId(0)), Location::Gpu(WorkerId(31)));
        let cross: Vec<_> = route
            .iter()
            .filter(|&&id| c.link_info(id).kind.is_cross_node())
            .collect();
        assert_eq!(cross.len(), 2);
    }

    #[test]
    fn capacities_match_links() {
        let c = cluster();
        let caps = c.capacities();
        assert_eq!(caps.len(), c.num_links());
        for l in c.links() {
            assert_eq!(caps[l.id.0], l.bandwidth);
        }
    }
}
