//! FLOP model used to convert model computation into simulated time.
//!
//! Counts follow the standard transformer accounting (multiply-add = 2
//! FLOPs). Only *relative* magnitudes matter for reproducing the paper's
//! speedup shapes; absolute times additionally depend on the effective
//! per-GPU throughput configured in the cluster spec.

use crate::config::{BlockKind, ModelConfig};

/// Extra work in the backward pass relative to forward (recompute dX and
/// dW for every matmul: the usual 2× rule).
pub const BACKWARD_FACTOR: f64 = 2.0;

/// Attention FLOPs per token: QKV + output projections (`8H²`) plus score
/// and value matmuls (`4·S·H`).
pub fn attention_flops_per_token(h: usize, s: usize) -> f64 {
    8.0 * (h * h) as f64 + 4.0 * (s * h) as f64
}

/// Dense FFN FLOPs per token (two `H×4H` matmuls): `16H²`.
pub fn ffn_flops_per_token(h: usize) -> f64 {
    16.0 * (h * h) as f64
}

/// Expert FLOPs per routed token slot — same `16H²` as a dense FFN.
pub fn expert_flops_per_token(h: usize) -> f64 {
    16.0 * (h * h) as f64
}

/// Gate FLOPs per token: one `H × experts` projection.
pub fn gate_flops_per_token(h: usize, experts: usize) -> f64 {
    2.0 * (h * experts) as f64
}

/// Forward FLOPs per worker for the non-expert part of block `block`:
/// attention for every block, plus the dense FFN (Transformer blocks) or
/// the gate (MoE blocks).
pub fn block_shared_fwd_flops(cfg: &ModelConfig, block: usize) -> f64 {
    let tokens = (cfg.batch * cfg.seq_len) as f64;
    let h = cfg.hidden_dim;
    let attn = attention_flops_per_token(h, cfg.seq_len);
    match cfg.blocks[block] {
        BlockKind::Transformer => tokens * (attn + ffn_flops_per_token(h)),
        BlockKind::Moe { experts } => tokens * (attn + gate_flops_per_token(h, experts)),
    }
}

/// Forward FLOPs for an expert processing `tokens` routed token slots.
pub fn expert_fwd_flops(cfg: &ModelConfig, tokens: usize) -> f64 {
    tokens as f64 * expert_flops_per_token(cfg.hidden_dim)
}

/// Total forward FLOPs per worker for one iteration, assuming each worker
/// computes its own `B·S·k` expert token slots (the data-centric split).
pub fn iteration_fwd_flops(cfg: &ModelConfig) -> f64 {
    let mut total = 0.0;
    for b in 0..cfg.blocks.len() {
        total += block_shared_fwd_flops(cfg, b);
        if cfg.blocks[b].is_moe() {
            total += expert_fwd_flops(cfg, cfg.tokens_per_worker());
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    #[test]
    fn per_token_counts() {
        assert_eq!(ffn_flops_per_token(10), 1600.0);
        assert_eq!(expert_flops_per_token(10), 1600.0);
        assert_eq!(gate_flops_per_token(10, 4), 80.0);
        assert_eq!(attention_flops_per_token(10, 8), 800.0 + 320.0);
    }

    #[test]
    fn transformer_block_includes_ffn_moe_block_does_not() {
        let cfg = ModelPreset::MoeBert.config(32);
        let dense = block_shared_fwd_flops(&cfg, 0); // Transformer
        let moe = block_shared_fwd_flops(&cfg, 2); // MoE
        assert!(
            dense > moe,
            "dense block must cost more shared FLOPs than gate"
        );
        let tokens = (cfg.batch * cfg.seq_len) as f64;
        let diff = dense - moe;
        let expected = tokens
            * (ffn_flops_per_token(cfg.hidden_dim) - gate_flops_per_token(cfg.hidden_dim, 32));
        assert!((diff - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn iteration_flops_scale_with_batch() {
        let cfg = ModelPreset::MoeGpt.config(32);
        let f1 = iteration_fwd_flops(&cfg);
        let mut doubled = cfg.clone();
        doubled.batch *= 2;
        let f2 = iteration_fwd_flops(&doubled);
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpt_iteration_flops_order_of_magnitude() {
        // MoE-GPT fwd: 11 dense blocks + 1 MoE block over 16 k tokens of
        // width 768 ≈ a few TFLOP per worker.
        let cfg = ModelPreset::MoeGpt.config(32);
        let f = iteration_fwd_flops(&cfg);
        assert!(f > 1e12 && f < 2e13, "f = {f:e}");
    }
}
