//! One module per paper artifact. Every `run()` regenerates the numbers
//! the paper reports; every `print()` lays them out next to the paper's
//! published values.

use crate::paper_cluster;
use crate::table;
use janus_core::sim::engine::{simulate_iteration, EngineOpts, ParadigmPolicy};
use janus_core::sim::IterationReport;
use janus_moe::config::{pr_moe_transformer_xl, ModelConfig, ModelPreset};
use serde::Serialize;

fn run(machines: usize, model: ModelConfig, opts: &EngineOpts) -> IterationReport {
    simulate_iteration(paper_cluster(machines), model, opts)
        .expect("engine-built graphs must simulate cleanly")
}

/// Table 1: model configurations and per-machine cross-node traffic under
/// both paradigms, analytic and simulated.
pub mod table1 {
    use super::*;
    use janus_moe::traffic;

    /// One row of Table 1 plus the simulator's cross-check.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Total experts per MoE block (= GPUs).
        pub experts: usize,
        /// Model size in billions of parameters.
        pub model_size_b: f64,
        /// Analytic expert-centric traffic (GiB/machine/iteration).
        pub ec_gib: f64,
        /// Analytic data-centric traffic.
        pub dc_gib: f64,
        /// Simulated expert-centric traffic (balanced workload).
        pub sim_ec_gib: f64,
        /// Simulated data-centric traffic.
        pub sim_dc_gib: f64,
        /// EC/DC reduction factor.
        pub reduction: f64,
        /// Paper's published (EC, DC) GiB values.
        pub paper: (f64, f64),
    }

    /// Paper Table 1 reference values: (model, experts, EC GB, DC GB).
    const PAPER: [(&str, usize, f64, f64); 6] = [
        ("MoE-BERT", 16, 6.0, 0.56),
        ("MoE-BERT", 32, 9.0, 1.69),
        ("MoE-GPT", 16, 1.5, 0.14),
        ("MoE-GPT", 32, 2.25, 0.42),
        ("MoE-Transformer-xl", 16, 6.0, 0.19),
        ("MoE-Transformer-xl", 32, 9.0, 0.56),
    ];

    /// Regenerate Table 1.
    pub fn run() -> Vec<Row> {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let mut rows = Vec::new();
        for preset in ModelPreset::all() {
            for (experts, machines) in [(16usize, 2usize), (32, 4)] {
                let model = preset.config(experts);
                let analytic = traffic::table1_row(&model, machines, 8);
                let mut opts = EngineOpts::janus_expert_centric();
                opts.imbalance = janus_moe::workload::Imbalance::Balanced;
                let ec = super::run(machines, model.clone(), &opts);
                let mut opts = EngineOpts::data_centric(true, true);
                opts.imbalance = janus_moe::workload::Imbalance::Balanced;
                let dc = super::run(machines, model.clone(), &opts);
                let paper = PAPER
                    .iter()
                    .find(|(name, e, _, _)| preset.name() == *name && *e == experts)
                    .map(|(_, _, a, b)| (*a, *b))
                    .expect("paper reference");
                rows.push(Row {
                    model: model.name.clone(),
                    experts,
                    model_size_b: analytic.model_size_b,
                    ec_gib: analytic.ec_traffic_gib,
                    dc_gib: analytic.dc_traffic_gib,
                    sim_ec_gib: ec.cross_node_bytes_per_machine / GIB,
                    sim_dc_gib: dc.cross_node_bytes_per_machine / GIB,
                    reduction: analytic.reduction,
                    paper,
                });
            }
        }
        rows
    }

    /// Print the table.
    pub fn print(rows: &[Row]) {
        println!("Table 1 — cross-node traffic per machine per iteration (GiB)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.experts.to_string(),
                    format!("{:.2}", r.model_size_b),
                    format!("{:.2}", r.ec_gib),
                    format!("{:.2}", r.sim_ec_gib),
                    format!("{:.2}", r.paper.0),
                    format!("{:.2}", r.dc_gib),
                    format!("{:.2}", r.sim_dc_gib),
                    format!("{:.2}", r.paper.1),
                    format!("{:.1}×", r.reduction),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "model",
                    "experts",
                    "size (B)",
                    "EC calc",
                    "EC sim",
                    "EC paper",
                    "DC calc",
                    "DC sim",
                    "DC paper",
                    "reduction"
                ],
                &body
            )
        );
    }
}

/// §3.1 goodput observation: intra-node vs inter-node All-to-All.
pub mod goodput {
    use super::*;
    use janus_core::sim::collectives::{a2a_goodput, GoodputReport};
    use janus_topology::ClusterSpec;

    /// The two stress environments.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Environment label.
        pub env: String,
        /// Simulated aggregate goodput (Gbps).
        pub goodput_gbps: f64,
        /// Paper's measured value (Gbps).
        pub paper_gbps: f64,
    }

    /// Run both stress tests.
    pub fn run() -> Vec<Row> {
        let intra: GoodputReport =
            a2a_goodput(&ClusterSpec::a100(1, 8).build(), 64e6).expect("intra-node run");
        let inter = a2a_goodput(&ClusterSpec::a100(4, 8).build(), 64e6).expect("inter-node run");
        vec![
            Row {
                env: "1 machine × 8 GPUs (NVLink)".into(),
                goodput_gbps: intra.goodput_gbps,
                paper_gbps: 1846.58,
            },
            Row {
                env: "4 machines × 8 GPUs (RDMA)".into(),
                goodput_gbps: inter.cross_node_gbps,
                paper_gbps: 101.9,
            },
        ]
    }

    /// Print the comparison.
    pub fn print(rows: &[Row]) {
        println!("§3.1 — All-to-All goodput stress test\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.env.clone(),
                    format!("{:.1}", r.goodput_gbps),
                    format!("{:.1}", r.paper_gbps),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["environment", "sim Gbps", "paper Gbps"], &body)
        );
        let gap = rows[0].goodput_gbps / rows[1].goodput_gbps;
        println!(
            "intra/inter gap: {gap:.1}× (paper: {:.1}×)\n",
            1846.58 / 101.9
        );
    }
}

/// Figure 3: iteration latency and the share spent in All-to-All under
/// the expert-centric paradigm.
pub mod fig3 {
    use super::*;

    /// One bar of Figure 3.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Experts (= GPUs).
        pub experts: usize,
        /// Iteration latency (s).
        pub iter_time: f64,
        /// All-to-All latency (s).
        pub a2a_time: f64,
        /// Share of the iteration.
        pub share: f64,
    }

    /// Run the six expert-centric profiles.
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        for preset in ModelPreset::all() {
            for (experts, machines) in [(16usize, 2usize), (32, 4)] {
                let model = preset.config(experts);
                let report = super::run(machines, model, &EngineOpts::janus_expert_centric());
                rows.push(Row {
                    model: preset.name().into(),
                    experts,
                    iter_time: report.iter_time,
                    a2a_time: report.comm_time,
                    share: report.comm_share(),
                });
            }
        }
        rows
    }

    /// Print the profile.
    pub fn print(rows: &[Row]) {
        println!("Figure 3 — expert-centric iteration latency vs All-to-All latency");
        println!("(paper reports A2A shares of 38.5%–68.4% across these bars)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.experts.to_string(),
                    table::ms(r.iter_time),
                    table::ms(r.a2a_time),
                    format!("{:.1}%", r.share * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &["model", "experts", "iter (ms)", "a2a (ms)", "a2a share"],
                &body
            )
        );
    }
}

/// Figure 12: ablation of the data-centric optimizations.
pub mod fig12 {
    use super::*;

    /// One model's ablation staircase (speedups vs Janus expert-centric).
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Baseline (expert-centric) iteration time (s).
        pub ec_time: f64,
        /// Plain data-centric speedup.
        pub dc: f64,
        /// + topology-aware priority.
        pub dc_topo: f64,
        /// + prefetch (full stack).
        pub dc_topo_prefetch: f64,
        /// Paper's (DC, full) speedups.
        pub paper: (f64, f64),
    }

    /// Run the ablation on the 32-GPU configurations.
    pub fn run() -> Vec<Row> {
        let paper = [
            ("MoE-BERT", (1.26, 1.31)),
            ("MoE-GPT", (1.58, 1.63)),
            ("MoE-Transformer-xl", (1.79, 1.81)),
        ];
        ModelPreset::all()
            .into_iter()
            .map(|preset| {
                let model = preset.config(32);
                let ec = super::run(4, model.clone(), &EngineOpts::janus_expert_centric());
                let t = |topo: bool, pf: bool| {
                    super::run(4, model.clone(), &EngineOpts::data_centric(topo, pf)).iter_time
                };
                let p = paper
                    .iter()
                    .find(|(n, _)| *n == preset.name())
                    .map(|(_, p)| *p)
                    .expect("paper reference");
                Row {
                    model: preset.name().into(),
                    ec_time: ec.iter_time,
                    dc: ec.iter_time / t(false, false),
                    dc_topo: ec.iter_time / t(true, false),
                    dc_topo_prefetch: ec.iter_time / t(true, true),
                    paper: p,
                }
            })
            .collect()
    }

    /// Print the staircase.
    pub fn print(rows: &[Row]) {
        println!("Figure 12 — ablation: speedup over Janus expert-centric (32 GPUs)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    table::ms(r.ec_time),
                    table::speedup(r.dc),
                    table::speedup(r.dc_topo),
                    table::speedup(r.dc_topo_prefetch),
                    format!(
                        "{} / {}",
                        table::speedup(r.paper.0),
                        table::speedup(r.paper.1)
                    ),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "model",
                    "EC iter (ms)",
                    "DC",
                    "+topo",
                    "+prefetch",
                    "paper DC/full"
                ],
                &body
            )
        );
    }
}

/// Figure 13: computation/communication overlap timeline on MoE-GPT.
pub mod fig13 {
    use super::*;

    /// The timeline summary.
    #[derive(Debug, Clone, Serialize)]
    pub struct Summary {
        /// Forward-phase duration with prefetch (s).
        pub fwd_time: f64,
        /// Forward-phase duration without prefetch (s).
        pub fwd_time_no_prefetch: f64,
        /// Block completion timestamps at worker 0 (s).
        pub block_finish: Vec<f64>,
        /// Expert arrival timestamps at worker 0 for the MoE block (s).
        pub expert_arrivals: Vec<(String, f64)>,
        /// Experts already pulled when the 11th block's computation ends.
        pub experts_before_gate: usize,
        /// Fetch time hidden behind the first 11 blocks' compute (s) —
        /// the quantity the paper reports as "computation-communication
        /// overlap" (74.9 ms).
        pub overlap: f64,
        /// The paper's headline ratio: (fwd + overlap) / fwd — how much
        /// slower the forward phase would run if none of the fetching
        /// were hidden.
        pub fwd_speedup: f64,
    }

    /// Run MoE-GPT with prefetch on / topology-aware off (the paper's
    /// Figure 13 configuration).
    pub fn run() -> Summary {
        let model = ModelPreset::MoeGpt.config(32);
        let with = super::run(4, model.clone(), &EngineOpts::data_centric(false, true));
        let without = super::run(4, model, &EngineOpts::data_centric(false, false));
        let gate = with
            .block_finish_w0
            .get(10)
            .copied()
            .expect("12-block model");
        let mut arrivals: Vec<(String, f64)> = with.expert_arrival_w0.clone();
        arrivals.sort_by(|a, b| a.1.total_cmp(&b.1));
        let experts_before_gate = arrivals.iter().filter(|(_, t)| *t <= gate).count();
        // Overlap: fetch busy time at worker 0 that ran while the first
        // 11 blocks were still computing (plus the machine-level NIC
        // fetches hidden in the same window).
        let overlap: f64 = with
            .sim
            .records
            .iter()
            .filter(|r| {
                r.kind == "transfer"
                    && (r.label.starts_with("w0/")
                        && (r.label.contains("/pull-int")
                            || r.label.contains("/copy-s2")
                            || r.label.contains("/pull-peer"))
                        || r.label.starts_with("M0/") && r.label.contains("/fetch-ext"))
            })
            .map(|r| (r.finish.min(gate) - r.start.min(gate)).max(0.0))
            .sum();
        Summary {
            fwd_time: with.fwd_time,
            fwd_time_no_prefetch: without.fwd_time,
            block_finish: with.block_finish_w0.clone(),
            expert_arrivals: arrivals,
            experts_before_gate,
            overlap,
            fwd_speedup: (with.fwd_time + overlap) / with.fwd_time,
        }
    }

    /// Print the timeline.
    pub fn print(s: &Summary) {
        println!("Figure 13 — MoE-GPT forward timeline (prefetch on, topo-aware off)\n");
        println!("block completion at worker 0 (ms):");
        let body: Vec<Vec<String>> = s
            .block_finish
            .iter()
            .enumerate()
            .map(|(b, t)| vec![format!("block {b}"), table::ms(*t)])
            .collect();
        println!("{}", table::render(&["block", "finish (ms)"], &body));
        println!("expert arrivals at worker 0 (first 8 shown, ms):");
        let body: Vec<Vec<String>> = s
            .expert_arrivals
            .iter()
            .take(8)
            .map(|(l, t)| vec![l.clone(), table::ms(*t)])
            .collect();
        println!("{}", table::render(&["transfer", "finish (ms)"], &body));
        println!(
            "experts pulled before the 11th block finished: {} of {}",
            s.experts_before_gate,
            s.expert_arrivals.len()
        );
        println!(
            "fetch/compute overlap: {} ms (paper: ~74.9 ms)",
            table::ms(s.overlap)
        );
        println!(
            "forward phase: {} ms ({} ms without prefetch); hiding ratio {} (paper: 210.4 ms, 1.36×)\n",
            table::ms(s.fwd_time),
            table::ms(s.fwd_time_no_prefetch),
            table::speedup(s.fwd_speedup)
        );
    }
}

/// Figure 14: end-to-end Janus vs Tutel.
pub mod fig14 {
    use super::*;

    /// One model's end-to-end comparison.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Tutel iteration time (s).
        pub tutel_time: f64,
        /// Janus (unified) iteration time (s).
        pub janus_time: f64,
        /// Speedup.
        pub speedup: f64,
        /// Paper's speedup.
        pub paper: f64,
    }

    /// Run the three 32-GPU end-to-end comparisons.
    pub fn run() -> Vec<Row> {
        let paper = [
            ("MoE-BERT", 1.28),
            ("MoE-GPT", 1.48),
            ("MoE-Transformer-xl", 1.52),
        ];
        ModelPreset::all()
            .into_iter()
            .map(|preset| {
                let model = preset.config(32);
                let tutel = super::run(4, model.clone(), &EngineOpts::tutel());
                let janus = super::run(4, model, &EngineOpts::default());
                let p = paper.iter().find(|(n, _)| *n == preset.name()).unwrap().1;
                Row {
                    model: preset.name().into(),
                    tutel_time: tutel.iter_time,
                    janus_time: janus.iter_time,
                    speedup: tutel.iter_time / janus.iter_time,
                    paper: p,
                }
            })
            .collect()
    }

    /// Print the comparison.
    pub fn print(rows: &[Row]) {
        println!("Figure 14 — end-to-end iteration time, Janus vs Tutel (32 GPUs)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    table::ms(r.tutel_time),
                    table::ms(r.janus_time),
                    table::speedup(r.speedup),
                    table::speedup(r.paper),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &["model", "Tutel (ms)", "Janus (ms)", "speedup", "paper"],
                &body
            )
        );
    }
}

/// Figures 15/16: batch-size and sequence-length sensitivity.
pub mod sensitivity {
    use super::*;

    /// One sweep point.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Batch size.
        pub batch: usize,
        /// Sequence length.
        pub seq: usize,
        /// Gate top-k.
        pub k: usize,
        /// Tutel iteration time (s); `None` means out of memory.
        pub tutel_time: Option<f64>,
        /// Janus iteration time (s).
        pub janus_time: f64,
        /// Speedup (when Tutel fits).
        pub speedup: Option<f64>,
    }

    fn sweep_point(model: ModelConfig) -> Row {
        let (batch, seq, k) = (model.batch, model.seq_len, model.top_k);
        let tutel = super::run(4, model.clone(), &EngineOpts::tutel());
        let janus = super::run(4, model.clone(), &EngineOpts::default());
        assert!(
            !janus.memory.oom,
            "Janus must fit in every paper configuration"
        );
        let tutel_time = (!tutel.memory.oom).then_some(tutel.iter_time);
        Row {
            model: model.name.clone(),
            batch,
            seq,
            k,
            tutel_time,
            janus_time: janus.iter_time,
            speedup: tutel_time.map(|t| t / janus.iter_time),
        }
    }

    /// Figure 15 sweep: batch sizes 64 and 128 with the paper's fixed
    /// (S, k) per model.
    pub fn run_fig15() -> Vec<Row> {
        let mut rows = Vec::new();
        for (preset, s, k) in [
            (ModelPreset::MoeBert, 256, 4),
            (ModelPreset::MoeGpt, 128, 8),
            (ModelPreset::MoeTransformerXl, 256, 2),
        ] {
            for b in [64usize, 128] {
                let mut model = preset.config(32);
                model.batch = b;
                model.seq_len = s;
                model.top_k = k;
                rows.push(sweep_point(model));
            }
        }
        rows
    }

    /// Figure 16 sweep: sequence lengths 256 and 512 with the paper's
    /// fixed (B, k) per model. MoE-BERT at S = 512 is the OOM case.
    pub fn run_fig16() -> Vec<Row> {
        let mut rows = Vec::new();
        for (preset, b, k) in [
            (ModelPreset::MoeBert, 256, 4),
            (ModelPreset::MoeGpt, 32, 8),
            (ModelPreset::MoeTransformerXl, 64, 2),
        ] {
            for s in [256usize, 512] {
                let mut model = preset.config(32);
                model.batch = b;
                model.seq_len = s;
                model.top_k = k;
                rows.push(sweep_point(model));
            }
        }
        rows
    }

    /// Print a sweep.
    pub fn print(title: &str, rows: &[Row]) {
        println!("{title}\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.batch.to_string(),
                    r.seq.to_string(),
                    r.k.to_string(),
                    r.tutel_time.map(table::ms).unwrap_or_else(|| "OOM".into()),
                    table::ms(r.janus_time),
                    r.speedup.map(table::speedup).unwrap_or_else(|| "—".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "model",
                    "B",
                    "S",
                    "k",
                    "Tutel (ms)",
                    "Janus (ms)",
                    "speedup"
                ],
                &body
            )
        );
    }
}

/// Figure 17: unified paradigm on PR-MoE.
pub mod fig17 {
    use super::*;

    /// One cluster size's comparison.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// GPU count.
        pub gpus: usize,
        /// Pure expert-centric iteration time (s).
        pub ec_time: f64,
        /// Pure data-centric iteration time (s).
        pub dc_time: f64,
        /// Unified iteration time (s).
        pub unified_time: f64,
        /// Unified speedup over expert-centric.
        pub speedup: f64,
        /// Paper's speedup over expert-centric.
        pub paper: f64,
    }

    /// Run PR-MoE-Transformer-xl on 16 and 32 GPUs.
    ///
    /// The unified runs use the paper's conservative threshold (§7.5):
    /// blocks whose measured gain would be eaten by the PCIe ceiling
    /// (`R ≤ 2`) stay expert-centric, which selects data-centric for the
    /// two shallow MoE blocks and expert-centric for the two deep ones on
    /// both cluster sizes — the split §7.5 describes.
    pub fn run() -> Vec<Row> {
        [(16usize, 2usize, 2.06), (32, 4, 1.44)]
            .into_iter()
            .map(|(gpus, machines, paper)| {
                let model = pr_moe_transformer_xl(gpus);
                let ec = super::run(machines, model.clone(), &EngineOpts::janus_expert_centric());
                let dc = super::run(
                    machines,
                    model.clone(),
                    &EngineOpts::data_centric(true, true),
                );
                let mut unified_opts = EngineOpts {
                    r_threshold: 2.0,
                    ..EngineOpts::default()
                };
                unified_opts.policy = ParadigmPolicy::Unified;
                let unified = super::run(machines, model, &unified_opts);
                Row {
                    gpus,
                    ec_time: ec.iter_time,
                    dc_time: dc.iter_time,
                    unified_time: unified.iter_time,
                    speedup: ec.iter_time / unified.iter_time,
                    paper,
                }
            })
            .collect()
    }

    /// Print the comparison.
    pub fn print(rows: &[Row]) {
        println!("Figure 17 — PR-MoE-Transformer-xl: unified vs pure paradigms\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.gpus.to_string(),
                    table::ms(r.ec_time),
                    table::ms(r.dc_time),
                    table::ms(r.unified_time),
                    table::speedup(r.speedup),
                    table::speedup(r.paper),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "GPUs",
                    "EC (ms)",
                    "DC (ms)",
                    "unified (ms)",
                    "unified/EC",
                    "paper"
                ],
                &body
            )
        );
    }
}

/// §5.1.3 / §7.3: the R metric across configurations.
pub mod rmetric {
    use super::*;
    use janus_moe::traffic::r_for_block;

    /// R of one model's MoE blocks on one cluster.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Machines.
        pub machines: usize,
        /// Distinct R values across MoE blocks.
        pub r_values: Vec<f64>,
        /// Paper's value(s) where published.
        pub paper: &'static str,
    }

    /// Compute R for every evaluation model.
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        for (preset, paper) in [
            (ModelPreset::MoeBert, "5.33"),
            (ModelPreset::MoeGpt, "5.33"),
            (ModelPreset::MoeTransformerXl, "16"),
        ] {
            let model = preset.config(32);
            let mut r_values: Vec<f64> = model
                .moe_blocks()
                .iter()
                .map(|&b| r_for_block(&model, b, 4, 8))
                .collect();
            r_values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            rows.push(Row {
                model: model.name,
                machines: 4,
                r_values,
                paper,
            });
        }
        for gpus in [16usize, 32] {
            let machines = gpus / 8;
            let model = pr_moe_transformer_xl(gpus);
            let mut r_values: Vec<f64> = model
                .moe_blocks()
                .iter()
                .map(|&b| r_for_block(&model, b, machines, 8))
                .collect();
            r_values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            rows.push(Row {
                model: model.name,
                machines,
                paper: if gpus == 16 {
                    "4 / 1 (with n=4)"
                } else {
                    "—"
                },
                r_values,
            });
        }
        rows
    }

    /// Print the metric table.
    pub fn print(rows: &[Row]) {
        println!("R = BSk/(4nHE) per MoE block (R > 1 favours data-centric)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.machines.to_string(),
                    r.r_values
                        .iter()
                        .map(|v| format!("{v:.2}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    r.paper.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["model", "machines", "R (per block)", "paper"], &body)
        );
    }
}

/// The compiled [`IterationPlan`] for every evaluation model: per-block
/// `R`, the threshold it was judged against, the chosen paradigm, and
/// the plan's content digest — the same IR the simulator's `build_graph`
/// and the numerical `exec::unified` engine execute.
pub mod plan {
    use super::*;
    use janus_core::plan::{IterationPlan, PlanOpts};
    use janus_core::Paradigm;

    /// One run of consecutive MoE blocks sharing the same plan entry.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Machines (× 8 GPUs).
        pub machines: usize,
        /// Block range, e.g. `"1-23"` (inclusive).
        pub blocks: String,
        /// Experts per block in this range.
        pub experts: usize,
        /// Gain metric of these blocks.
        pub r: f64,
        /// Threshold the plan judged `R` against.
        pub threshold: f64,
        /// Chosen paradigm.
        pub paradigm: String,
        /// Hex content digest of the whole plan.
        pub digest: String,
    }

    /// Compile plans for the evaluation presets (default `R > 1` rule)
    /// and PR-MoE (the paper's conservative `R > 2` threshold, §7.5).
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        for preset in ModelPreset::all() {
            let model = preset.config(32);
            rows.extend(rows_for(&model, 4, &PlanOpts::default()));
        }
        for gpus in [16usize, 32] {
            let model = pr_moe_transformer_xl(gpus);
            let opts = PlanOpts {
                r_threshold: 2.0,
                ..PlanOpts::default()
            };
            rows.extend(rows_for(&model, gpus / 8, &opts));
        }
        rows
    }

    fn rows_for(model: &ModelConfig, machines: usize, opts: &PlanOpts) -> Vec<Row> {
        let cluster = crate::paper_cluster(machines);
        let compiled = IterationPlan::compile(model, &cluster, opts);
        let digest = format!("{:016x}", compiled.digest());
        let name = |p: Paradigm| match p {
            Paradigm::DataCentric => "data-centric",
            Paradigm::ExpertCentric => "expert-centric",
        };
        // Group consecutive MoE blocks with identical plan entries.
        let mut rows: Vec<Row> = Vec::new();
        let mut range: Option<(usize, usize, usize, f64, Paradigm)> = None;
        let flush = |r: &Option<(usize, usize, usize, f64, Paradigm)>, rows: &mut Vec<Row>| {
            if let Some((lo, hi, experts, rv, p)) = *r {
                rows.push(Row {
                    model: model.name.clone(),
                    machines,
                    blocks: if lo == hi {
                        lo.to_string()
                    } else {
                        format!("{lo}-{hi}")
                    },
                    experts,
                    r: rv,
                    threshold: compiled.r_threshold,
                    paradigm: name(p).to_string(),
                    digest: digest.clone(),
                });
            }
        };
        for bp in &compiled.blocks {
            let Some(rv) = bp.r else { continue };
            match range {
                Some((lo, hi, experts, prev_r, p))
                    if experts == bp.experts
                        && prev_r.to_bits() == rv.to_bits()
                        && p == bp.paradigm
                        && hi + 1 == bp.block =>
                {
                    range = Some((lo, bp.block, experts, prev_r, p));
                }
                _ => {
                    flush(&range, &mut rows);
                    range = Some((bp.block, bp.block, bp.experts, rv, bp.paradigm));
                }
            }
        }
        flush(&range, &mut rows);
        rows
    }

    /// Print the plan table.
    pub fn print(rows: &[Row]) {
        println!("compiled IterationPlan per model (sim and exec consume this IR verbatim)\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.machines.to_string(),
                    r.blocks.clone(),
                    r.experts.to_string(),
                    format!("{:.2}", r.r),
                    format!("{:.1}", r.threshold),
                    r.paradigm.clone(),
                    r.digest.clone(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "model",
                    "machines",
                    "blocks",
                    "experts",
                    "R",
                    "threshold",
                    "paradigm",
                    "plan digest"
                ],
                &body
            )
        );
    }
}

/// Design-choice ablations beyond the paper's Figure 12: credit-buffer
/// sizing, per-message latency sensitivity (the knob behind the §7.5
/// crossover), and flat vs staged All-to-All.
pub mod ablations {
    use super::*;
    use janus_core::sim::engine::DcOpts;

    /// Credit-buffer sweep result.
    #[derive(Debug, Clone, Serialize)]
    pub struct CreditRow {
        /// Buffer capacity (experts).
        pub credits: u32,
        /// Iteration time (s) on MoE-GPT/32e.
        pub iter_time: f64,
        /// Experts staged before the MoE block's gate at worker 0.
        pub staged_before_gate: usize,
    }

    /// Sweep the credit-based buffer capacity (§5.1.1): too small starves
    /// the prefetch pipeline; beyond ~a dozen slots the returns vanish.
    pub fn credit_sweep() -> Vec<CreditRow> {
        let model = ModelPreset::MoeGpt.config(32);
        [1u32, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|credits| {
                let mut opts = EngineOpts::data_centric(true, true);
                opts.dc = DcOpts { credits, ..opts.dc };
                let report = super::run(4, model.clone(), &opts);
                let gate = report.block_finish_w0[10];
                let staged = report
                    .expert_arrival_w0
                    .iter()
                    .filter(|(_, t)| *t <= gate)
                    .count();
                CreditRow {
                    credits,
                    iter_time: report.iter_time,
                    staged_before_gate: staged,
                }
            })
            .collect()
    }

    /// Per-message latency sensitivity row.
    #[derive(Debug, Clone, Serialize)]
    pub struct LatencyRow {
        /// Issue latency (µs).
        pub latency_us: f64,
        /// Expert-centric iteration (s), PR-MoE/16gpu.
        pub ec_time: f64,
        /// Data-centric iteration (s).
        pub dc_time: f64,
        /// Who wins.
        pub dc_wins: bool,
    }

    /// Sweep the per-message issue latency on PR-MoE (many small experts,
    /// E up to 4): this is the physical effect that makes All-to-All
    /// preferable at small `R` — with free messages, pulling experts
    /// always wins; with realistic per-pull costs the deep blocks flip.
    pub fn latency_sweep() -> Vec<LatencyRow> {
        let model = pr_moe_transformer_xl(16);
        [0.0, 50e-6, 150e-6, 300e-6, 1e-3]
            .into_iter()
            .map(|latency| {
                let mut ec = EngineOpts::janus_expert_centric();
                ec.msg_latency = latency;
                let mut dc = EngineOpts::data_centric(true, true);
                dc.msg_latency = latency;
                let ec_time = super::run(2, model.clone(), &ec).iter_time;
                let dc_time = super::run(2, model.clone(), &dc).iter_time;
                LatencyRow {
                    latency_us: latency * 1e6,
                    ec_time,
                    dc_time,
                    dc_wins: dc_time < ec_time,
                }
            })
            .collect()
    }

    /// Flat vs staged (Tutel-2DH-style) All-to-All row.
    #[derive(Debug, Clone, Serialize)]
    pub struct A2aRow {
        /// Model name.
        pub model: String,
        /// Flat collective iteration time (s).
        pub flat_time: f64,
        /// Staged collective iteration time (s).
        pub staged_time: f64,
        /// Cross-node traffic of both (GiB/machine) — must be equal.
        pub traffic_gib: f64,
    }

    /// Compare the two expert-centric collectives: identical bytes, but
    /// the staged variant serializes its stages under the fluid model.
    pub fn a2a_style() -> Vec<A2aRow> {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        ModelPreset::all()
            .into_iter()
            .map(|preset| {
                let model = preset.config(32);
                let flat = super::run(4, model.clone(), &EngineOpts::janus_expert_centric());
                let mut staged_opts = EngineOpts::janus_expert_centric();
                staged_opts.hierarchical_a2a = true;
                let staged = super::run(4, model, &staged_opts);
                A2aRow {
                    model: preset.name().into(),
                    flat_time: flat.iter_time,
                    staged_time: staged.iter_time,
                    traffic_gib: flat.cross_node_bytes_per_machine / GIB,
                }
            })
            .collect()
    }

    /// Print all three ablations.
    pub fn print(credits: &[CreditRow], latency: &[LatencyRow], a2a: &[A2aRow]) {
        println!("Ablation A — credit-buffer capacity (MoE-GPT/32e, full Janus)\n");
        let body: Vec<Vec<String>> = credits
            .iter()
            .map(|r| {
                vec![
                    r.credits.to_string(),
                    table::ms(r.iter_time),
                    r.staged_before_gate.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["credits", "iter (ms)", "staged before gate"], &body)
        );

        println!("Ablation B — per-message latency vs paradigm choice (PR-MoE/16gpu)\n");
        let body: Vec<Vec<String>> = latency
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.latency_us),
                    table::ms(r.ec_time),
                    table::ms(r.dc_time),
                    if r.dc_wins { "DC".into() } else { "EC".into() },
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["latency (µs)", "EC (ms)", "DC (ms)", "winner"], &body)
        );

        println!("Ablation C — flat vs staged All-to-All (same bytes, 32 GPUs)\n");
        let body: Vec<Vec<String>> = a2a
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    table::ms(r.flat_time),
                    table::ms(r.staged_time),
                    format!("{:.2}", r.traffic_gib),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["model", "flat (ms)", "staged (ms)", "traffic GiB"], &body)
        );
    }
}

/// Compute-substrate benchmark: the blocked/parallel kernels against the
/// scalar reference at expert-FFN shapes, plus end-to-end numerical
/// training throughput under both paradigms.
pub mod compute {
    use super::*;
    use janus_core::exec::model::ExecConfig;
    use janus_core::exec::trainer::{train_data_centric, train_expert_centric};
    use janus_tensor::{matmul_reference, pool, simd, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hint::black_box;
    use std::time::Instant;

    /// One kernel measurement: the expert up-projection `x(T×H) · w1(H×4H)`.
    #[derive(Debug, Clone, Serialize)]
    pub struct KernelRow {
        /// Hidden dimension H (the weight is H×4H).
        pub hidden: usize,
        /// Tokens per pass T.
        pub tokens: usize,
        /// Scalar reference (seed kernel) wall time.
        pub scalar_ms: f64,
        /// Blocked kernel (SIMD forced off), pool pinned to one thread.
        pub blocked_ms: f64,
        /// AVX2 kernel (SIMD forced on), pool pinned to one thread. On a
        /// CPU without AVX2 the forced path degrades to blocked, so this
        /// equals `blocked_ms` there.
        pub simd_ms: f64,
        /// Auto-dispatched kernel, pool at its configured width.
        pub parallel_ms: f64,
        /// scalar / blocked.
        pub blocked_speedup: f64,
        /// scalar / simd.
        pub simd_speedup: f64,
        /// blocked / simd — the within-run gain of the AVX2 kernels over
        /// the portable blocked ones, the ratio the perf gate tracks
        /// (machine-speed independent, unlike the absolute columns).
        pub simd_vs_blocked: f64,
        /// scalar / parallel.
        pub parallel_speedup: f64,
    }

    /// Wall-clock throughput of one training paradigm.
    #[derive(Debug, Clone, Serialize)]
    pub struct TrainingRow {
        /// "data-centric" or "expert-centric".
        pub paradigm: String,
        /// Iterations timed.
        pub iters: u64,
        /// Mean wall time per iteration.
        pub ms_per_iter: f64,
        /// Tokens processed per second across the whole world.
        pub tokens_per_sec: f64,
    }

    /// Everything `BENCH_compute.json` holds.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Pool width used for the parallel columns.
        pub threads: usize,
        /// Whether the CPU reports AVX2 (the `simd_*` columns measure
        /// the real SIMD path only when true).
        pub simd_detected: bool,
        /// Kernel rows, one per hidden size.
        pub kernels: Vec<KernelRow>,
        /// Training rows, one per paradigm.
        pub training: Vec<TrainingRow>,
    }

    /// Best-of-3 timing passes of `reps` iterations each. The minimum is
    /// the noise-robust estimator on a shared box: descheduling only ever
    /// inflates a pass, so the quietest pass is the closest to the true
    /// kernel cost — and the gated ratios below divide one minimum by
    /// another, keeping them stable run-to-run.
    fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
        }
        best
    }

    /// Measure kernels at H ∈ {512, 1024} and both training paradigms.
    pub fn run() -> Report {
        let tokens = 64usize;
        let mut kernels = Vec::new();
        for hidden in [512usize, 1024] {
            let mut rng = StdRng::seed_from_u64(11);
            let x = Matrix::uniform(tokens, hidden, 1.0, &mut rng);
            let w1 = Matrix::uniform(hidden, 4 * hidden, 0.1, &mut rng);
            let reps = if hidden >= 1024 { 3 } else { 8 };
            // The SIMD kernels finish in single-digit milliseconds, so
            // they get 4× the repetitions: a timed pass below ~50 ms is
            // dominated by scheduler and DVFS noise, and the gated
            // simd-vs-blocked ratio inherits that jitter.
            let fast_reps = reps * 4;
            let scalar_ms = time_ms(1, || {
                black_box(matmul_reference(black_box(&x), black_box(&w1)));
            });
            pool::set_threads(1);
            simd::set_forced(Some(false));
            let blocked_ms = time_ms(reps, || {
                black_box(black_box(&x).matmul(black_box(&w1)));
            });
            simd::set_forced(Some(true));
            let simd_ms = time_ms(fast_reps, || {
                black_box(black_box(&x).matmul(black_box(&w1)));
            });
            simd::set_forced(None);
            pool::set_threads(0);
            let parallel_ms = time_ms(fast_reps, || {
                black_box(black_box(&x).matmul(black_box(&w1)));
            });
            kernels.push(KernelRow {
                hidden,
                tokens,
                scalar_ms,
                blocked_ms,
                simd_ms,
                parallel_ms,
                blocked_speedup: scalar_ms / blocked_ms,
                simd_speedup: scalar_ms / simd_ms,
                simd_vs_blocked: blocked_ms / simd_ms,
                parallel_speedup: scalar_ms / parallel_ms,
            });
        }

        let cfg = ExecConfig {
            hidden_dim: 32,
            tokens: 64,
            ..ExecConfig::small()
        };
        let iters = 5u64;
        let world_tokens = (cfg.world() * cfg.tokens) as f64 * iters as f64;
        let mut training = Vec::new();
        for (paradigm, run) in [
            (
                "data-centric",
                train_data_centric as fn(&ExecConfig, u64) -> _,
            ),
            ("expert-centric", train_expert_centric),
        ] {
            black_box(run(&cfg, 1)); // warm-up
            let t0 = Instant::now();
            black_box(run(&cfg, iters));
            let secs = t0.elapsed().as_secs_f64();
            training.push(TrainingRow {
                paradigm: paradigm.to_string(),
                iters,
                ms_per_iter: secs * 1e3 / iters as f64,
                tokens_per_sec: world_tokens / secs,
            });
        }
        Report {
            threads: pool::threads(),
            simd_detected: simd::detected(),
            kernels,
            training,
        }
    }

    /// Print both tables.
    pub fn print(report: &Report) {
        println!(
            "Compute substrate — blocked/simd/parallel kernels vs scalar reference \
             ({} pool thread(s), simd {})\n",
            report.threads,
            if report.simd_detected {
                "avx2"
            } else {
                "unavailable"
            }
        );
        let body: Vec<Vec<String>> = report
            .kernels
            .iter()
            .map(|r| {
                vec![
                    r.hidden.to_string(),
                    r.tokens.to_string(),
                    format!("{:.1}", r.scalar_ms),
                    format!("{:.1}", r.blocked_ms),
                    format!("{:.1}", r.simd_ms),
                    format!("{:.1}", r.parallel_ms),
                    format!("{:.1}×", r.blocked_speedup),
                    format!("{:.1}×", r.simd_speedup),
                    format!("{:.1}×", r.simd_vs_blocked),
                    format!("{:.1}×", r.parallel_speedup),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "H",
                    "tokens",
                    "scalar ms",
                    "blocked ms",
                    "simd ms",
                    "parallel ms",
                    "blocked ×",
                    "simd ×",
                    "simd/blocked ×",
                    "parallel ×"
                ],
                &body
            )
        );
        let body: Vec<Vec<String>> = report
            .training
            .iter()
            .map(|r| {
                vec![
                    r.paradigm.clone(),
                    r.iters.to_string(),
                    format!("{:.1}", r.ms_per_iter),
                    format!("{:.0}", r.tokens_per_sec),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["paradigm", "iters", "ms/iter", "tokens/sec"], &body)
        );
    }

    /// Write the report as `BENCH_compute.json`; returns the path.
    pub fn write_json(report: &Report, path: &str) -> std::io::Result<String> {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(path, json)?;
        Ok(path.to_string())
    }
}

/// Transport micro-benchmarks behind `BENCH_transport.json`: message
/// rate, bulk bandwidth, and p99 frame latency on the in-process, TCP,
/// and reliable-over-TCP transports, plus a within-run comparison of
/// the vectored zero-copy send path against the legacy
/// encode-then-write-twice path (the ratio the perf gate tracks).
pub mod transport {
    use super::*;
    use bytes::Bytes;
    use janus_comm::codec::{
        read_message, read_message_buffered, write_frame, write_message, DEFAULT_MAX_FRAME,
    };
    use janus_comm::local::local_mesh;
    use janus_comm::tcp::tcp_mesh_localhost;
    use janus_comm::{Message, ReliableTransport, Transport};
    use std::time::Instant;

    /// One (transport, payload size) measurement.
    #[derive(Debug, Clone, Serialize)]
    pub struct LaneRow {
        /// "local", "tcp", or "reliable+tcp".
        pub transport: String,
        /// Bulk payload bytes per message (0 = header-only control
        /// message, the pull-request regime).
        pub payload_bytes: usize,
        /// Messages pushed through the timed window.
        pub msgs: usize,
        /// Sustained messages per second (sender and receiver threads
        /// pipelined).
        pub msgs_per_sec: f64,
        /// Sustained payload gigabytes per second.
        pub gbytes_per_sec: f64,
        /// 99th-percentile one-way frame latency, microseconds
        /// (send → delivered, measured unpipelined).
        pub p99_us: f64,
    }

    /// Within-run legacy-vs-fast frame-loop comparison on a raw TCP
    /// loopback pair, small control messages. Both sides run in the
    /// same process on the same socket, so the ratio is robust to
    /// machine speed — this is what the CI perf gate checks.
    #[derive(Debug, Clone, Serialize)]
    pub struct FastPathRow {
        /// Messages per timed window.
        pub msgs: usize,
        /// Legacy loop: `Message::encode` into a fresh buffer plus two
        /// stream writes (length prefix + body) per frame on the send
        /// side; unbuffered two-syscall reads with a fresh payload
        /// allocation per frame on the receive side.
        pub legacy_msgs_per_sec: f64,
        /// Fast loop: stack header + vectored single write per frame;
        /// buffered reads decoding out of a reused scratch buffer.
        pub fast_msgs_per_sec: f64,
        /// fast / legacy.
        pub speedup: f64,
    }

    /// Everything `BENCH_transport.json` holds.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Per-transport, per-size lanes.
        pub lanes: Vec<LaneRow>,
        /// The send-path comparison.
        pub fastpath: FastPathRow,
    }

    /// Payload sizes each transport is swept over.
    const SIZES: [usize; 3] = [0, 64 * 1024, 1024 * 1024];

    fn msg_for(payload: usize, seq: u64) -> Message {
        if payload == 0 {
            Message::PullRequest {
                block: 0,
                expert: (seq % 64) as u32,
                nonce: seq as u32,
            }
        } else {
            Message::Collective {
                seq,
                data: Bytes::from(vec![(seq % 251) as u8; payload]),
            }
        }
    }

    /// Messages per window, scaled down as payloads grow.
    fn window(payload: usize) -> usize {
        match payload {
            0 => 20_000,
            p if p <= 64 * 1024 => 600,
            _ => 48,
        }
    }

    // `ReliableTransport` is Send but not Sync (its retransmit state
    // lives in a `RefCell`), so the receiver endpoint is moved into the
    // recv thread for the throughput window and handed back afterwards.
    fn measure_pair<T: Transport + Send>(name: &str, a: &T, mut b: T, rows: &mut Vec<LaneRow>) {
        let to = b.rank();
        for payload in SIZES {
            let msgs = window(payload);
            // Throughput: sender and receiver pipelined across threads.
            let payload_msg = msg_for(payload, 1);
            let t0 = Instant::now();
            b = std::thread::scope(|s| {
                let rx = s.spawn(move || {
                    for _ in 0..msgs {
                        b.recv().expect("bench recv");
                    }
                    b
                });
                for _ in 0..msgs {
                    a.send(to, payload_msg.clone()).expect("bench send");
                    // Keep the sender's inbox drained so reliability
                    // acks (when present) retire in-flight state.
                    let _ = a.try_recv();
                }
                rx.join().expect("bench recv thread")
            });
            let secs = t0.elapsed().as_secs_f64();
            // Latency: unpipelined send → recv, per-frame samples.
            let lat_samples = 200.min(msgs);
            let mut samples = Vec::with_capacity(lat_samples);
            for i in 0..lat_samples {
                let m = msg_for(payload, i as u64);
                let t = Instant::now();
                a.send(to, m).expect("bench send");
                b.recv().expect("bench recv");
                samples.push(t.elapsed().as_secs_f64() * 1e6);
                let _ = a.try_recv();
            }
            samples.sort_by(f64::total_cmp);
            let p99 = samples[(samples.len() * 99) / 100];
            rows.push(LaneRow {
                transport: name.to_string(),
                payload_bytes: payload,
                msgs,
                msgs_per_sec: msgs as f64 / secs,
                gbytes_per_sec: (msgs * payload) as f64 / secs / 1e9,
                p99_us: p99,
            });
        }
    }

    /// Legacy framing: what `write_message` did before the vectored
    /// fast path — encode into a fresh buffer, then write the length
    /// prefix and the body separately. Kept here so the comparison
    /// keeps measuring the old cost model even though the codec no
    /// longer ships it.
    fn write_message_legacy<W: std::io::Write>(
        w: &mut W,
        msg: &Message,
    ) -> Result<(), janus_comm::CommError> {
        write_frame(w, &msg.encode())
    }

    fn measure_fastpath() -> FastPathRow {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut tx = TcpStream::connect(addr).expect("connect");
        tx.set_nodelay(true).expect("nodelay");
        let (mut rx, _) = listener.accept().expect("accept");
        rx.set_nodelay(true).expect("nodelay");

        let msgs = 30_000usize;
        let mut run = |legacy: bool| -> f64 {
            let tx = &mut tx;
            let rx = &mut rx;
            let t0 = Instant::now();
            std::thread::scope(|s| {
                s.spawn(move || {
                    if legacy {
                        // Pre-fast-path receive loop: unbuffered stream,
                        // two read syscalls and a fresh payload
                        // allocation per frame.
                        for _ in 0..msgs {
                            read_message(rx, DEFAULT_MAX_FRAME)
                                .expect("bench read")
                                .expect("frame");
                        }
                    } else {
                        let mut rx = std::io::BufReader::with_capacity(64 * 1024, rx);
                        let mut scratch = Vec::new();
                        for _ in 0..msgs {
                            read_message_buffered(&mut rx, DEFAULT_MAX_FRAME, &mut scratch)
                                .expect("bench read")
                                .expect("frame");
                        }
                        // The BufReader is drained: every byte it slurped
                        // belonged to this window's frames, so dropping it
                        // loses nothing.
                    }
                });
                for i in 0..msgs {
                    let m = msg_for(0, i as u64);
                    if legacy {
                        write_message_legacy(tx, &m).expect("bench write");
                    } else {
                        write_message(tx, &m).expect("bench write");
                    }
                }
            });
            msgs as f64 / t0.elapsed().as_secs_f64()
        };
        // Warm both paths once (socket buffers, allocator), then take the
        // best of three timed windows each, interleaved so machine-load
        // drift hits both paths alike.
        run(true);
        run(false);
        let mut legacy = 0.0f64;
        let mut fast = 0.0f64;
        for _ in 0..3 {
            legacy = legacy.max(run(true));
            fast = fast.max(run(false));
        }
        FastPathRow {
            msgs,
            legacy_msgs_per_sec: legacy,
            fast_msgs_per_sec: fast,
            speedup: fast / legacy,
        }
    }

    /// Run every lane and the fast-path comparison.
    pub fn run() -> Report {
        let mut lanes = Vec::new();

        let mut mesh = local_mesh(2);
        let b = mesh.pop().expect("local pair");
        let a = mesh.pop().expect("local pair");
        measure_pair("local", &a, b, &mut lanes);

        let mut mesh = tcp_mesh_localhost(2).expect("tcp mesh");
        let b = mesh.pop().expect("tcp pair");
        let a = mesh.pop().expect("tcp pair");
        measure_pair("tcp", &a, b, &mut lanes);

        let mut mesh = tcp_mesh_localhost(2).expect("tcp mesh");
        let b = ReliableTransport::new(mesh.pop().expect("tcp pair"));
        let a = ReliableTransport::new(mesh.pop().expect("tcp pair"));
        measure_pair("reliable+tcp", &a, b, &mut lanes);

        Report {
            lanes,
            fastpath: measure_fastpath(),
        }
    }

    /// Print the lanes and the fast-path comparison.
    pub fn print(report: &Report) {
        println!("Transport fast path — msgs/s, bandwidth, p99 frame latency\n");
        let body: Vec<Vec<String>> = report
            .lanes
            .iter()
            .map(|r| {
                vec![
                    r.transport.clone(),
                    if r.payload_bytes == 0 {
                        "control".to_string()
                    } else {
                        format!("{} KiB", r.payload_bytes / 1024)
                    },
                    format!("{:.0}", r.msgs_per_sec),
                    format!("{:.2}", r.gbytes_per_sec),
                    format!("{:.0}", r.p99_us),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["transport", "payload", "msgs/s", "GB/s", "p99 µs"], &body)
        );
        let f = &report.fastpath;
        println!(
            "TCP small-message frame loop: legacy {:.0} msgs/s → fast path {:.0} msgs/s ({:.2}×)\n",
            f.legacy_msgs_per_sec, f.fast_msgs_per_sec, f.speedup
        );
    }

    /// Write the report as `BENCH_transport.json`; returns the path.
    pub fn write_json(report: &Report, path: &str) -> std::io::Result<String> {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(path, json)?;
        Ok(path.to_string())
    }
}

/// The perf regression gate behind `repro bench --check`: compares a
/// fresh [`compute`] + [`transport`] run against the committed
/// `BENCH_*.json` baselines and fails on a >10% drop in any gated
/// metric.
///
/// Only **within-run ratios** are gated (blocked-vs-scalar speedup,
/// simd-vs-blocked speedup, fast-vs-legacy send-path speedup): they
/// compare two measurements taken seconds apart on the same machine, so
/// they survive CI-runner speed differences that make absolute ms or
/// msgs/s columns meaningless across machines. The absolute columns
/// stay in the JSON for trend reading, unchecked.
pub mod benchgate {
    use super::*;

    /// Fraction of the baseline a gated metric may lose before the gate
    /// fails (10%).
    pub const TOLERANCE: f64 = 0.10;

    /// One gated metric comparison.
    #[derive(Debug, Clone, Serialize)]
    pub struct Gate {
        /// Metric name, e.g. `compute.h1024.simd_vs_blocked`.
        pub metric: String,
        /// Committed baseline value.
        pub baseline: f64,
        /// Freshly measured value.
        pub current: f64,
        /// Whether `current >= baseline * (1 - TOLERANCE)`.
        pub ok: bool,
    }

    fn gate(metric: String, baseline: f64, current: f64) -> Gate {
        Gate {
            ok: current >= baseline * (1.0 - TOLERANCE),
            metric,
            baseline,
            current,
        }
    }

    fn field(v: &serde_json::Value, path: &[&str]) -> Option<f64> {
        let mut cur = v;
        for p in path {
            cur = &cur[*p];
        }
        cur.as_f64()
    }

    /// Compare a fresh compute report against baseline JSON text.
    pub fn check_compute(baseline_json: &str, report: &compute::Report) -> Vec<Gate> {
        let fresh = serde_json::to_string(report).expect("report serializes");
        check_compute_json(baseline_json, &fresh)
    }

    /// Compare two compute reports, both as JSON text — the form the lab
    /// uses, gating the `compute` task's artifact without re-measuring.
    pub fn check_compute_json(baseline_json: &str, fresh_json: &str) -> Vec<Gate> {
        let (Ok(base), Ok(fresh)) = (
            serde_json::from_str::<serde_json::Value>(baseline_json),
            serde_json::from_str::<serde_json::Value>(fresh_json),
        ) else {
            return Vec::new();
        };
        let mut gates = Vec::new();
        let empty = Vec::new();
        for row in fresh["kernels"].as_array().unwrap_or(&empty) {
            let Some(hidden) = row["hidden"].as_u64() else {
                continue;
            };
            let Some(brow) = base["kernels"]
                .as_array()
                .and_then(|rows| rows.iter().find(|r| r["hidden"].as_u64() == Some(hidden)))
            else {
                continue;
            };
            for name in ["blocked_speedup", "simd_vs_blocked"] {
                if let (Some(b), Some(c)) = (brow[name].as_f64(), row[name].as_f64()) {
                    gates.push(gate(format!("compute.h{hidden}.{name}"), b, c));
                }
            }
        }
        gates
    }

    /// Compare a fresh transport report against baseline JSON text.
    pub fn check_transport(baseline_json: &str, report: &transport::Report) -> Vec<Gate> {
        let fresh = serde_json::to_string(report).expect("report serializes");
        check_transport_json(baseline_json, &fresh)
    }

    /// Compare two transport reports, both as JSON text.
    pub fn check_transport_json(baseline_json: &str, fresh_json: &str) -> Vec<Gate> {
        let (Ok(base), Ok(fresh)) = (
            serde_json::from_str::<serde_json::Value>(baseline_json),
            serde_json::from_str::<serde_json::Value>(fresh_json),
        ) else {
            return Vec::new();
        };
        let mut gates = Vec::new();
        if let (Some(b), Some(c)) = (
            field(&base, &["fastpath", "speedup"]),
            field(&fresh, &["fastpath", "speedup"]),
        ) {
            gates.push(gate("transport.fastpath.speedup".to_string(), b, c));
        }
        gates
    }

    /// Gate fresh compute/transport report JSON against the committed
    /// root baselines (`BENCH_compute.json` / `BENCH_transport.json`).
    /// A missing baseline skips its gates with a note — first runs on a
    /// new tree must not fail.
    pub fn gates_against_baselines(fresh_compute: &str, fresh_transport: &str) -> Vec<Gate> {
        let mut gates = Vec::new();
        match std::fs::read_to_string("BENCH_compute.json") {
            Ok(base) => gates.extend(check_compute_json(&base, fresh_compute)),
            Err(e) => eprintln!("no compute baseline ({e}); skipping its gates"),
        }
        match std::fs::read_to_string("BENCH_transport.json") {
            Ok(base) => gates.extend(check_transport_json(&base, fresh_transport)),
            Err(e) => eprintln!("no transport baseline ({e}); skipping its gates"),
        }
        gates
    }

    /// Retry half of the `--check` flow: if any gate in `gates` failed,
    /// re-measure both suites once and keep each metric's best attempt,
    /// so a single noisy timing window on a shared box cannot fail CI.
    pub fn retry_if_failed(gates: Vec<Gate>) -> Vec<Gate> {
        if gates.iter().all(|g| g.ok) {
            return gates;
        }
        eprintln!("a gate regressed; re-measuring once to rule out machine noise");
        let creport = compute::run();
        let treport = transport::run();
        let fresh_c = serde_json::to_string(&creport).expect("report serializes");
        let fresh_t = serde_json::to_string(&treport).expect("report serializes");
        merge_best(gates, gates_against_baselines(&fresh_c, &fresh_t))
    }

    /// The whole `repro bench --check` measurement flow: run both perf
    /// suites, print their tables, gate the within-run ratios against
    /// the committed baselines, and retry once on failure. The caller
    /// renders the gates ([`print`]) and decides the exit code.
    pub fn run_check() -> (compute::Report, transport::Report, Vec<Gate>) {
        let creport = compute::run();
        compute::print(&creport);
        let treport = transport::run();
        transport::print(&treport);
        let fresh_c = serde_json::to_string(&creport).expect("report serializes");
        let fresh_t = serde_json::to_string(&treport).expect("report serializes");
        let gates = retry_if_failed(gates_against_baselines(&fresh_c, &fresh_t));
        (creport, treport, gates)
    }

    /// Merge two gate runs of the same metrics, keeping each metric's
    /// best measurement. Used by the `--check` retry: a gate only fails
    /// if it regressed in **both** attempts, so a single descheduled
    /// timing window on a busy box cannot fail CI by itself.
    pub fn merge_best(first: Vec<Gate>, second: Vec<Gate>) -> Vec<Gate> {
        let mut merged = first;
        for g in second {
            match merged.iter_mut().find(|m| m.metric == g.metric) {
                Some(m) if g.current > m.current => *m = g,
                Some(_) => {}
                None => merged.push(g),
            }
        }
        merged
    }

    /// Render the gate table and return whether every gate passed.
    pub fn print(gates: &[Gate]) -> bool {
        let body: Vec<Vec<String>> = gates
            .iter()
            .map(|g| {
                vec![
                    g.metric.clone(),
                    format!("{:.2}", g.baseline),
                    format!("{:.2}", g.current),
                    if g.ok {
                        "ok".into()
                    } else {
                        "REGRESSED".into()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["metric", "baseline", "current", "status"], &body)
        );
        gates.iter().all(|g| g.ok)
    }
}

/// Chrome-trace export of the Figure 13 timeline.
pub mod trace_export {
    use super::*;

    /// Run the Figure 13 configuration and write its task timeline as a
    /// Chrome trace (load in `chrome://tracing` or Perfetto). Returns the
    /// path written.
    pub fn write(path: &str) -> std::io::Result<String> {
        let model = ModelPreset::MoeGpt.config(32);
        let mut opts = EngineOpts::data_centric(false, true);
        opts.include_backward = false;
        let report = super::run(4, model, &opts);
        std::fs::write(path, report.sim.to_chrome_trace())?;
        Ok(path.to_string())
    }
}

/// `repro trace`: train the unified numerical engine with span recording
/// enabled, write one Chrome trace per rank plus the simulator timeline,
/// dump the metrics registry as Prometheus text, and print the
/// compute/communication overlap report.
pub mod trace_run {
    use super::*;
    use janus_core::exec::model::{CommSnapshot, ExecConfig};
    use janus_core::exec::trainer::train_unified;
    use janus_obs::{global, validate_chrome_trace, OverlapReport};
    use std::path::Path;

    /// Everything `repro trace` produced.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Trace files written, paired with their validated event counts.
        pub traces: Vec<(String, usize)>,
        /// Metrics dump path.
        pub metrics_path: String,
        /// Overlap/latency analysis over the numerical run's spans.
        pub overlap: OverlapReport,
        /// Cluster-wide communication counter totals. Cache columns are
        /// machine totals reported by every local worker.
        pub totals: CommSnapshot,
    }

    /// Run in the current directory.
    pub fn run() -> std::io::Result<Report> {
        run_in(".")
    }

    /// Train the mixed-paradigm preset for two iterations with recording
    /// on, writing `trace_rank{N}.json`, `trace_sim.json`, and
    /// `METRICS.txt` under `dir`. Every trace written is re-validated
    /// against the Chrome trace-event schema before this returns.
    pub fn run_in(dir: &str) -> std::io::Result<Report> {
        let rec = global();
        rec.enable();
        let cfg = ExecConfig::mixed_paradigms();
        let run = train_unified(&cfg, 2);
        let metrics_text = rec.prometheus_text();
        rec.disable();

        let mut traces = Vec::new();
        let mut write_trace = |name: String, json: String| -> std::io::Result<()> {
            let events = validate_chrome_trace(&json)
                .map_err(|e| std::io::Error::other(format!("{name}: {e}")))?;
            let path = Path::new(dir).join(&name);
            std::fs::write(&path, json)?;
            traces.push((path.display().to_string(), events));
            Ok(())
        };
        for rank in 0..cfg.world() {
            write_trace(
                format!("trace_rank{rank}.json"),
                janus_obs::chrome_trace(&run.trace_for_rank(rank)),
            )?;
        }

        // The simulator timeline goes through the same exporter: its
        // transfer records become cat="comm" events, so the same overlap
        // analysis applies to simulated runs.
        let model = ModelPreset::MoeGpt.config(32);
        let mut opts = EngineOpts::data_centric(false, true);
        opts.include_backward = false;
        let sim = super::run(2, model, &opts);
        write_trace("trace_sim.json".to_string(), sim.sim.to_chrome_trace())?;

        let metrics_path = Path::new(dir).join("METRICS.txt");
        std::fs::write(&metrics_path, metrics_text)?;

        Ok(Report {
            traces,
            metrics_path: metrics_path.display().to_string(),
            overlap: run.overlap_report(),
            totals: run.comm_totals(),
        })
    }

    /// Print the files written and the overlap report.
    pub fn print(report: &Report) {
        for (path, events) in &report.traces {
            println!("wrote {path} ({events} events, schema-validated)");
        }
        println!("wrote {} (Prometheus text format)\n", report.metrics_path);
        println!("{}", report.overlap.render());
        let t = &report.totals;
        println!(
            "comm totals: {} cache fetches, {} hits, {} misses, {} grad prefolds, \
             {} pull retries, {} retransmits",
            t.cache_fetches,
            t.cache_hits,
            t.cache_misses,
            t.grad_prefolds,
            t.pull_retries,
            t.retransmits
        );
        println!("open traces in https://ui.perfetto.dev or chrome://tracing");
    }
}

/// `repro crash`: supervised training with rank kills and checkpoint
/// recovery. Each scenario crashes one or more ranks (optionally over
/// lossy links), the supervisor restores the mesh from the latest
/// committed checkpoint cut, and the finished run must be bitwise
/// identical to the fault-free one.
pub mod crash {
    use super::*;
    use janus_comm::faulty::{CrashAt, CrashPoint, FaultPlan};
    use janus_comm::reliable::RetransmitPolicy;
    use janus_core::exec::model::ExecConfig;
    use janus_core::exec::supervisor::{train_supervised, SupervisorOpts};
    use janus_core::exec::trainer::{diff_runs, train_unified};
    use janus_core::plan::PlanOpts;
    use janus_obs::global;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    /// One crash scenario's recovery ledger and divergence vs clean.
    #[derive(Debug, Clone, Serialize)]
    pub struct ScenarioRow {
        /// Scenario label.
        pub scenario: String,
        /// Worker deaths observed (injected and collateral).
        pub crashes: u64,
        /// Rounds replayed after a failure.
        pub recoveries: u64,
        /// Checkpoints committed (ranks × cuts).
        pub ckpts_written: u64,
        /// Checkpoints restored from the store.
        pub ckpts_restored: u64,
        /// Iterations re-executed because a round failed.
        pub replayed_iters: u64,
        /// Bytes of committed checkpoints.
        pub ckpt_bytes_written: u64,
        /// Bytes read back while restoring.
        pub ckpt_bytes_restored: u64,
        /// Median recovery time (restore + replay), µs.
        pub recover_p50_us: u64,
        /// Tail recovery time, µs.
        pub recover_p99_us: u64,
        /// Largest |Δ| across loss histories vs the fault-free run.
        pub max_loss_diff: f32,
        /// Largest |Δ| across final expert weights vs the fault-free run.
        pub max_weight_diff: f32,
    }

    /// One rank's recovery bookkeeping, summed over all scenarios.
    #[derive(Debug, Clone, Serialize)]
    pub struct RankRow {
        /// Worker rank.
        pub rank: usize,
        /// Times this rank died.
        pub crashes: u64,
        /// Checkpoints of this rank committed to the store.
        pub ckpts_written: u64,
        /// Times this rank was restored from a committed cut.
        pub ckpts_restored: u64,
    }

    /// The whole crash-recovery run.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Chaos seed (`JANUS_CHAOS_SEED` or the default).
        pub seed: u64,
        /// Training iterations per scenario.
        pub iters: u64,
        /// Hex digest of the `IterationPlan` every scenario executed.
        pub plan_digest: String,
        /// Per-scenario ledgers.
        pub scenarios: Vec<ScenarioRow>,
        /// Per-rank breakdown (summed over scenarios).
        pub ranks: Vec<RankRow>,
        /// `ckpt_save` spans recorded by the observability layer.
        pub ckpt_save_spans: u64,
        /// `ckpt_load` spans recorded by the observability layer.
        pub ckpt_load_spans: u64,
        /// `janus_recoveries_total` as seen by the metrics registry.
        pub recoveries_observed: u64,
    }

    /// Run every crash scenario and diff each against the clean run.
    /// Panics (failing the repro) if any scenario diverges from the
    /// fault-free numerics or a scenario turns out vacuous.
    pub fn run() -> Report {
        let seed = std::env::var("JANUS_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE);
        // Same mixed-paradigm shape as `repro faults`: one data-centric
        // block (cache + pre-reduction under recovery) and one
        // expert-centric block (collectives under recovery).
        let cfg = ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            experts_per_block: vec![4, 8],
            top_k: 2,
            tokens: 64,
            seed: 99,
            lr: 0.01,
        };
        let iters = 4u64;
        let world = cfg.world();
        let sup = SupervisorOpts {
            retransmit: RetransmitPolicy {
                initial_backoff: Duration::from_micros(500),
                max_backoff: Duration::from_millis(8),
                max_attempts: 400,
                flush_quiet: Duration::from_millis(40),
                ..RetransmitPolicy::default()
            },
            ..SupervisorOpts::default()
        };
        let scenarios: Vec<(&str, FaultPlan, SupervisorOpts)> = vec![
            (
                "iteration-crash",
                FaultPlan {
                    seed,
                    crashes: vec![CrashPoint {
                        rank: world - 1,
                        at: CrashAt::Iteration(1),
                    }],
                    ..FaultPlan::default()
                },
                sup,
            ),
            (
                "send-op-crash",
                FaultPlan {
                    seed,
                    crashes: vec![CrashPoint {
                        rank: 1,
                        at: CrashAt::SendOp(5 + seed % 6),
                    }],
                    ..FaultPlan::default()
                },
                sup,
            ),
            (
                "crash-coarse-cut",
                FaultPlan {
                    seed,
                    crashes: vec![CrashPoint {
                        rank: 0,
                        at: CrashAt::Iteration(2),
                    }],
                    ..FaultPlan::default()
                },
                SupervisorOpts {
                    ckpt_every: 2,
                    ..sup
                },
            ),
            (
                "crash-lossy-links",
                FaultPlan {
                    seed,
                    drop: 0.03,
                    delay: 0.2,
                    max_delay_ops: 3,
                    crashes: vec![CrashPoint {
                        rank: 2,
                        at: CrashAt::Iteration(2),
                    }],
                    ..FaultPlan::default()
                },
                sup,
            ),
            (
                "double-crash",
                FaultPlan {
                    seed,
                    crashes: vec![
                        CrashPoint {
                            rank: 0,
                            at: CrashAt::Iteration(1),
                        },
                        CrashPoint {
                            rank: world - 1,
                            at: CrashAt::Iteration(3),
                        },
                    ],
                    ..FaultPlan::default()
                },
                sup,
            ),
        ];

        // Record ckpt spans and recovery metrics for the whole sweep.
        let rec = global();
        rec.enable();
        let clean = train_unified(&cfg, iters);
        let mut rows = Vec::new();
        let mut ranks: Vec<RankRow> = (0..world)
            .map(|rank| RankRow {
                rank,
                crashes: 0,
                ckpts_written: 0,
                ckpts_restored: 0,
            })
            .collect();
        for (name, faults, sup) in scenarios {
            let (_, run, report) =
                train_supervised(&cfg, &PlanOpts::default(), &sup, iters, faults)
                    .unwrap_or_else(|e| panic!("{name}: supervisor failed: {e}"));
            let d = diff_runs(&clean, &run);
            assert_eq!(
                d.max_loss_diff, 0.0,
                "{name}: diverged from clean run: {d:?}"
            );
            assert_eq!(
                d.max_weight_diff, 0.0,
                "{name}: diverged from clean run: {d:?}"
            );
            assert!(report.crashes > 0, "{name}: vacuous — no crash fired");
            assert!(report.recoveries > 0, "{name}: vacuous — nothing recovered");
            for (row, pr) in ranks.iter_mut().zip(&report.per_rank) {
                row.crashes += pr.crashes;
                row.ckpts_written += pr.ckpts_written;
                row.ckpts_restored += pr.ckpts_restored;
            }
            rows.push(ScenarioRow {
                scenario: name.to_string(),
                crashes: report.crashes,
                recoveries: report.recoveries,
                ckpts_written: report.ckpts_written,
                ckpts_restored: report.ckpts_restored,
                replayed_iters: report.replayed_iterations,
                ckpt_bytes_written: report.ckpt_bytes_written,
                ckpt_bytes_restored: report.ckpt_bytes_restored,
                recover_p50_us: report.recover_us_percentile(50.0),
                recover_p99_us: report.recover_us_percentile(99.0),
                max_loss_diff: d.max_loss_diff,
                max_weight_diff: d.max_weight_diff,
            });
        }
        let ckpt_save_spans = rec.histogram("janus_ckpt_save_us").count();
        let ckpt_load_spans = rec.histogram("janus_ckpt_load_us").count();
        let recoveries_observed = rec
            .counter("janus_recoveries_total")
            .load(Ordering::Relaxed);
        rec.disable();
        assert!(ckpt_save_spans > 0, "vacuous: no ckpt_save spans recorded");
        assert!(ckpt_load_spans > 0, "vacuous: no ckpt_load spans recorded");
        assert!(
            ranks.iter().map(|r| r.ckpts_restored).sum::<u64>() > 0,
            "vacuous: no rank was ever restored from a checkpoint"
        );
        Report {
            seed,
            iters,
            plan_digest: format!("{:016x}", cfg.compile_plan(&PlanOpts::default()).digest()),
            scenarios: rows,
            ranks,
            ckpt_save_spans,
            ckpt_load_spans,
            recoveries_observed,
        }
    }

    /// Print the per-scenario and per-rank recovery tables.
    pub fn print(report: &Report) {
        println!(
            "Crash recovery — supervised training with rank kills \
             (seed {:#x}, {} iters per scenario): every scenario is \
             bitwise identical to the fault-free run\n",
            report.seed, report.iters
        );
        let body: Vec<Vec<String>> = report
            .scenarios
            .iter()
            .map(|s| {
                vec![
                    s.scenario.clone(),
                    s.crashes.to_string(),
                    s.recoveries.to_string(),
                    s.ckpts_written.to_string(),
                    s.ckpts_restored.to_string(),
                    s.replayed_iters.to_string(),
                    s.ckpt_bytes_written.to_string(),
                    s.ckpt_bytes_restored.to_string(),
                    s.recover_p50_us.to_string(),
                    s.recover_p99_us.to_string(),
                    format!("{:e}", s.max_loss_diff),
                    format!("{:e}", s.max_weight_diff),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "scenario",
                    "crashes",
                    "recoveries",
                    "ckpts-written",
                    "ckpts-restored",
                    "replayed-iters",
                    "bytes-written",
                    "bytes-restored",
                    "recover-p50-us",
                    "recover-p99-us",
                    "loss |Δ|",
                    "weight |Δ|",
                ],
                &body
            )
        );
        println!("per-rank totals over all scenarios:");
        let rank_body: Vec<Vec<String>> = report
            .ranks
            .iter()
            .map(|r| {
                vec![
                    r.rank.to_string(),
                    r.crashes.to_string(),
                    r.ckpts_written.to_string(),
                    r.ckpts_restored.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &["rank", "crashes", "ckpts-written", "ckpts-restored"],
                &rank_body
            )
        );
        println!(
            "observability: {} ckpt_save spans, {} ckpt_load spans, \
             {} recoveries on the metrics registry",
            report.ckpt_save_spans, report.ckpt_load_spans, report.recoveries_observed
        );
    }
}

/// Fault injection: the unified engine over a lossy mesh, with the
/// reliability layer recovering every drop, delay, duplicate, and
/// partition — numerics bitwise equal to the fault-free run.
pub mod faults {
    use super::*;
    use janus_comm::faulty::{FaultPlan, FaultyTransport, Partition};
    use janus_comm::local::local_mesh;
    use janus_comm::reliable::{ReliableTransport, RetransmitPolicy};
    use janus_core::exec::model::{CommSnapshot, ExecConfig};
    use janus_core::exec::trainer::{diff_runs, train_unified, train_unified_on};
    use std::time::Duration;

    /// One rank's reliability counters after the chaos run.
    #[derive(Debug, Clone, Serialize)]
    pub struct Row {
        /// Worker rank.
        pub rank: usize,
        /// Fault-injection and recovery counters for this rank.
        pub counters: CommSnapshot,
    }

    /// The whole chaos run: divergence vs clean plus per-rank counters.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Chaos seed (`JANUS_CHAOS_SEED` or the default).
        pub seed: u64,
        /// Training iterations run.
        pub iters: u64,
        /// Hex digest of the `IterationPlan` both runs executed.
        pub plan_digest: String,
        /// Largest |Δ| across loss histories vs the fault-free run.
        pub max_loss_diff: f32,
        /// Largest |Δ| across final expert weights vs the fault-free run.
        pub max_weight_diff: f32,
        /// Per-rank counters.
        pub rows: Vec<Row>,
        /// Sum over all ranks (cache columns are machine totals reported
        /// by every local worker, so they sum once per local worker).
        pub totals: CommSnapshot,
    }

    /// Train clean and under a combined fault plan, then diff the runs.
    pub fn run() -> Report {
        let seed = std::env::var("JANUS_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE);
        // Uneven expert counts so the compiled plan mixes paradigms: the
        // data-centric block exercises the cache / pre-reduction path
        // (its hit/miss/prefold columns below stay non-zero), while the
        // expert-centric block keeps collectives under fault injection.
        let cfg = ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            experts_per_block: vec![4, 8],
            top_k: 2,
            tokens: 64,
            seed: 99,
            lr: 0.01,
        };
        let iters = 3u64;
        let clean = train_unified(&cfg, iters);
        let plan = FaultPlan {
            seed,
            drop: 0.04,
            duplicate: 0.15,
            delay: 0.2,
            max_delay_ops: 3,
            reorder: 0.25,
            partitions: vec![Partition {
                a: 0,
                b: cfg.world() - 1,
                from_op: 2,
                to_op: 10,
            }],
            ..FaultPlan::default()
        };
        let policy = RetransmitPolicy {
            initial_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(8),
            max_attempts: 400,
            flush_quiet: Duration::from_millis(40),
            ..RetransmitPolicy::default()
        };
        let endpoints: Vec<_> = local_mesh(cfg.world())
            .into_iter()
            .map(|t| ReliableTransport::with_policy(FaultyTransport::new(t, plan.clone()), policy))
            .collect();
        let chaotic = train_unified_on(endpoints, &cfg, iters);
        let d = diff_runs(&clean, &chaotic);
        Report {
            seed,
            iters,
            plan_digest: format!(
                "{:016x}",
                cfg.compile_plan(&janus_core::plan::PlanOpts::default())
                    .digest()
            ),
            max_loss_diff: d.max_loss_diff,
            max_weight_diff: d.max_weight_diff,
            totals: chaotic.comm_totals(),
            rows: chaotic
                .comm
                .iter()
                .enumerate()
                .map(|(rank, c)| Row { rank, counters: *c })
                .collect(),
        }
    }

    /// Print the per-rank counter table.
    pub fn print(report: &Report) {
        println!(
            "Fault injection — unified training over a lossy mesh \
             (seed {:#x}, {} iters): max loss |Δ| = {:e}, max weight |Δ| = {:e} \
             vs the fault-free run\n",
            report.seed, report.iters, report.max_loss_diff, report.max_weight_diff
        );
        let line = |label: String, c: &CommSnapshot| {
            vec![
                label,
                c.faults_dropped.to_string(),
                c.faults_delayed.to_string(),
                c.faults_duplicated.to_string(),
                c.retransmits.to_string(),
                c.duplicates_dropped.to_string(),
                c.out_of_order_held.to_string(),
                c.acks_sent.to_string(),
                c.pull_retries.to_string(),
                c.pull_timeouts.to_string(),
                c.cache_hits.to_string(),
                c.cache_misses.to_string(),
                c.grad_prefolds.to_string(),
                c.migrations.to_string(),
                c.migration_bytes.to_string(),
                c.epoch_bumps.to_string(),
                c.degraded.to_string(),
            ]
        };
        let mut body: Vec<Vec<String>> = report
            .rows
            .iter()
            .map(|r| line(r.rank.to_string(), &r.counters))
            .collect();
        body.push(line("total".to_string(), &report.totals));
        println!(
            "{}",
            table::render(
                &[
                    "rank",
                    "dropped",
                    "delayed",
                    "duplicated",
                    "retransmits",
                    "dup-dropped",
                    "ooo-held",
                    "acks",
                    "pull-retries",
                    "pull-timeouts",
                    "cache-hits",
                    "cache-misses",
                    "prefolds",
                    "migrations",
                    "mig-bytes",
                    "epochs",
                    "degraded"
                ],
                &body
            )
        );
        println!(
            "\n(migration columns stay zero here: transient faults are retried \
             in place — only the elastic driver's permanent-death and skew \
             verdicts re-place experts; see `repro migrate`)"
        );
    }
}

/// Elastic expert migration: a skewed workload priced in the simulator
/// and trained for real (threads and localhost TCP), before and after a
/// skew-triggered re-placement, plus graceful degradation after a
/// permanent rank death.
pub mod migrate {
    use super::*;
    use janus_comm::tcp::tcp_mesh_localhost;
    use janus_comm::{FaultPlan, Transport};
    use janus_core::exec::data_centric::MachineShared;
    use janus_core::exec::elastic::{
        apply_gate_skew, expert_loads, placement_moves, resume_from_cut, skew_ratio, train_elastic,
        ElasticOpts, ElasticOutcome, GateSkew, PermanentDeath,
    };
    use janus_core::exec::model::{ExecConfig, WorkerState};
    use janus_core::exec::unified;
    use janus_core::exec::weights::expert_to_bytes;
    use janus_core::paradigm::Paradigm;
    use janus_core::placement::Placement;
    use janus_core::plan::PlanOpts;
    use janus_netsim::{price_migration, MigrationFlow, MigrationNet};
    use std::time::Instant;

    /// JSON keys holding wall-clock measurements: masked in the lab
    /// manifest so the rest of the report verifies bitwise.
    pub const MASKED_KEYS: &[&str] = &["timing"];

    /// Iterations trained by every run in this experiment.
    pub const ITERS: u64 = 6;

    /// Fluid-model price of one iteration's cross-machine expert
    /// traffic, at per-worker NIC granularity (one uplink/downlink per
    /// GPU; intra-machine copies ride NVLink/PCIe and are free).
    #[derive(Debug, Clone, Serialize)]
    pub struct SimIterCost {
        /// Total bytes crossing a machine boundary per iteration. In a
        /// symmetric cluster this barely moves with placement — the
        /// tokens just cross in the other direction.
        pub cross_machine_bytes: u64,
        /// Bytes landing on the busiest worker's NIC — the straggler
        /// metric that bounds iteration time, and what a swap unloads.
        pub peak_downlink_bytes: u64,
        /// Straggler-bound iteration time: the slowest worker's expert
        /// compute plus its NIC transfers.
        pub makespan_s: f64,
    }

    /// The simulator half: skew detection, the priced swap, and the
    /// before/after iteration traffic.
    #[derive(Debug, Clone, Serialize)]
    pub struct SimSection {
        /// Max/mean live-rank probe load under the balanced placement.
        pub skew_ratio_before: f64,
        /// Same ratio under the rebalanced placement.
        pub skew_ratio_after: f64,
        /// Experts the rebalance moved.
        pub moves: usize,
        /// One-time migration traffic that crosses the network.
        pub migration_cross_bytes: u64,
        /// Fluid-model time to ship the migrating experts.
        pub migration_makespan_s: f64,
        /// Per-iteration traffic before the swap.
        pub iter_before: SimIterCost,
        /// Per-iteration traffic after the swap.
        pub iter_after: SimIterCost,
        /// Iterations until the per-iteration makespan saving has paid
        /// for the migration (`inf` when the saving is zero).
        pub payback_iterations: f64,
        /// One-time traffic to re-apportion a dead rank's experts.
        pub drain_cross_bytes: u64,
        /// Fluid-model time of the drain.
        pub drain_makespan_s: f64,
    }

    /// One committed placement epoch, digests in hex.
    #[derive(Debug, Clone, Serialize)]
    pub struct EpochRow {
        /// Epoch number installed.
        pub epoch: u64,
        /// Iteration boundary it was installed at.
        pub at_iter: u64,
        /// Why the placement changed.
        pub reason: String,
        /// Experts that changed owner.
        pub moves: usize,
        /// Placement table digest.
        pub placement_digest: String,
        /// Digest of the plan carrying this placement.
        pub plan_digest: String,
    }

    /// One elastic (threaded) training run's ledger.
    #[derive(Debug, Clone, Serialize)]
    pub struct ElasticSection {
        /// Placement epochs committed, in order.
        pub epochs: Vec<EpochRow>,
        /// Ranks declared permanently dead.
        pub dead_ranks: Vec<usize>,
        /// Whether the run finished without its full world.
        pub degraded: bool,
        /// Expert blobs that changed owner.
        pub migrations: u64,
        /// Bytes of expert state shipped live.
        pub migration_bytes: u64,
        /// Migration exchanges torn down and retried.
        pub aborted_migrations: u64,
        /// True when a fresh run restarted from the post-migration cut
        /// continues bitwise identically to the elastic run.
        pub resume_bitwise: bool,
        /// Placement the run finished under.
        pub final_placement_digest: String,
    }

    /// The real-TCP half: the same skewed workload trained under the
    /// balanced and the migrated placement on a localhost mesh.
    #[derive(Debug, Clone, Serialize)]
    pub struct TcpSection {
        /// Largest |Δ| between the two placements' loss histories.
        /// Ownership regroups gradient folds, so the runs agree to
        /// floating-point reassociation (~1e-6), not bitwise — the
        /// bitwise guarantee belongs to same-placement resumes
        /// (`resume_bitwise` above).
        pub max_loss_diff: f32,
        /// Whether `max_loss_diff` is within the reassociation bound.
        pub losses_equivalent: bool,
        /// Cluster-wide cross-machine bytes, balanced placement.
        pub remote_bytes_balanced: u64,
        /// Cluster-wide cross-machine bytes, migrated placement.
        pub remote_bytes_migrated: u64,
        /// Busiest sender's cross-machine bytes, balanced placement.
        pub max_rank_remote_bytes_balanced: u64,
        /// Busiest sender's cross-machine bytes, migrated placement.
        pub max_rank_remote_bytes_migrated: u64,
        /// Per-rank cross-machine bytes, balanced placement.
        pub per_rank_remote_bytes_balanced: Vec<u64>,
        /// Per-rank cross-machine bytes, migrated placement.
        pub per_rank_remote_bytes_migrated: Vec<u64>,
    }

    /// Wall-clock measurements — printed, never digested (masked).
    #[derive(Debug, Clone, Serialize)]
    pub struct Timing {
        /// Mean wall microseconds per iteration, balanced placement.
        pub tcp_wall_us_per_iter_balanced: f64,
        /// Mean wall microseconds per iteration, migrated placement.
        pub tcp_wall_us_per_iter_migrated: f64,
        /// Whether the migrated placement's run was faster.
        pub tcp_wall_improved: bool,
    }

    /// Everything `repro migrate` measures.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Model/cluster seed.
        pub seed: u64,
        /// Iterations per run.
        pub iters: u64,
        /// Digest of the placement-free base plan.
        pub plan_digest: String,
        /// Block whose gate is biased hot.
        pub skewed_block: usize,
        /// Expert the bias overloads.
        pub skewed_expert: usize,
        /// Simulator pricing.
        pub sim: SimSection,
        /// Live skew migration under the elastic driver.
        pub elastic: ElasticSection,
        /// Graceful degradation after a permanent death.
        pub degraded: ElasticSection,
        /// Balanced-vs-migrated runs on a real TCP mesh.
        pub tcp: TcpSection,
        /// Wall-clock (masked).
        pub timing: Timing,
    }

    /// The skewed workload: uneven expert counts mix paradigms (block 0
    /// data-centric, block 1 expert-centric) and the biased expert sits
    /// in the expert-centric block, initially on rank 0.
    fn config() -> (ExecConfig, GateSkew) {
        let cfg = ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            experts_per_block: vec![4, 16],
            top_k: 2,
            tokens: 64,
            seed: 2026,
            lr: 0.01,
        };
        let skew = GateSkew {
            block: 1,
            expert: 0,
            boost: 6.0,
        };
        (cfg, skew)
    }

    fn hex(d: u64) -> String {
        format!("{d:016x}")
    }

    /// Per-rank routing histograms: `loads[rank][block][expert]` tokens,
    /// from the same deterministic probe the elastic driver uses.
    fn per_rank_loads(cfg: &ExecConfig, skew: &GateSkew) -> Vec<Vec<Vec<f64>>> {
        (0..cfg.world())
            .map(|rank| {
                let mut state = WorkerState::init(cfg, rank);
                apply_gate_skew(&mut state, skew);
                (0..cfg.blocks)
                    .map(|b| {
                        state.gates[b]
                            .route(&state.inputs)
                            .histogram()
                            .into_iter()
                            .map(|h| h as f64)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Serialized size of one expert's state in block `b`.
    fn expert_blob_bytes(cfg: &ExecConfig, b: usize) -> u64 {
        expert_to_bytes(&WorkerState::reference_expert(cfg, b, 0)).len() as u64
    }

    /// One iteration's cross-machine flows under `p`, between worker
    /// NICs (`MigrationFlow`'s machine indices carry *ranks* here — one
    /// NIC per GPU): expert-centric blocks ship token batches to the
    /// owner and activations back; data-centric blocks pull the expert
    /// once per needing machine (through its designated local worker)
    /// and push a same-sized gradient home. Same-machine traffic rides
    /// NVLink/PCIe and is omitted — the fluid model prices it as free.
    #[allow(clippy::needless_range_loop)]
    fn iteration_flows(
        cfg: &ExecConfig,
        plan: &janus_core::plan::IterationPlan,
        p: &Placement,
        loads: &[Vec<Vec<f64>>],
    ) -> Vec<MigrationFlow> {
        let mut flows = Vec::new();
        let token_bytes = (12 + 4 * cfg.hidden_dim) as f64;
        for b in 0..cfg.blocks {
            match plan.blocks[b].paradigm {
                Paradigm::ExpertCentric => {
                    for rank in 0..cfg.world() {
                        for (e, &tokens) in loads[rank][b].iter().enumerate() {
                            let owner = p.owner_of(b, e);
                            let cross = cfg.machine_of(rank) != cfg.machine_of(owner);
                            if cross && tokens > 0.0 {
                                let bytes = (tokens * token_bytes) as u64;
                                for (s, d) in [(rank, owner), (owner, rank)] {
                                    flows.push(MigrationFlow {
                                        src_machine: s,
                                        dst_machine: d,
                                        bytes,
                                    });
                                }
                            }
                        }
                    }
                }
                Paradigm::DataCentric => {
                    let blob = expert_blob_bytes(cfg, b);
                    for m in 0..cfg.machines {
                        for e in 0..cfg.experts_in(b) {
                            let owner = p.owner_of(b, e);
                            let needed = (0..cfg.world())
                                .any(|r| cfg.machine_of(r) == m && loads[r][b][e] > 0.0);
                            if cfg.machine_of(owner) != m && needed {
                                let local = p.designated_local(m, e, cfg.gpus_per_machine);
                                for (s, d) in [(owner, local), (local, owner)] {
                                    flows.push(MigrationFlow {
                                        src_machine: s,
                                        dst_machine: d,
                                        bytes: blob,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        flows
    }

    /// Effective per-worker expert throughput (token-slots/second) and
    /// NIC rate (bytes/second). Toy-scale rates picked so compute and
    /// transfer are comparable at `hidden_dim = 8`, as they are at real
    /// scale — the *ratios* are what the experiment pins.
    const SLOTS_PER_S: f64 = 2e7;
    const NIC_BPS: f64 = 1e9;

    /// Price one iteration: the straggler bound `max over workers of
    /// (owned-expert compute + NIC in + NIC out)`, plus the traffic
    /// totals. `flows` is rank-indexed and cross-machine only.
    fn price_iteration(
        cfg: &ExecConfig,
        p: &Placement,
        loads: &[Vec<Vec<f64>>],
        flows: &[MigrationFlow],
    ) -> SimIterCost {
        let world = cfg.world();
        let mut bytes_in = vec![0u64; world];
        let mut bytes_out = vec![0u64; world];
        for f in flows {
            bytes_out[f.src_machine] += f.bytes;
            bytes_in[f.dst_machine] += f.bytes;
        }
        let makespan_s = (0..world)
            .filter(|&r| p.is_live(r))
            .map(|r| {
                let slots: f64 = (0..cfg.blocks)
                    .map(|b| {
                        p.owned_in(b, r)
                            .iter()
                            .map(|&e| loads.iter().map(|rank| rank[b][e]).sum::<f64>())
                            .sum::<f64>()
                    })
                    .sum();
                slots / SLOTS_PER_S + (bytes_in[r] + bytes_out[r]) as f64 / NIC_BPS
            })
            .fold(0.0, f64::max);
        SimIterCost {
            cross_machine_bytes: flows.iter().map(|f| f.bytes).sum(),
            peak_downlink_bytes: bytes_in.into_iter().max().unwrap_or(0),
            makespan_s,
        }
    }

    /// One NIC per worker for pricing the bulk migration itself.
    fn nic_net(cfg: &ExecConfig) -> MigrationNet {
        MigrationNet::symmetric(cfg.world(), NIC_BPS)
    }

    /// The one-time flows of a placement change: each moved expert's
    /// blob travels from its old owner's NIC to its new owner's.
    /// Same-machine moves are omitted (free under the fluid model).
    fn move_flows(cfg: &ExecConfig, prev: &Placement, next: &Placement) -> Vec<MigrationFlow> {
        placement_moves(prev, next)
            .into_iter()
            .filter(|mv| cfg.machine_of(mv.from) != cfg.machine_of(mv.to))
            .map(|mv| MigrationFlow {
                src_machine: mv.from,
                dst_machine: mv.to,
                bytes: expert_blob_bytes(cfg, mv.block),
            })
            .collect()
    }

    /// Check that a fresh run restarted from the last post-migration cut
    /// continues bitwise identically to the elastic run past the cut.
    fn resume_matches(
        cfg: &ExecConfig,
        opts: &PlanOpts,
        skew: Option<&GateSkew>,
        out: &ElasticOutcome,
    ) -> bool {
        let Some(cut) = out.cuts.last() else {
            return false;
        };
        let reference = resume_from_cut(cfg, opts, skew, cut, ITERS);
        (0..cfg.world()).all(|rank| {
            if !cut.placement.is_live(rank) {
                return true;
            }
            let tail = &out.run.losses[rank][cut.at_iter as usize..];
            tail == reference.losses[rank].as_slice()
                && out.run.outputs[rank].data() == reference.outputs[rank].data()
        })
    }

    fn epoch_rows(out: &ElasticOutcome) -> Vec<EpochRow> {
        out.report
            .epochs
            .iter()
            .map(|e| EpochRow {
                epoch: e.epoch,
                at_iter: e.at_iter,
                reason: e.reason.clone(),
                moves: e.moves,
                placement_digest: hex(e.placement_digest),
                plan_digest: hex(e.plan_digest),
            })
            .collect()
    }

    fn elastic_section(cfg: &ExecConfig, opts: &PlanOpts, el: &ElasticOpts) -> ElasticSection {
        let out = train_elastic(cfg, opts, el, ITERS, FaultPlan::default())
            .expect("elastic run completes");
        ElasticSection {
            epochs: epoch_rows(&out),
            dead_ranks: out.report.dead_ranks.clone(),
            degraded: out.report.degraded,
            migrations: out.report.migrations,
            migration_bytes: out.report.migration_bytes,
            aborted_migrations: out.report.aborted_migrations,
            resume_bitwise: resume_matches(cfg, opts, el.skew.as_ref(), &out),
            final_placement_digest: hex(out.report.final_placement_digest),
        }
    }

    /// One pinned training run: fixed placement, skewed gates, no
    /// elasticity — the controlled A/B measurement.
    struct PinnedRun {
        losses: Vec<Vec<f32>>,
        remote_bytes: Vec<u64>,
        wall_us_per_iter: f64,
    }

    fn pinned_run<T: Transport + 'static>(
        endpoints: Vec<T>,
        cfg: &ExecConfig,
        opts: &PlanOpts,
        placement: &Placement,
        skew: &GateSkew,
    ) -> PinnedRun {
        let plan = cfg.compile_plan(opts);
        let shared = MachineShared::for_cluster_placed(cfg, placement);
        let t0 = Instant::now();
        let results = janus_comm::runtime::run_on(endpoints, |comm| {
            let rank = comm.rank();
            let mut state = WorkerState::init_placed(cfg, rank, placement.clone());
            apply_gate_skew(&mut state, skew);
            let sh = &shared[cfg.machine_of(rank)];
            let mut losses = Vec::new();
            for i in 0..ITERS {
                let out = unified::run_iteration(&comm, &mut state, sh, &plan, i)
                    .unwrap_or_else(|e| panic!("rank {rank} at iteration {i}: {e}"));
                losses.push(out.loss);
            }
            (losses, state.comm.snapshot().remote_bytes)
        });
        let wall_us_per_iter = t0.elapsed().as_micros() as f64 / ITERS as f64;
        PinnedRun {
            losses: results.iter().map(|(l, _)| l.clone()).collect(),
            remote_bytes: results.iter().map(|(_, b)| *b).collect(),
            wall_us_per_iter,
        }
    }

    /// Run the whole experiment.
    pub fn run() -> Report {
        let (cfg, skew) = config();
        let opts = PlanOpts::default();
        let plan = cfg.compile_plan(&opts);
        let world = cfg.world();

        // --- Simulator half: detect the skew, price the swap. ---
        let loads = expert_loads(&cfg, Some(&skew));
        let per_rank = per_rank_loads(&cfg, &skew);
        let balanced = WorkerState::balanced_placement(&cfg);
        let ratio_before = skew_ratio(&balanced, &loads);
        let (migrated, moves) = balanced.rebalance(&loads, 6);
        let ratio_after = skew_ratio(&migrated, &loads);
        assert!(
            ratio_after < ratio_before,
            "rebalance must reduce the skew ratio ({ratio_before} -> {ratio_after})"
        );

        let net = nic_net(&cfg);
        let mig_est = price_migration(&net, &move_flows(&cfg, &balanced, &migrated));
        let iter_before = price_iteration(
            &cfg,
            &balanced,
            &per_rank,
            &iteration_flows(&cfg, &plan, &balanced, &per_rank),
        );
        let iter_after = price_iteration(
            &cfg,
            &migrated,
            &per_rank,
            &iteration_flows(&cfg, &plan, &migrated, &per_rank),
        );
        assert!(
            iter_after.makespan_s < iter_before.makespan_s,
            "migration must shorten the simulated iteration \
             ({} -> {})",
            iter_before.makespan_s,
            iter_after.makespan_s
        );
        assert!(
            iter_after.peak_downlink_bytes < iter_before.peak_downlink_bytes,
            "migration must unload the hottest downlink ({} -> {})",
            iter_before.peak_downlink_bytes,
            iter_after.peak_downlink_bytes
        );
        let saving = iter_before.makespan_s - iter_after.makespan_s;
        let payback_iterations = if saving > 0.0 {
            mig_est.makespan_s / saving
        } else {
            f64::INFINITY
        };
        let dead_rank = world - 1;
        let drain_est = price_migration(
            &net,
            &move_flows(&cfg, &balanced, &balanced.drain(dead_rank)),
        );

        // --- Elastic half: the driver performs the swap live. ---
        let elastic = elastic_section(
            &cfg,
            &opts,
            &ElasticOpts {
                ckpt_every: 2,
                skew_ratio: 1.2,
                max_moves: 6,
                skew: Some(skew),
                ..ElasticOpts::default()
            },
        );
        assert!(
            elastic.epochs.iter().any(|e| e.reason.contains("skew")),
            "the elastic run must commit a skew rebalance"
        );
        assert!(
            elastic.resume_bitwise,
            "skew migration must be bitwise-resumable"
        );

        // --- Degradation half: permanent death mid-run. ---
        let degraded = elastic_section(
            &cfg,
            &opts,
            &ElasticOpts {
                ckpt_every: 2,
                deaths: vec![PermanentDeath {
                    rank: dead_rank,
                    at_iter: 3,
                    during_migration: false,
                }],
                ..ElasticOpts::default()
            },
        );
        assert!(degraded.degraded && degraded.dead_ranks == vec![dead_rank]);
        assert!(degraded.resume_bitwise, "drain must be bitwise-resumable");

        // --- Real TCP half: balanced vs migrated, same workload. ---
        let tcp_balanced = pinned_run(
            tcp_mesh_localhost(world).expect("localhost mesh"),
            &cfg,
            &opts,
            &balanced,
            &skew,
        );
        let tcp_migrated = pinned_run(
            tcp_mesh_localhost(world).expect("localhost mesh"),
            &cfg,
            &opts,
            &migrated,
            &skew,
        );
        let max_loss_diff = tcp_balanced
            .losses
            .iter()
            .zip(&tcp_migrated.losses)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .fold(0f32, f32::max);
        let losses_equivalent = max_loss_diff < 1e-4;
        assert!(
            losses_equivalent,
            "placement must change communication, not training \
             (max loss |Δ| = {max_loss_diff:e})"
        );
        let max_rank = |bytes: &[u64]| bytes.iter().copied().max().unwrap_or(0);
        assert!(
            max_rank(&tcp_migrated.remote_bytes) < max_rank(&tcp_balanced.remote_bytes),
            "migration must unload the busiest worker's measured cross-machine \
             traffic ({} -> {})",
            max_rank(&tcp_balanced.remote_bytes),
            max_rank(&tcp_migrated.remote_bytes)
        );

        Report {
            seed: cfg.seed,
            iters: ITERS,
            plan_digest: hex(plan.digest()),
            skewed_block: skew.block,
            skewed_expert: skew.expert,
            sim: SimSection {
                skew_ratio_before: ratio_before,
                skew_ratio_after: ratio_after,
                moves: moves.len(),
                migration_cross_bytes: mig_est.cross_machine_bytes,
                migration_makespan_s: mig_est.makespan_s,
                iter_before,
                iter_after,
                payback_iterations,
                drain_cross_bytes: drain_est.cross_machine_bytes,
                drain_makespan_s: drain_est.makespan_s,
            },
            elastic,
            degraded,
            tcp: TcpSection {
                max_loss_diff,
                losses_equivalent,
                remote_bytes_balanced: tcp_balanced.remote_bytes.iter().sum(),
                remote_bytes_migrated: tcp_migrated.remote_bytes.iter().sum(),
                max_rank_remote_bytes_balanced: tcp_balanced
                    .remote_bytes
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0),
                max_rank_remote_bytes_migrated: tcp_migrated
                    .remote_bytes
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0),
                per_rank_remote_bytes_balanced: tcp_balanced.remote_bytes,
                per_rank_remote_bytes_migrated: tcp_migrated.remote_bytes,
            },
            timing: Timing {
                tcp_wall_improved: tcp_migrated.wall_us_per_iter < tcp_balanced.wall_us_per_iter,
                tcp_wall_us_per_iter_balanced: tcp_balanced.wall_us_per_iter,
                tcp_wall_us_per_iter_migrated: tcp_migrated.wall_us_per_iter,
            },
        }
    }

    /// Print the before/after table and the migration ledgers.
    pub fn print(report: &Report) {
        println!(
            "Elastic migration — expert {} of block {} biased hot \
             (probe skew ratio {:.2}); rebalance moves {} experts, \
             paying for itself in {:.1} simulated iterations\n",
            report.skewed_expert,
            report.skewed_block,
            report.sim.skew_ratio_before,
            report.sim.moves,
            report.sim.payback_iterations
        );
        let body = vec![
            vec![
                "probe skew ratio (max/mean)".to_string(),
                format!("{:.3}", report.sim.skew_ratio_before),
                format!("{:.3}", report.sim.skew_ratio_after),
            ],
            vec![
                "sim iter makespan (ms)".to_string(),
                format!("{:.3}", report.sim.iter_before.makespan_s * 1e3),
                format!("{:.3}", report.sim.iter_after.makespan_s * 1e3),
            ],
            vec![
                "sim peak downlink (KB/iter)".to_string(),
                format!(
                    "{:.1}",
                    report.sim.iter_before.peak_downlink_bytes as f64 / 1e3
                ),
                format!(
                    "{:.1}",
                    report.sim.iter_after.peak_downlink_bytes as f64 / 1e3
                ),
            ],
            vec![
                "sim cross-machine (KB/iter)".to_string(),
                format!(
                    "{:.1}",
                    report.sim.iter_before.cross_machine_bytes as f64 / 1e3
                ),
                format!(
                    "{:.1}",
                    report.sim.iter_after.cross_machine_bytes as f64 / 1e3
                ),
            ],
            vec![
                "tcp cross-machine (KB, whole run)".to_string(),
                format!("{:.1}", report.tcp.remote_bytes_balanced as f64 / 1e3),
                format!("{:.1}", report.tcp.remote_bytes_migrated as f64 / 1e3),
            ],
            vec![
                "tcp max-rank cross (KB)".to_string(),
                format!(
                    "{:.1}",
                    report.tcp.max_rank_remote_bytes_balanced as f64 / 1e3
                ),
                format!(
                    "{:.1}",
                    report.tcp.max_rank_remote_bytes_migrated as f64 / 1e3
                ),
            ],
            vec![
                "tcp wall (µs/iter)".to_string(),
                format!("{:.0}", report.timing.tcp_wall_us_per_iter_balanced),
                format!("{:.0}", report.timing.tcp_wall_us_per_iter_migrated),
            ],
        ];
        println!(
            "{}",
            table::render(&["metric", "balanced", "migrated"], &body)
        );
        println!(
            "\nlive swap: {} expert blobs ({} B) shipped over the reliable \
             transport; max loss |Δ| across placements = {:e} \
             (reassociation only)",
            report.elastic.migrations, report.elastic.migration_bytes, report.tcp.max_loss_diff
        );
        for e in &report.elastic.epochs {
            println!(
                "  epoch {} @ iter {}: {} ({} moves, placement {})",
                e.epoch, e.at_iter, e.reason, e.moves, e.placement_digest
            );
        }
        println!(
            "degraded: rank {} lost permanently -> {} epochs, finished {} \
             (resume bitwise: {})",
            report
                .degraded
                .dead_ranks
                .first()
                .copied()
                .unwrap_or(usize::MAX),
            report.degraded.epochs.len(),
            if report.degraded.degraded {
                "without it"
            } else {
                "intact"
            },
            report.degraded.resume_bitwise
        );
        for e in &report.degraded.epochs {
            println!(
                "  epoch {} @ iter {}: {} ({} moves, placement {})",
                e.epoch, e.at_iter, e.reason, e.moves, e.placement_digest
            );
        }
    }
}

/// The serving-plane SLO sweep: p50/p99 versus replica budget, simulated
/// and real (localhost TCP), under a Zipf-skewed gate.
pub mod serve {
    use super::*;
    use janus_obs::global;
    pub use janus_serve::report::SloReport;

    /// Request-latency percentile bounds read back from the `janus-obs`
    /// recorder histogram (`serve/latency_us`) the serving engine feeds,
    /// aggregated over the whole real TCP sweep. Power-of-two bucket
    /// upper bounds — wall clock, so printed but never digested.
    #[derive(Debug, Clone, Serialize)]
    pub struct LatencyHistogram {
        /// Requests observed by the recorder.
        pub samples: u64,
        /// Median latency upper bound, µs.
        pub p50_le_us: u64,
        /// p90 latency upper bound, µs.
        pub p90_le_us: u64,
        /// Tail latency upper bound, µs.
        pub p99_le_us: u64,
    }

    /// The SLO artifact plus the recorder-side latency histogram.
    pub struct Report {
        pub slo: SloReport,
        pub latency: LatencyHistogram,
    }

    /// Build the full SLO report (simulated sweep + real TCP sweep) with
    /// the global recorder enabled, so the engine's per-request latency
    /// histogram is captured and surfaced alongside the sweep tables.
    pub fn run() -> Report {
        let rec = global();
        rec.enable();
        let slo = janus_serve::report::build();
        rec.disable();
        let h = rec.histogram("serve/latency_us");
        let latency = LatencyHistogram {
            samples: h.count(),
            p50_le_us: h.quantile_le(0.50),
            p90_le_us: h.quantile_le(0.90),
            p99_le_us: h.quantile_le(0.99),
        };
        Report { slo, latency }
    }

    pub fn print(report: &Report) {
        let slo = &report.slo;
        println!(
            "Serving SLO — continuous batching over disaggregated expert \
             workers (zipf {}, {} requests × {} tokens, top-{} of {} \
             experts, gate histogram {:?}):\n",
            slo.zipf, slo.requests, slo.tokens_per_request, slo.top_k, slo.experts, slo.hist
        );
        let sim_body: Vec<Vec<String>> = slo
            .sim
            .iter()
            .map(|r| {
                vec![
                    r.budget.to_string(),
                    format!("{:?}", r.counts),
                    r.hot_replicas.to_string(),
                    format!("{:.3}", r.p50_ms),
                    format!("{:.3}", r.p99_ms),
                    format!("{:.3}", r.mean_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(
                &[
                    "budget",
                    "replicas",
                    "hot",
                    "sim p50 ms",
                    "sim p99 ms",
                    "sim mean ms"
                ],
                &sim_body
            )
        );
        if !slo.real.is_empty() {
            let real_body: Vec<Vec<String>> = slo
                .real
                .iter()
                .map(|r| {
                    vec![
                        r.budget.to_string(),
                        format!("{:?}", r.counts),
                        r.completed.to_string(),
                        r.redispatches.to_string(),
                        r.p50_us.to_string(),
                        r.p99_us.to_string(),
                        r.mean_us.to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                table::render(
                    &[
                        "budget",
                        "replicas",
                        "completed",
                        "redispatch",
                        "tcp p50 µs",
                        "tcp p99 µs",
                        "tcp mean µs"
                    ],
                    &real_body
                )
            );
        }
        let lat = &report.latency;
        println!(
            "recorder latency histogram (serve/latency_us, {} samples): \
             p50 ≤ {}µs, p90 ≤ {}µs, p99 ≤ {}µs",
            lat.samples, lat.p50_le_us, lat.p90_le_us, lat.p99_le_us
        );
        println!(
            "sim p99 improves with replica budget: {}\n",
            slo.sim_p99_improves
        );
    }
}

/// `repro analyze`: trace analytics over an instrumented FakeClock run —
/// critical-path blame, straggler / expert-skew detection, and
/// sim-vs-real drift calibration of the `janus-netsim` cost model
/// against the numerical engines, all driven by the *same* compiled
/// [`IterationPlan`](janus_core::plan::IterationPlan).
pub mod analyze {
    use super::*;
    use janus_core::exec::model::ExecConfig;
    use janus_core::exec::trainer::train_unified_with;
    use janus_core::plan::PlanOpts;
    use janus_core::sim::drift::sim_segments;
    use janus_core::sim::engine::build_graph_from_plan;
    use janus_core::sim::setup::SimSetup;
    use janus_moe::workload::{AssignmentMatrix, Imbalance};
    use janus_netsim::simulate;
    use janus_obs::analysis::{
        critical_path, detect_skew, expert_compute_loads, measure_skew, rank_compute_loads,
        CriticalPathReport, MeasuredSkewReport, SkewConfig, SkewReport,
    };
    use janus_obs::drift::{drift_report, real_segments, DriftReport};
    use janus_obs::{global, FakeClock};
    use std::sync::Arc;

    /// JSON keys of `analysis.json` holding wall-clock (FakeClock
    /// tick-count) measurements — masked by the lab manifest and the
    /// golden test before digesting. Everything else — blame structure,
    /// drift segment keys, sim predictions, skew flags on deterministic
    /// gate histograms — verifies bitwise across `--jobs` and thread
    /// counts.
    pub const MASKED_KEYS: &[&str] = &[
        // critical-path blame (tick-dependent)
        "wall_us",
        "us",
        "segments",
        // drift: the measured side and everything derived from it
        "actual_us",
        "rel_err",
        "accuracy",
        "share_act",
        "share_err",
        "scale",
        "calibration",
        // measured (wall-clock) skew
        "load_us",
        "ratio_q",
        "hot",
        "imbalance_q",
    ];

    /// Iterations of the instrumented run.
    pub const ITERS: u64 = 2;

    /// Skew verdict over one deterministic gate histogram.
    #[derive(Debug, Clone, Serialize)]
    pub struct GateSkew {
        /// Workload descriptor (`zipf-1.2`, `uniform`).
        pub workload: String,
        pub report: SkewReport,
    }

    /// Did the sim-vs-real alignment cover every comm segment the plan
    /// schedules? `expected` lists the sim-side pull/prefetch/a2a keys;
    /// `missing` the subset the real trace failed to match.
    #[derive(Debug, Clone, Serialize)]
    pub struct CommCoverage {
        pub expected: Vec<String>,
        pub missing: Vec<String>,
        pub complete: bool,
    }

    /// Everything `repro analyze` measures, in one artifact.
    #[derive(Debug, Clone, Serialize)]
    pub struct Report {
        /// Scenario preset.
        pub preset: String,
        /// Digest of the plan both the engine and the simulator ran.
        pub plan_digest: String,
        pub iters: u64,
        /// Critical-path blame of the instrumented run.
        pub blame: CriticalPathReport,
        /// Skew verdicts over deterministic gate histograms: the Zipf
        /// workload must flag its hot expert, the uniform one must not.
        pub gate_skew: Vec<GateSkew>,
        /// Measured per-rank compute loads (wall-clock values, masked).
        pub rank_skew: MeasuredSkewReport,
        /// Measured per-(block, expert) compute loads (masked).
        pub expert_skew: MeasuredSkewReport,
        /// Sim-vs-real drift calibration over aligned segments.
        pub drift: DriftReport,
        /// Comm coverage of the drift alignment.
        pub coverage: CommCoverage,
    }

    /// Train the mixed-paradigm preset under a ticking FakeClock with
    /// recording on, then run the *same* compiled plan through the
    /// simulator and align the two. Fails loudly if blame does not sum
    /// to wall time within 1% or the drift alignment leaves a plan comm
    /// segment uncovered — those are the subsystem's two contracts.
    pub fn run() -> Result<Report, String> {
        let cfg = ExecConfig::mixed_paradigms();
        let plan_opts = PlanOpts::default();
        let rec = global();
        rec.enable_with_clock(Arc::new(FakeClock::ticking(1)));
        let (plan, run) = train_unified_with(&cfg, &plan_opts, ITERS);
        rec.disable();
        let events = run.trace;

        let blame = critical_path(&events);
        for it in &blame.iterations {
            let on_path: f64 = it.by_category.iter().map(|b| b.us).sum();
            if (on_path - it.wall_us).abs() > 0.01 * it.wall_us.max(1.0) {
                return Err(format!(
                    "iter {}: blame {on_path}µs does not sum to wall {}µs within 1%",
                    it.iter, it.wall_us
                ));
            }
        }

        // Deterministic gate-histogram skew: same generator the
        // simulator samples workloads from.
        let skew_cfg = SkewConfig::default();
        let gate_skew = [
            ("zipf-1.2", Imbalance::Zipf(1.2)),
            ("uniform", Imbalance::Balanced),
        ]
        .into_iter()
        .map(|(name, imbalance)| {
            let asg = AssignmentMatrix::generate(
                cfg.world(),
                cfg.experts,
                cfg.tokens,
                imbalance,
                cfg.seed,
            );
            let loads: Vec<(String, f64)> = (0..cfg.experts)
                .map(|e| (format!("e{e}"), asg.expert_load(e) as f64))
                .collect();
            GateSkew {
                workload: name.to_string(),
                report: detect_skew(&loads, &skew_cfg),
            }
        })
        .collect();

        let rank_skew = measure_skew(&rank_compute_loads(&events), &skew_cfg);
        let expert_skew = measure_skew(&expert_compute_loads(&events), &skew_cfg);

        // Drift: the identical plan through the cost model.
        let setup = SimSetup::new(
            cfg.cluster(),
            cfg.model_config(),
            Imbalance::Balanced,
            cfg.seed,
        );
        let (graph, _) = build_graph_from_plan(&setup, &EngineOpts::default(), &plan);
        let sim = simulate(&graph, &setup.cluster.capacities())
            .map_err(|e| format!("plan does not simulate: {e:?}"))?;
        let sim_segs = sim_segments(&sim);
        let real_segs = real_segments(&events, |pid| cfg.machine_of(pid as usize));
        let drift = drift_report(&sim_segs, &real_segs);

        let expected: Vec<String> = sim_segs
            .iter()
            .filter(|(k, _)| matches!(k.category.as_str(), "pull" | "prefetch" | "a2a"))
            .map(|(k, _)| k.label())
            .collect();
        let missing: Vec<String> = expected
            .iter()
            .filter(|l| drift.unmatched_sim.contains(l))
            .cloned()
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "drift alignment left plan comm segments uncovered: {}",
                missing.join(", ")
            ));
        }
        let coverage = CommCoverage {
            complete: missing.is_empty(),
            expected,
            missing,
        };

        Ok(Report {
            preset: "mixed_paradigms".to_string(),
            plan_digest: format!("{:016x}", plan.digest()),
            iters: ITERS,
            blame,
            gate_skew,
            rank_skew,
            expert_skew,
            drift,
            coverage,
        })
    }

    /// Print the blame table, skew verdicts, and drift summary.
    pub fn print(report: &Report) {
        println!(
            "Trace analytics — preset {}, plan {}, {} iterations:\n",
            report.preset, report.plan_digest, report.iters
        );
        println!("{}", report.blame.render());
        for g in &report.gate_skew {
            println!(
                "gate skew [{}]: max/mean {:.2}, cv {:.2}, flagged {:?}",
                g.workload, g.report.max_over_mean, g.report.cv, g.report.flagged
            );
        }
        let hot: Vec<&str> = report
            .rank_skew
            .entries
            .iter()
            .filter(|e| e.hot)
            .map(|e| e.key.as_str())
            .collect();
        println!(
            "measured rank skew: imbalance {:.2}, hot ranks {hot:?}",
            report.rank_skew.imbalance_q
        );
        println!();
        println!("{}", report.drift.render());
        println!(
            "plan comm coverage: {}/{} sim segments matched by the real trace{}",
            report.coverage.expected.len() - report.coverage.missing.len(),
            report.coverage.expected.len(),
            if report.coverage.complete {
                " (complete)"
            } else {
                ""
            }
        );
    }
}

/// `repro bench` trajectory bookkeeping: every measuring run appends its
/// headline gate metrics to the tracked `BENCH_history.json`, so perf
/// history is a committed artifact rather than a sequence of overwrites.
pub mod bench_history {
    use super::*;

    /// Flatten the two fresh suite reports to `metric → value` using the
    /// same extraction paths the perf gate checks, then append one entry
    /// to the JSON array at `path` (created if absent). Returns the new
    /// entry count.
    pub fn append(path: &str, compute_json: &str, transport_json: &str) -> Result<usize, String> {
        // Self-comparison yields (metric, current) pairs with zero drift.
        let metrics: Vec<(String, f64)> = benchgate::check_compute_json(compute_json, compute_json)
            .into_iter()
            .chain(benchgate::check_transport_json(
                transport_json,
                transport_json,
            ))
            .map(|g| (g.metric, g.current))
            .collect();
        if metrics.is_empty() {
            return Err("no headline metrics found in fresh bench reports".to_string());
        }
        use serde_json::Value;
        let mut history: Vec<Value> = match std::fs::read_to_string(path) {
            Ok(text) => {
                let parsed: Value = serde_json::from_str(&text)
                    .map_err(|e| format!("{path} is not valid JSON: {e}"))?;
                match parsed {
                    Value::Arr(items) => items,
                    _ => return Err(format!("{path} is not a JSON array")),
                }
            }
            Err(_) => Vec::new(),
        };
        let unix_ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let entry = Value::Obj(vec![
            ("seq".to_string(), Value::Num(history.len() as f64)),
            ("unix_ts".to_string(), Value::Num(unix_ts as f64)),
            (
                "metrics".to_string(),
                Value::Obj(
                    metrics
                        .into_iter()
                        .map(|(k, v)| (k, Value::Num(v)))
                        .collect(),
                ),
            ),
        ]);
        history.push(entry);
        let mut text = serde_json::to_string_pretty(&Value::Arr(history.clone()))
            .map_err(|e| e.to_string())?;
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        Ok(history.len())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn append_grows_the_history_with_gate_metrics() {
            let compute = std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_compute.json"
            ))
            .expect("committed compute baseline");
            let transport = std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_transport.json"
            ))
            .expect("committed transport baseline");
            let path = std::env::temp_dir()
                .join(format!("janus_bench_history_{}.json", std::process::id()));
            let path = path.to_str().unwrap().to_string();
            let _ = std::fs::remove_file(&path);
            assert_eq!(append(&path, &compute, &transport), Ok(1));
            assert_eq!(append(&path, &compute, &transport), Ok(2));
            let text = std::fs::read_to_string(&path).unwrap();
            let v: serde_json::Value = serde_json::from_str(&text).unwrap();
            let entries = v.as_array().expect("history is an array");
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0]["seq"], 0u64);
            assert_eq!(entries[1]["seq"], 1u64);
            let metrics = entries[1]["metrics"]
                .as_object()
                .expect("entry has metrics");
            assert!(!metrics.is_empty(), "gate metrics extracted");
            assert!(metrics.iter().all(|(_, v)| v.as_f64().is_some()));
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn append_rejects_a_non_array_history() {
            let compute = std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_compute.json"
            ))
            .expect("committed compute baseline");
            let transport = std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_transport.json"
            ))
            .expect("committed transport baseline");
            let path = std::env::temp_dir().join(format!(
                "janus_bench_history_bad_{}.json",
                std::process::id()
            ));
            let path = path.to_str().unwrap().to_string();
            std::fs::write(&path, "{}\n").unwrap();
            let err = append(&path, &compute, &transport).unwrap_err();
            assert!(err.contains("array"), "{err}");
            // Reports with no extractable headline metrics also refuse.
            let err = append(&path, "{}", "{}").unwrap_err();
            assert!(err.contains("metrics"), "{err}");
            let _ = std::fs::remove_file(&path);
        }
    }
}
