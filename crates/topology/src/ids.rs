//! Identifier newtypes for cluster entities.
//!
//! All identifiers are dense indices so they can be used directly as
//! vector offsets by the simulator. [`WorkerId`] is the *global* rank of a
//! GPU across the whole cluster (the expert-parallel rank); [`LocalRank`]
//! is its index inside one machine (the `r` of the paper's Algorithm 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Global rank of a GPU (worker) across the cluster, in
/// `0..n_machines * gpus_per_machine`. Workers on machine `M` occupy the
/// contiguous range `M*m..(M+1)*m`, matching the paper's placement where
/// worker `i` holds internal experts `i*E..(i+1)*E` of every MoE block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

/// Index of a machine in the cluster, in `0..n_machines`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub usize);

/// Rank of a GPU inside its machine, in `0..gpus_per_machine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalRank(pub usize);

/// Global index of a PCIe switch. Each switch connects
/// [`crate::cluster::GPUS_PER_PCIE_SWITCH`] adjacent GPUs to CPU memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PcieSwitchId(pub usize);

/// Dense index of a directed link; used as a capacity-vector offset by the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

macro_rules! impl_id {
    ($t:ty, $tag:expr) => {
        impl From<usize> for $t {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }
        impl From<$t> for usize {
            fn from(v: $t) -> usize {
                v.0
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }
        impl $t {
            /// Raw index value.
            pub fn index(self) -> usize {
                self.0
            }
        }
    };
}

impl_id!(WorkerId, "w");
impl_id!(MachineId, "M");
impl_id!(LocalRank, "r");
impl_id!(PcieSwitchId, "sw");
impl_id!(LinkId, "L");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let w: WorkerId = 7usize.into();
        assert_eq!(usize::from(w), 7);
        assert_eq!(w.index(), 7);
        assert_eq!(w.to_string(), "w7");
        assert_eq!(MachineId(2).to_string(), "M2");
        assert_eq!(LocalRank(3).to_string(), "r3");
        assert_eq!(PcieSwitchId(1).to_string(), "sw1");
        assert_eq!(LinkId(11).to_string(), "L11");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(WorkerId(1) < WorkerId(2));
        assert!(MachineId(0) < MachineId(1));
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        let json = serde_json::to_string(&WorkerId(5)).unwrap();
        assert_eq!(json, "5");
        let back: WorkerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, WorkerId(5));
    }
}
