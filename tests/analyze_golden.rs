//! Golden pin of the `repro analyze` trace-analytics artifact.
//!
//! The lab manifest hashes `analysis.json` through its masked canonical
//! form: parsed, every tick-derived key (blame microseconds, measured
//! drift, wall-clock skew) nulled, re-rendered compact. This test pins
//! that exact byte stream — the very content `repro lab --verify`
//! re-digests — so any unintentional change to the report's
//! deterministic structure (segment keys, the plan digest, the gate-skew
//! flags, the simulator's predictions) fails loudly here with a readable
//! diff instead of as an opaque digest mismatch. The semantic acceptance
//! criteria ride along: blame additivity is enforced inside
//! `analyze::run()` (it returns `Err` past 1%), comm coverage must be
//! complete, and the Zipf/uniform gate-skew verdicts must split.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test analyze_golden`.

use janus::lab::canonical_masked_json;
use janus_bench::experiments::analyze;

fn assert_golden(got: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(got, want, "golden mismatch for {name}");
}

#[test]
fn analysis_masked_canonical_form_is_golden() {
    let report = analyze::run().expect("analyze runs (blame within 1%, coverage complete)");

    // Per-iteration blame tiles the window: categories sum to the wall.
    for it in &report.blame.iterations {
        let blamed: f64 = it.by_category.iter().map(|b| b.us).sum();
        assert!(
            (blamed - it.wall_us).abs() <= 0.01 * it.wall_us.max(1.0),
            "iter {}: blame {blamed} vs wall {}",
            it.iter,
            it.wall_us
        );
    }

    // Every comm segment of the plan appears in the real trace.
    assert!(
        report.coverage.complete && report.coverage.missing.is_empty(),
        "missing comm segments: {:?}",
        report.coverage.missing
    );

    // Skew detector: Zipf routing flags a hot expert, uniform is silent.
    let (mut zipf_flags, mut uniform_silent) = (false, false);
    for gate in &report.gate_skew {
        if gate.workload.starts_with("zipf") {
            zipf_flags = !gate.report.flagged.is_empty();
        }
        if gate.workload == "uniform" {
            uniform_silent = gate.report.flagged.is_empty();
        }
    }
    assert!(zipf_flags, "zipf gate histogram must flag a hot expert");
    assert!(uniform_silent, "uniform gate histogram must not flag");

    // The drift report scores every (rank, block) comm family.
    assert!(!report.drift.segments.is_empty());

    let masked: Vec<String> = analyze::MASKED_KEYS.iter().map(|k| k.to_string()).collect();
    let mut pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    pretty.push('\n');
    let mut canonical =
        canonical_masked_json(pretty.as_bytes(), &masked).expect("report is valid JSON");
    canonical.push('\n');
    // Whitespace-insensitive, exactly as the manifest layer promises.
    let compact = serde_json::to_string(&report).expect("report serializes");
    assert_eq!(
        canonical_masked_json(compact.as_bytes(), &masked).map(|mut s| {
            s.push('\n');
            s
        }),
        Some(canonical.clone())
    );
    assert_golden(&canonical, "analysis.json");
}
