//! A matching receiver over any transport.
//!
//! Protocols on top of a shared connection receive messages out of order:
//! while a worker waits for an expert payload, a pull request from a peer
//! may arrive first. [`Comm`] buffers everything and lets each caller
//! claim the first message matching a predicate, in arrival order.

use crate::message::Message;
use crate::transport::{CommError, Transport};
use std::collections::VecDeque;

/// A transport wrapper with message matching.
pub struct Comm<T: Transport> {
    transport: T,
    pending: std::cell::RefCell<VecDeque<(usize, Message)>>,
}

impl<T: Transport> Comm<T> {
    /// Wrap a transport endpoint.
    pub fn new(transport: T) -> Self {
        Comm {
            transport,
            pending: std::cell::RefCell::new(VecDeque::new()),
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of endpoints in the mesh.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// Send a message.
    pub fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        self.transport.send(to, msg)
    }

    /// Receive the earliest message satisfying `pred`, buffering any
    /// non-matching arrivals for later callers.
    pub fn recv_match(
        &self,
        mut pred: impl FnMut(usize, &Message) -> bool,
    ) -> Result<(usize, Message), CommError> {
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|(from, m)| pred(*from, m)) {
                return Ok(pending.remove(pos).expect("position just found"));
            }
        }
        loop {
            let (from, msg) = self.transport.recv()?;
            if pred(from, &msg) {
                return Ok((from, msg));
            }
            self.pending.borrow_mut().push_back((from, msg));
        }
    }

    /// Receive the next message from any peer (buffered first).
    pub fn recv_any(&self) -> Result<(usize, Message), CommError> {
        if let Some(front) = self.pending.borrow_mut().pop_front() {
            return Ok(front);
        }
        self.transport.recv()
    }

    /// Non-blocking receive (buffered first).
    pub fn try_recv_any(&self) -> Result<Option<(usize, Message)>, CommError> {
        if let Some(front) = self.pending.borrow_mut().pop_front() {
            return Ok(Some(front));
        }
        self.transport.try_recv()
    }

    /// Put a message back for a later `recv_*` call (at the back of the
    /// buffer, preserving arrival order relative to other stashed
    /// messages). Used by protocol loops that peek at traffic they cannot
    /// handle yet.
    pub fn stash(&self, from: usize, msg: Message) {
        self.pending.borrow_mut().push_back((from, msg));
    }

    /// Receive the earliest message satisfying `pred`, handing every other
    /// message to `consume` first; messages `consume` declines (returns
    /// `false` for) are buffered. This is the serve-while-waiting loop of
    /// pull-based protocols: while a worker waits for an expert payload it
    /// keeps answering pull requests and gradient pushes from peers.
    pub fn recv_match_or_consume(
        &self,
        mut pred: impl FnMut(usize, &Message) -> bool,
        mut consume: impl FnMut(usize, &Message) -> bool,
    ) -> Result<(usize, Message), CommError> {
        // One pass over already-buffered messages. The buffer is taken
        // out first so `pred`/`consume` may freely call back into this
        // `Comm` (send, stash) without re-entrant borrows.
        let taken: Vec<(usize, Message)> = self.pending.borrow_mut().drain(..).collect();
        let mut matched = None;
        for (from, msg) in taken {
            if matched.is_none() && pred(from, &msg) {
                matched = Some((from, msg));
            } else if matched.is_some() || !consume(from, &msg) {
                self.pending.borrow_mut().push_back((from, msg));
            }
        }
        if let Some(m) = matched {
            return Ok(m);
        }
        loop {
            let (from, msg) = self.transport.recv()?;
            if pred(from, &msg) {
                return Ok((from, msg));
            }
            if !consume(from, &msg) {
                self.pending.borrow_mut().push_back((from, msg));
            }
        }
    }

    /// Deadline-bounded variant of [`Comm::recv_match_or_consume`]:
    /// returns `Ok(None)` when `deadline` passes without a matching
    /// message, leaving all buffered traffic intact for later callers.
    /// Protocol loops use this to re-request or fail loudly instead of
    /// hanging when a peer goes quiet.
    pub fn recv_match_or_consume_deadline(
        &self,
        mut pred: impl FnMut(usize, &Message) -> bool,
        mut consume: impl FnMut(usize, &Message) -> bool,
        deadline: std::time::Instant,
    ) -> Result<Option<(usize, Message)>, CommError> {
        let taken: Vec<(usize, Message)> = self.pending.borrow_mut().drain(..).collect();
        let mut matched = None;
        for (from, msg) in taken {
            if matched.is_none() && pred(from, &msg) {
                matched = Some((from, msg));
            } else if matched.is_some() || !consume(from, &msg) {
                self.pending.borrow_mut().push_back((from, msg));
            }
        }
        if let Some(m) = matched {
            return Ok(Some(m));
        }
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.transport.recv_timeout(deadline - now)? {
                None => return Ok(None),
                Some((from, msg)) => {
                    if pred(from, &msg) {
                        return Ok(Some((from, msg)));
                    }
                    if !consume(from, &msg) {
                        self.pending.borrow_mut().push_back((from, msg));
                    }
                }
            }
        }
    }

    /// One bounded, non-blocking service pass: offer every buffered
    /// message and every immediately available transport message to
    /// `consume` once; declined messages stay buffered. Returns how many
    /// messages were consumed. Used by poll loops that wait on local
    /// state (e.g. a shared cache) while staying responsive to peers.
    pub fn service_pass(
        &self,
        mut consume: impl FnMut(usize, &Message) -> bool,
    ) -> Result<usize, CommError> {
        let mut handled = 0;
        let taken: Vec<(usize, Message)> = self.pending.borrow_mut().drain(..).collect();
        for (from, msg) in taken {
            if consume(from, &msg) {
                handled += 1;
            } else {
                self.pending.borrow_mut().push_back((from, msg));
            }
        }
        while let Some((from, msg)) = self.transport.try_recv()? {
            if consume(from, &msg) {
                handled += 1;
            } else {
                self.pending.borrow_mut().push_back((from, msg));
            }
        }
        Ok(handled)
    }

    /// Number of buffered (received but unclaimed) messages.
    pub fn buffered(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Access the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::local_mesh;

    #[test]
    fn match_skips_and_buffers() {
        let mut mesh = local_mesh(2);
        let b = Comm::new(mesh.pop().unwrap());
        let a = Comm::new(mesh.pop().unwrap());

        a.send(1, Message::Barrier { epoch: 1 }).unwrap();
        a.send(
            1,
            Message::PullRequest {
                block: 0,
                expert: 3,
                nonce: 12,
            },
        )
        .unwrap();
        a.send(1, Message::Barrier { epoch: 2 }).unwrap();

        // Claim the pull request first, although it arrived second.
        let (_, msg) = b
            .recv_match(|_, m| matches!(m, Message::PullRequest { .. }))
            .unwrap();
        assert_eq!(
            msg,
            Message::PullRequest {
                block: 0,
                expert: 3,
                nonce: 12,
            }
        );
        assert_eq!(b.buffered(), 1);

        // Buffered barrier(1) is claimed before the live barrier(2).
        let (_, msg) = b
            .recv_match(|_, m| matches!(m, Message::Barrier { .. }))
            .unwrap();
        assert_eq!(msg, Message::Barrier { epoch: 1 });
        let (_, msg) = b
            .recv_match(|_, m| matches!(m, Message::Barrier { .. }))
            .unwrap();
        assert_eq!(msg, Message::Barrier { epoch: 2 });
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn recv_any_drains_buffer_first() {
        let mut mesh = local_mesh(2);
        let b = Comm::new(mesh.pop().unwrap());
        let a = Comm::new(mesh.pop().unwrap());
        a.send(1, Message::Barrier { epoch: 10 }).unwrap();
        a.send(1, Message::Barrier { epoch: 11 }).unwrap();
        // Force epoch 11 into the buffer by matching epoch 11 first? No —
        // match on epoch 11 buffers epoch 10.
        let (_, _msg) = b
            .recv_match(|_, m| matches!(m, Message::Barrier { epoch: 11 }))
            .unwrap();
        assert_eq!(b.buffered(), 1);
        assert_eq!(b.recv_any().unwrap().1, Message::Barrier { epoch: 10 });
    }

    #[test]
    fn try_recv_and_stash_round_trip() {
        let mut mesh = local_mesh(2);
        let b = Comm::new(mesh.pop().unwrap());
        let a = Comm::new(mesh.pop().unwrap());
        assert!(b.try_recv_any().unwrap().is_none());
        a.send(1, Message::Barrier { epoch: 3 }).unwrap();
        // Give the (in-process) channel a beat; local delivery is
        // immediate, so this is deterministic.
        let (from, msg) = b.try_recv_any().unwrap().unwrap();
        b.stash(from, msg);
        assert_eq!(b.buffered(), 1);
        assert_eq!(b.recv_any().unwrap(), (0, Message::Barrier { epoch: 3 }));
    }

    #[test]
    fn deadline_match_expires_and_preserves_buffer() {
        let mut mesh = local_mesh(2);
        let b = Comm::new(mesh.pop().unwrap());
        let a = Comm::new(mesh.pop().unwrap());
        a.send(1, Message::Barrier { epoch: 1 }).unwrap();
        let got = b
            .recv_match_or_consume_deadline(
                |_, m| matches!(m, Message::Shutdown),
                |_, _| false,
                std::time::Instant::now() + std::time::Duration::from_millis(5),
            )
            .unwrap();
        assert!(got.is_none(), "deadline must expire, not hang");
        assert_eq!(b.buffered(), 1, "non-matching traffic stays buffered");
        a.send(1, Message::Shutdown).unwrap();
        let got = b
            .recv_match_or_consume_deadline(
                |_, m| matches!(m, Message::Shutdown),
                |_, _| false,
                std::time::Instant::now() + std::time::Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(got.unwrap().1, Message::Shutdown);
        assert_eq!(b.buffered(), 1, "barrier still waiting for its claimant");
    }

    #[test]
    fn match_by_sender() {
        let mut mesh = local_mesh(3);
        let c = Comm::new(mesh.pop().unwrap());
        let b = Comm::new(mesh.pop().unwrap());
        let a = Comm::new(mesh.pop().unwrap());
        b.send(2, Message::Barrier { epoch: 1 }).unwrap();
        a.send(2, Message::Barrier { epoch: 1 }).unwrap();
        let (from, _) = c.recv_match(|from, _| from == 0).unwrap();
        assert_eq!(from, 0);
    }
}
