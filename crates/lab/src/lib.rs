//! `janus-lab`: the experiment DAG runner behind `repro lab`.
//!
//! The paper's evaluation is a matrix of interdependent artifacts
//! (tables, figures, fault/crash/trace ledgers, perf baselines). This
//! crate models that matrix as a dependency graph of [`TaskSpec`] nodes
//! — name, dependency edges, resource hints, and a run closure that
//! produces artifact files — validated up front ([`Dag`]) and executed
//! by an [`Executor`] that schedules independent nodes in parallel on
//! the `janus-tensor` thread pool.
//!
//! Every node run emits, next to its artifact files:
//!
//! - `manifest.json` — everything needed to reproduce the artifact:
//!   config digest, seed, `IterationPlan` digests, git-describe, tool
//!   versions, input-artifact hashes, and a canonical content digest per
//!   output file.
//! - `diagnostics.json` — how the run went: elapsed wall time, the
//!   `janus-obs` counter snapshot, thread configuration.
//!
//! Digests are the workspace-wide FNV-1a (`janus_core::Fnv64`), so an
//! artifact hash and a plan digest live in the same value space. Files
//! whose bytes embed wall-clock measurements are either marked
//! *volatile* (recorded but never verified) or hashed through a masked
//! canonical form that nulls the timing-only JSON fields — which is what
//! lets [`Executor::verify`] re-run a node from its manifest and diff
//! the output bitwise, timing fields excluded.
//!
//! Scheduling is wave-based and deterministic per seed: ready nodes are
//! ordered by a seeded hash, non-exclusive nodes of a wave run in
//! parallel (bounded by `--jobs`), and nodes flagged
//! [`exclusive`](TaskSpec::exclusive) run alone so their timings (bench
//! nodes) and process-global state (forced SIMD, the global recorder)
//! stay clean. Tasks running inside pool workers inherit the pool's
//! nested-region guard, so their internal kernels serialize instead of
//! oversubscribing — bitwise-identically, by the pool's disjoint-work
//! invariant, which is why `--jobs 1` and `--jobs 4` produce identical
//! manifests.

pub mod dag;
pub mod exec;
pub mod manifest;

pub use dag::{Dag, DagError, OutFile, TaskCtx, TaskReport, TaskSpec};
pub use exec::{Executor, LabEnv, RunSummary, TaskOutcome, TaskStatus};
pub use manifest::{canonical_digest, canonical_masked_json, Diagnostics, FileEntry, Manifest};

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialize multi-line console output across concurrently running
/// tasks: a task that prints a rendered table takes this lock for the
/// duration of the print, so `--jobs 4` interleaves whole tables, never
/// lines. (Rust's `println!` only locks per line.)
pub fn stdout_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}
