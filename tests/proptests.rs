//! Cross-crate property tests on scheduler and engine invariants.

use janus::core::ckpt::{Checkpoint, CkptError};
use janus::core::exec::model::{ExecConfig, WorkerState};
use janus::core::exec::trainer::{
    diff_runs, train_data_centric, train_expert_centric, train_unified,
};
use janus::core::plan::{expert_owner, fetch_plan, IterationPlan, PlanOpts};
use janus::core::priority::{internal_priority, internal_pull_order, pcie_split};
use janus::core::sim::engine::{build_graph, EngineOpts, ParadigmPolicy};
use janus::core::sim::setup::SimSetup;
use janus::moe::config::ModelPreset;
use janus::moe::workload::{AssignmentMatrix, Imbalance};
use janus::netsim::simulate;
use janus::topology::{ClusterSpec, LocalRank, WorkerId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every fetch plan covers every expert exactly once per worker, for
    /// arbitrary cluster shapes and expert multiples.
    #[test]
    fn fetch_plans_are_complete_partitions(
        n in 1usize..4,
        m in 1usize..6,
        e_per in 1usize..4,
        topo in any::<bool>(),
    ) {
        let cluster = ClusterSpec::a100(n, m).build();
        let experts = n * m * e_per;
        let plan = fetch_plan(&cluster, experts, topo);
        for w in cluster.workers() {
            let all = plan.all_experts_for(w);
            prop_assert_eq!(all, (0..experts).collect::<Vec<_>>());
        }
        // Machine external lists: every off-machine expert exactly once.
        for machine in cluster.machines() {
            let list = &plan.machine_external[machine.0];
            for pull in list {
                prop_assert_ne!(cluster.machine_of(pull.owner), machine);
                prop_assert_eq!(expert_owner(pull.expert, experts, n * m), pull.owner);
            }
            prop_assert_eq!(list.len(), experts - m * e_per);
        }
    }

    /// Algorithm 1 priorities are a bijection per worker and stagger
    /// owners across workers at every step.
    #[test]
    fn staggered_priorities_form_latin_square(m in 2usize..12) {
        for r in 0..m {
            let order = internal_pull_order(LocalRank(r), m);
            let mut prios: Vec<usize> = order
                .iter()
                .map(|&o| internal_priority(o, LocalRank(r), m))
                .collect();
            prios.sort_unstable();
            prop_assert_eq!(prios, (1..m).collect::<Vec<_>>());
        }
        for step in 0..m - 1 {
            let mut owners: Vec<usize> =
                (0..m).map(|r| internal_pull_order(LocalRank(r), m)[step].0).collect();
            owners.sort_unstable();
            owners.dedup();
            prop_assert_eq!(owners.len(), m, "owner collision at step {}", step);
        }
    }

    /// The PCIe split is a partition and the two siblings' halves mirror
    /// each other for any expert list.
    #[test]
    fn pcie_split_partitions(experts in prop::collection::vec(0usize..1000, 0..40)) {
        let (a_mine, a_peer) = pcie_split(&experts, 0, true);
        let (b_mine, b_peer) = pcie_split(&experts, 1, true);
        prop_assert_eq!(&a_mine, &b_peer);
        prop_assert_eq!(&a_peer, &b_mine);
        let mut merged = a_mine.clone();
        merged.extend(&a_peer);
        merged.sort_unstable();
        let mut want = experts.clone();
        want.sort_unstable();
        prop_assert_eq!(merged, want);
    }

    /// Assignment matrices conserve tokens for any skew.
    #[test]
    fn assignments_conserve_tokens(
        workers in 1usize..8,
        experts in 1usize..16,
        tokens in 1usize..500,
        skew in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let a = AssignmentMatrix::generate(workers, experts, tokens, Imbalance::Zipf(skew), seed);
        for w in 0..workers {
            prop_assert_eq!(a.worker_tokens(w), tokens);
        }
        let total: usize = (0..experts).map(|e| a.expert_load(e)).sum();
        prop_assert_eq!(total, workers * tokens);
        prop_assert!(a.imbalance_factor() >= 1.0 - 1e-9);
    }

    /// Every engine-built graph simulates to completion (no deadlocks)
    /// across policies, ablation switches, credit sizes, and seeds.
    #[test]
    fn engine_graphs_never_deadlock(
        policy_ix in 0usize..3,
        topo in any::<bool>(),
        prefetch in any::<bool>(),
        credits in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut model = ModelPreset::MoeGpt.config(4);
        model.batch = 4;
        model.blocks.truncate(12);
        let cluster = ClusterSpec::a100(2, 2).build();
        let policy = [
            ParadigmPolicy::ExpertCentric,
            ParadigmPolicy::DataCentric,
            ParadigmPolicy::Unified,
        ][policy_ix];
        let mut opts = EngineOpts { policy, ..EngineOpts::default() };
        opts.dc.topo_aware = topo;
        opts.dc.prefetch = prefetch;
        opts.dc.credits = credits;
        opts.seed = seed;
        let setup = SimSetup::new(cluster, model, opts.imbalance, seed);
        let (graph, _) = build_graph(&setup, &opts);
        let result = simulate(&graph, &setup.cluster.capacities());
        prop_assert!(result.is_ok(), "{:?}", result.err());
        prop_assert!(result.unwrap().makespan > 0.0);
    }

    /// Plan compilation is a pure function of `(model, cluster, opts)`:
    /// the digest is identical across repeated runs and across threads.
    #[test]
    fn plan_digests_are_stable_across_runs_and_threads(
        n in 1usize..4,
        m in 1usize..5,
        e_per in 1usize..4,
        policy_ix in 0usize..3,
        topo in any::<bool>(),
        prefetch in any::<bool>(),
        credits in 1u32..8,
        thr_mil in 1u64..4000,
    ) {
        let cluster = ClusterSpec::a100(n, m).build();
        let model = ModelPreset::MoeGpt.config(n * m * e_per);
        let opts = PlanOpts {
            policy: [
                ParadigmPolicy::ExpertCentric,
                ParadigmPolicy::DataCentric,
                ParadigmPolicy::Unified,
            ][policy_ix],
            r_threshold: thr_mil as f64 / 1000.0,
            topo_aware: topo,
            prefetch,
            credits,
        };
        let digest = IterationPlan::compile(&model, &cluster, &opts).digest();
        let rerun = IterationPlan::compile(&model, &cluster, &opts).digest();
        prop_assert_eq!(rerun, digest);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (c, mo) = (cluster.clone(), model.clone());
                std::thread::spawn(move || IterationPlan::compile(&mo, &c, &opts).digest())
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().expect("compile thread"), digest);
        }
    }

    /// In every compiled plan, each data-centric block's own + internal +
    /// external pulls cover the block's expert set exactly once per
    /// worker — and only data-centric MoE blocks carry a fetch plan.
    #[test]
    fn compiled_fetch_plans_partition_every_block(
        n in 1usize..4,
        m in 1usize..5,
        e_per in 1usize..4,
        topo in any::<bool>(),
        thr_mil in 1u64..4000,
    ) {
        let cluster = ClusterSpec::a100(n, m).build();
        let model = ModelPreset::MoeGpt.config(n * m * e_per);
        let opts = PlanOpts {
            policy: ParadigmPolicy::Unified,
            r_threshold: thr_mil as f64 / 1000.0,
            topo_aware: topo,
            ..PlanOpts::default()
        };
        let plan = IterationPlan::compile(&model, &cluster, &opts);
        prop_assert_eq!(plan.blocks.len(), model.blocks.len());
        for bp in &plan.blocks {
            use janus::core::Paradigm;
            let dc_moe = bp.experts > 0 && bp.paradigm == Paradigm::DataCentric;
            prop_assert_eq!(bp.fetch.is_some(), dc_moe);
            if let Some(fetch) = &bp.fetch {
                for w in cluster.workers() {
                    prop_assert_eq!(
                        fetch.all_experts_for(w),
                        (0..bp.experts).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    /// Checkpoints round-trip bitwise: serialize → parse → serialize is
    /// the identity on bytes, and restore → capture is the identity on
    /// state, for arbitrary cluster shapes, seeds, and iteration counts.
    #[test]
    fn checkpoint_roundtrip_is_bitwise(
        machines in 1usize..3,
        gpus in 1usize..3,
        e_per in 1usize..3,
        seed in any::<u64>(),
        iter in 0u64..1_000_000,
        digest in any::<u64>(),
    ) {
        let world = machines * gpus;
        let cfg = ExecConfig {
            machines,
            gpus_per_machine: gpus,
            hidden_dim: 4,
            blocks: 2,
            experts: world * e_per,
            experts_per_block: vec![],
            top_k: 1,
            tokens: 4,
            seed,
            lr: 0.01,
        };
        for rank in 0..world {
            let state = WorkerState::init(&cfg, rank);
            let ckpt = Checkpoint::capture(&state, iter, digest);
            let bytes = ckpt.to_bytes();
            let back = Checkpoint::from_bytes(bytes.as_ref()).expect("parse own bytes");
            prop_assert_eq!(
                bytes.as_ref(),
                back.to_bytes().as_ref(),
                "serialize-parse-serialize changed bytes for rank {}",
                rank
            );
            let mut target = WorkerState::init(&cfg, rank);
            back.restore(&mut target).expect("restore onto same shape");
            let again = Checkpoint::capture(&target, iter, digest);
            prop_assert_eq!(
                bytes.as_ref(),
                again.to_bytes().as_ref(),
                "restore-capture changed bytes for rank {}",
                rank
            );
        }
    }

    /// Flipping any single bit anywhere in a checkpoint blob — header,
    /// payload, or trailer — is caught by the whole-blob checksum before
    /// a single field is interpreted.
    #[test]
    fn corrupted_checkpoints_are_rejected(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let cfg = ExecConfig { seed, ..ExecConfig::small() };
        let state = WorkerState::init(&cfg, 0);
        let bytes = Checkpoint::capture(&state, 3, 0xD16E57).to_bytes();
        let mut corrupt = bytes.as_ref().to_vec();
        let pos = (pos_seed % corrupt.len() as u64) as usize;
        corrupt[pos] ^= 1 << bit;
        let err = Checkpoint::from_bytes(&corrupt)
            .expect_err("a flipped bit must never load");
        prop_assert!(
            matches!(err, CkptError::Checksum { .. }),
            "flip at byte {} bit {}: want checksum rejection, got {}",
            pos, bit, err
        );
        prop_assert!(err.to_string().contains("checksum"), "{}", err);
    }

    /// Cluster routing is always loop-free, uses each link at most once,
    /// and cross-node routes cross exactly two NICs.
    #[test]
    fn routes_are_simple_paths(n in 1usize..4, m in 1usize..6) {
        let cluster = ClusterSpec::a100(n, m).build();
        use janus::topology::Location;
        let locs: Vec<Location> = cluster
            .workers()
            .map(Location::Gpu)
            .chain(cluster.machines().map(Location::CpuMem))
            .collect();
        for &from in &locs {
            for &to in &locs {
                let route = cluster.route(from, to);
                let mut ids: Vec<_> = route.clone();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), route.len(), "duplicate link in route");
                let nic_crossings = route
                    .iter()
                    .filter(|&&l| cluster.link_info(l).kind.is_cross_node())
                    .count();
                let cross = machine_of_loc(&cluster, from) != machine_of_loc(&cluster, to);
                prop_assert_eq!(nic_crossings, if cross { 2 } else { 0 });
            }
        }
    }

    /// Critical-path blame over an arbitrary well-formed trace tiles the
    /// iteration window: per-category blame sums to the wall time, the
    /// wall is at least the longest single (clipped) span, and non-idle
    /// blame never exceeds the total span time on the path's ranks.
    #[test]
    fn critical_path_blame_is_additive_and_bounded(
        wall in 40.0f64..400.0,
        spans in prop::collection::vec(
            (0u32..4, 0usize..6, 0.0f64..1.0, 0.01f64..1.0),
            1..40,
        ),
    ) {
        use janus::obs::analysis::critical_path;
        use janus::obs::TraceEvent;
        const NAMES: [(&str, &str); 6] = [
            ("fwd/b0/e0", "compute"),
            ("pull/b0/e1", "comm"),
            ("a2a_dispatch/b0", "comm"),
            ("barrier/0", "sync"),
            ("grad_wait", "reduce"),
            ("prefetch/b0/e2", "comm"),
        ];
        let mut events = Vec::new();
        let mut ranks = std::collections::BTreeSet::new();
        for &(pid, name_idx, ts_q, dur_q) in &spans {
            ranks.insert(pid);
            let (name, cat) = NAMES[name_idx];
            let ts = ts_q * wall;
            events.push(TraceEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                pid,
                tid: "t".to_string(),
                ts_us: ts,
                // Spans may extend past the window; the walk clips them.
                dur_us: dur_q * wall,
            });
        }
        for &pid in &ranks {
            events.push(TraceEvent {
                name: "iter/0".to_string(),
                cat: "iter".to_string(),
                pid,
                tid: "t".to_string(),
                ts_us: 0.0,
                dur_us: wall,
            });
        }
        let report = critical_path(&events);
        prop_assert_eq!(report.iterations.len(), 1);
        let it = &report.iterations[0];
        let eps = 1e-6 * wall;
        prop_assert!((it.wall_us - wall).abs() < eps);
        // Additivity: blame tiles the window exactly.
        let blamed: f64 = it.by_category.iter().map(|b| b.us).sum();
        prop_assert!((blamed - it.wall_us).abs() < eps, "blame {blamed} != wall {}", it.wall_us);
        let by_rank: f64 = it.by_rank.iter().map(|b| b.us).sum();
        prop_assert!((by_rank - it.wall_us).abs() < eps);
        // Lower bound: the window covers its longest clipped span.
        let longest = events
            .iter()
            .filter(|e| e.cat != "iter")
            .map(|e| e.end_us().min(wall) - e.ts_us.max(0.0))
            .fold(0.0, f64::max);
        prop_assert!(it.wall_us >= longest - eps);
        // Upper bound: non-idle blame is covered by recorded spans.
        let idle = it.by_category.iter().find(|b| b.category == "idle").unwrap().us;
        let total_span: f64 = events
            .iter()
            .filter(|e| e.cat != "iter")
            .map(|e| (e.end_us().min(wall) - e.ts_us.max(0.0)).max(0.0))
            .sum();
        prop_assert!(blamed - idle <= total_span + eps);
    }
}

proptest! {
    // Each case trains three 4-worker clusters; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The unified engine executing a compiled mixed-paradigm plan is
    /// bitwise identical to both pure numerical engines, for any seed.
    #[test]
    fn unified_is_bitwise_equal_to_pure_engines(seed in any::<u64>()) {
        let cfg = ExecConfig { seed, ..ExecConfig::mixed_paradigms() };
        let unified = train_unified(&cfg, 2);
        for pure in [train_expert_centric(&cfg, 2), train_data_centric(&cfg, 2)] {
            let d = diff_runs(&unified, &pure);
            prop_assert_eq!(d.max_output_diff, 0.0);
            prop_assert_eq!(d.max_weight_diff, 0.0);
            prop_assert_eq!(d.max_loss_diff, 0.0);
        }
    }
}

fn machine_of_loc(cluster: &janus::topology::Cluster, loc: janus::topology::Location) -> usize {
    match loc {
        janus::topology::Location::Gpu(w) => cluster.machine_of(w).0,
        janus::topology::Location::CpuMem(mm) => mm.0,
    }
}

/// Static sanity outside proptest: expert ownership is contiguous.
#[test]
fn ownership_is_contiguous() {
    for (experts, workers) in [(8usize, 4usize), (32, 32), (64, 16)] {
        let mut last = WorkerId(0);
        for e in 0..experts {
            let owner = expert_owner(e, experts, workers);
            assert!(owner >= last, "ownership must be monotone");
            last = owner;
        }
        assert_eq!(last, WorkerId(workers - 1));
    }
}
