//! Bitwise equivalence of the AVX2 kernels against the portable paths.
//!
//! Every SIMD kernel keeps the scalar reference's reduction order — lanes
//! map to distinct output elements, never to partial sums of one element —
//! so its output must equal the reference *bitwise* on every shape,
//! including the sub-lane remainders, under every dispatch mode
//! (forced-scalar, forced-SIMD, auto) and every thread count. On a CPU
//! without AVX2, forcing SIMD degrades to the scalar path and these tests
//! pass trivially.

use janus_tensor::{add_bias_gelu, matmul_reference, pool, simd, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that flips the process-wide dispatch override,
/// so the harness's parallel test threads cannot corrupt each other's
/// forced mode.
static DISPATCH: Mutex<()> = Mutex::new(());

fn with_dispatch_lock<R>(f: impl FnOnce() -> R) -> R {
    let _guard = DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    let out = f();
    simd::set_forced(None);
    out
}

/// The three dispatch modes a kernel call can resolve through.
const MODES: [Option<bool>; 3] = [Some(false), Some(true), None];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NN/TN/NT products equal the scalar reference bitwise on shapes
    /// straddling the 16- and 8-column SIMD tiles (and the narrow `n < 8`
    /// remainder path), whichever dispatch mode selects the kernel.
    #[test]
    fn matmul_matches_reference_in_every_dispatch_mode(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let reference = matmul_reference(&a, &b);
        with_dispatch_lock(|| {
            for mode in MODES {
                simd::set_forced(mode);
                prop_assert_eq!(
                    a.matmul(&b).max_abs_diff(&reference), 0.0,
                    "NN diverged under {:?}", mode
                );
                prop_assert_eq!(
                    a.transpose().matmul_tn(&b).max_abs_diff(&reference), 0.0,
                    "TN diverged under {:?}", mode
                );
                prop_assert_eq!(
                    a.matmul_nt(&b.transpose()).max_abs_diff(&reference), 0.0,
                    "NT diverged under {:?}", mode
                );
            }
        });
    }

    /// The fused bias+GeLU sweep, column sums, and transpose have SIMD
    /// fast paths that are pure data movement or order-preserving adds:
    /// forced-SIMD output must equal forced-scalar output bitwise,
    /// including the tail columns past the last full lane.
    #[test]
    fn elementwise_kernels_match_scalar_bitwise(
        rows in 1usize..20,
        cols in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::uniform(rows, cols, 3.0, &mut rng);
        let bias_m = Matrix::uniform(1, cols, 1.0, &mut rng);
        let bias = bias_m.row(0);
        with_dispatch_lock(|| {
            simd::set_forced(Some(false));
            let mut pre_scalar = x.clone();
            let mut act_scalar = Matrix::zeros(0, 0);
            add_bias_gelu(&mut pre_scalar, bias, &mut act_scalar);
            let sums_scalar = x.col_sums();
            let t_scalar = x.transpose();

            simd::set_forced(Some(true));
            let mut pre_simd = x.clone();
            let mut act_simd = Matrix::zeros(0, 0);
            add_bias_gelu(&mut pre_simd, bias, &mut act_simd);
            let sums_simd = x.col_sums();
            let t_simd = x.transpose();

            prop_assert_eq!(pre_simd.max_abs_diff(&pre_scalar), 0.0, "pre-activation diverged");
            prop_assert_eq!(act_simd.max_abs_diff(&act_scalar), 0.0, "activation diverged");
            for (c, (s, r)) in sums_simd.iter().zip(&sums_scalar).enumerate() {
                prop_assert_eq!(s.to_bits(), r.to_bits(), "col_sums diverged at column {}", c);
            }
            prop_assert_eq!(t_simd.max_abs_diff(&t_scalar), 0.0, "transpose diverged");
        });
    }
}

/// The tentpole invariant end to end: a product big enough to engage the
/// row-split pool gives the same bits at every thread count with SIMD
/// forced on, forced off, and auto — so `JANUS_THREADS` and `JANUS_SIMD`
/// can be set freely without perturbing a single weight.
#[test]
fn simd_and_thread_count_never_change_output_bits() {
    let mut rng = StdRng::seed_from_u64(23);
    // 96·160·104 ≈ 1.6M multiply-adds — past the parallel threshold,
    // with m, k, n all off the tile grid so every remainder path runs.
    let a = Matrix::uniform(96, 160, 1.0, &mut rng);
    let b = Matrix::uniform(160, 104, 1.0, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();
    let reference = matmul_reference(&a, &b);

    with_dispatch_lock(|| {
        for threads in [1usize, 2, 8] {
            pool::set_threads(threads);
            for mode in MODES {
                simd::set_forced(mode);
                assert_eq!(
                    a.matmul(&b).max_abs_diff(&reference),
                    0.0,
                    "NN diverged at {threads} threads under {mode:?}"
                );
                assert_eq!(
                    at.matmul_tn(&b).max_abs_diff(&reference),
                    0.0,
                    "TN diverged at {threads} threads under {mode:?}"
                );
                assert_eq!(
                    a.matmul_nt(&bt).max_abs_diff(&reference),
                    0.0,
                    "NT diverged at {threads} threads under {mode:?}"
                );
            }
        }
        pool::set_threads(0);
    });
}
