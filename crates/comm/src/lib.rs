//! Message-passing runtime for the numerical Janus engines.
//!
//! The paper implements pull-based communication on top of BytePS
//! `send`/`recv` with a socket control plane and an RDMA data plane
//! (§6). This crate provides the equivalent runtime at laptop scale:
//!
//! * [`message`] — the wire vocabulary: pull requests, expert payloads,
//!   pre-reduced gradients, token dispatch/return, barriers.
//! * [`codec`] — a compact binary encoding plus length-prefixed framing
//!   (`u32` big-endian header) over any `Read`/`Write` pair.
//! * [`transport`] — the [`Transport`] trait: rank-addressed reliable
//!   message delivery.
//! * [`local`] — an in-process mesh over crossbeam channels (default for
//!   tests and the numerical-equivalence engines).
//! * [`tcp`] — a real TCP full mesh over `std::net` with one reader
//!   thread per peer; exercises the framing path end to end.
//! * [`comm`] — [`comm::Comm`], a matching receiver over any transport
//!   (out-of-order messages are buffered until someone asks for them).
//! * [`collectives`] — All-to-All, barrier, and gather-to-owner built on
//!   `Comm`, used by the expert-centric baseline engine.
//! * [`faulty`] — a fault-injection wrapper (seeded drops, delays,
//!   duplicates, partition windows, cross-peer reordering) for stressing
//!   protocol assumptions.
//! * [`reliable`] — seq/ack/retransmit reliability restoring exactly-once
//!   per-pair FIFO delivery over any lossy transport.
//! * [`liveness`] — heartbeats, a mesh-wide health board, and the
//!   [`LivenessMonitor`] wrapper that turns dead peers into
//!   [`CommError::PeerDead`] instead of hangs.
//! * [`runtime`] — scoped worker threads, one per simulated GPU; a
//!   panicking worker is reported to the health board so peers fail
//!   fast.
//!
//! All transports record spans / counters / byte histograms into the
//! global `janus-obs` recorder when it is enabled (see the private `obs`
//! module); when disabled — the default — each hook is a single relaxed
//! atomic load.
//!
//! ```
//! use janus_comm::runtime::run_workers;
//! use janus_comm::collectives::all_to_all;
//!
//! let outputs = run_workers(3, |comm| {
//!     let chunks: Vec<Vec<u8>> =
//!         (0..3).map(|peer| vec![comm.rank() as u8, peer as u8]).collect();
//!     let received = all_to_all(&comm, 0, chunks).unwrap();
//!     received.iter().map(|c| c[0] as usize).sum::<usize>()
//! });
//! assert_eq!(outputs, vec![3, 3, 3]); // each rank heard from 0+1+2
//! ```

pub mod codec;
pub mod collectives;
pub mod comm;
pub mod faulty;
pub mod liveness;
pub mod local;
pub mod message;
pub(crate) mod obs;
pub mod reliable;
pub mod runtime;
pub mod tcp;
pub mod transport;

pub use comm::Comm;
pub use faulty::{CrashAt, CrashPoint, FaultPlan, FaultyTransport, Partition};
pub use liveness::{DeathHandle, HealthBoard, LivenessConfig, LivenessMonitor};
pub use message::Message;
pub use reliable::{ReliableTransport, RetransmitPolicy};
pub use transport::{seeded_jitter, CommError, Transport, TransportStats};
