//! The `repro serve` SLO report: does p99 improve as replicas scale?
//!
//! Two sweeps over replica budgets, same workload and same
//! histogram-derived plans:
//!
//! * **sim** — the `janus-netsim` model of [`crate::sim`]. Fully
//!   deterministic; its latencies are pinned by the golden test and
//!   verified bitwise by `repro lab --verify`.
//! * **real** — the actual engine over localhost TCP with
//!   heartbeat-monitored endpoints, open-loop paced arrivals, and an
//!   emulated per-token service floor. Structural fields (completions,
//!   failures, redispatches) are deterministic; the measured latency
//!   fields are wall-clock and therefore listed in [`MASKED_KEYS`], the
//!   keys the lab manifest masks before digesting.

use std::time::Duration;

use janus_comm::liveness::{monitor_mesh, LivenessConfig};
use janus_comm::tcp::tcp_mesh_localhost;
use serde::Serialize;

use crate::engine::{plan_from_workload, serve_on, ServeOpts, ServeSpec};
use crate::model::ServeModel;
use crate::sim::{pct, simulate_serving, SimOpts};
use crate::workload::{ServeConfig, ServeWorkload};

/// JSON keys of the report that hold wall-clock measurements — masked
/// by the lab manifest (and the golden test) before hashing.
pub const MASKED_KEYS: &[&str] = &["p50_us", "p99_us", "mean_us"];

/// One simulated sweep point (deterministic, verified bitwise).
#[derive(Debug, Clone, Serialize)]
pub struct SimRow {
    /// Total replica budget.
    pub budget: usize,
    /// Apportioned replicas per expert.
    pub counts: Vec<usize>,
    /// Replicas the hottest expert (expert 0) received.
    pub hot_replicas: usize,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// Tail latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

/// One real-engine sweep point over localhost TCP.
#[derive(Debug, Clone, Serialize)]
pub struct RealRow {
    /// Total replica budget.
    pub budget: usize,
    /// Apportioned replicas per expert.
    pub counts: Vec<usize>,
    /// Requests completed (must equal the stream length).
    pub completed: usize,
    /// Expert workers that died (must be 0 without fault injection).
    pub failed_workers: usize,
    /// Chunks re-dispatched after failover (0 without fault injection).
    pub redispatches: u64,
    /// Median latency, microseconds (wall clock — masked).
    pub p50_us: u64,
    /// Tail latency, microseconds (wall clock — masked).
    pub p99_us: u64,
    /// Mean latency, microseconds (wall clock — masked).
    pub mean_us: u64,
}

/// The full SLO artifact.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    /// Experts in the layer.
    pub experts: usize,
    /// Gate fan-out.
    pub top_k: usize,
    /// Zipf exponent of the workload.
    pub zipf: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Requests in the stream.
    pub requests: usize,
    /// Tokens per request.
    pub tokens_per_request: usize,
    /// Observed gate histogram (token slots per expert).
    pub hist: Vec<usize>,
    /// Simulated latency sweep over replica budgets.
    pub sim: Vec<SimRow>,
    /// Real-engine sweep over replica budgets (localhost TCP).
    pub real: Vec<RealRow>,
    /// Whether simulated p99 at the largest budget beat the smallest —
    /// the headline claim of the serving plane.
    pub sim_p99_improves: bool,
}

/// The scenario `repro serve` reports on.
pub fn report_config() -> ServeConfig {
    ServeConfig {
        requests: 48,
        ..ServeConfig::small()
    }
}

/// Replica budgets of the simulated sweep.
pub const SIM_BUDGETS: &[usize] = &[4, 8, 12];
/// Replica budgets of the real TCP sweep (kept small: each budget is a
/// live mesh of `budget + 1` OS threads).
pub const REAL_BUDGETS: &[usize] = &[4, 6, 8];

/// Build the full report: simulated sweep plus real TCP sweep.
pub fn build() -> SloReport {
    build_with(&report_config(), SIM_BUDGETS, REAL_BUDGETS)
}

/// [`build`] with explicit scenario and budgets. `real_budgets` may be
/// empty to skip the TCP runs (used by tests that only pin the
/// deterministic half).
pub fn build_with(cfg: &ServeConfig, sim_budgets: &[usize], real_budgets: &[usize]) -> SloReport {
    let model = ServeModel::new(cfg);
    let wl = ServeWorkload::generate(cfg);
    let (hist, _) = plan_from_workload(&model, &wl, cfg.experts);
    let sim: Vec<SimRow> = sim_budgets
        .iter()
        .map(|&budget| {
            let (_, plan) = plan_from_workload(&model, &wl, budget);
            let p = simulate_serving(&model, &wl, &plan.counts, &SimOpts::default());
            SimRow {
                budget,
                hot_replicas: p.counts[0],
                counts: p.counts,
                p50_ms: p.p50_ms,
                p99_ms: p.p99_ms,
                mean_ms: p.mean_ms,
            }
        })
        .collect();
    let real = real_budgets
        .iter()
        .map(|&budget| real_point(cfg, &model, &wl, budget))
        .collect();
    let sim_p99_improves = sim
        .first()
        .zip(sim.last())
        .map(|(a, b)| b.p99_ms < a.p99_ms)
        .unwrap_or(false);
    SloReport {
        experts: cfg.experts,
        top_k: cfg.top_k,
        zipf: cfg.zipf,
        seed: cfg.seed,
        requests: cfg.requests,
        tokens_per_request: cfg.tokens_per_request,
        hist,
        sim,
        real,
        sim_p99_improves,
    }
}

/// One real run: the engine over heartbeat-monitored localhost TCP,
/// open-loop paced arrivals, emulated service floor.
fn real_point(cfg: &ServeConfig, model: &ServeModel, wl: &ServeWorkload, budget: usize) -> RealRow {
    let (_, plan) = plan_from_workload(model, wl, budget);
    let endpoints = tcp_mesh_localhost(plan.world()).expect("localhost TCP mesh");
    let mesh = monitor_mesh(
        endpoints,
        LivenessConfig::heartbeats(8, Duration::from_secs(5)),
    );
    let spec = ServeSpec {
        model,
        workload: wl,
        plan: &plan,
        max_batch_tokens: cfg.max_batch_tokens,
        opts: ServeOpts {
            service_floor_us: 200,
            pacing_step: Some(Duration::from_millis(2)),
        },
        crash: None,
    };
    let run = serve_on(mesh, &spec);
    let mut lat: Vec<f64> = run
        .frontend
        .latencies_us
        .iter()
        .map(|&v| v as f64)
        .collect();
    lat.sort_by(f64::total_cmp);
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    RealRow {
        budget,
        counts: plan.counts.clone(),
        completed: run.frontend.responses.len(),
        failed_workers: run.workers.iter().filter(|w| w.is_err()).count(),
        redispatches: run.frontend.redispatches,
        p50_us: pct(&lat, 0.50) as u64,
        p99_us: pct(&lat, 0.99) as u64,
        mean_us: mean as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_half_is_bitwise_stable() {
        let a = build_with(&report_config(), &[4, 8], &[]);
        let b = build_with(&report_config(), &[4, 8], &[]);
        assert_eq!(a.hist, b.hist);
        for (ra, rb) in a.sim.iter().zip(&b.sim) {
            assert_eq!(ra.counts, rb.counts);
            assert_eq!(ra.p99_ms.to_bits(), rb.p99_ms.to_bits());
        }
        assert!(a.sim_p99_improves);
    }

    #[test]
    fn real_tcp_point_completes_all_requests() {
        let cfg = ServeConfig {
            requests: 12,
            ..report_config()
        };
        let report = build_with(&cfg, &[4], &[4]);
        let real = &report.real[0];
        assert_eq!(real.completed, cfg.requests);
        assert_eq!(real.failed_workers, 0);
        assert_eq!(real.redispatches, 0);
        assert!(real.p99_us >= real.p50_us);
    }
}
