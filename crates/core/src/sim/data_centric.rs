//! Data-centric MoE-block emitter: tokens stay put, experts move
//! (the Janus contribution).
//!
//! Forward, per MoE block (paper §5.1-5.3):
//!
//! 1. Every machine's Inter-Node Scheduler fetches each **external**
//!    expert exactly once into CPU memory (hierarchical communication —
//!    one NIC flow per expert per machine).
//! 2. Every worker pulls **internal** experts from its local peers over
//!    NVLink, serialized on its fetch lane, in either the naive or the
//!    staggered Algorithm 1 order, each pull guarded by a credit.
//! 3. External experts are copied from CPU memory to each GPU over PCIe;
//!    with the switch-aware strategy each PCIe pair splits the copies in
//!    half and exchanges the halves over NVLink.
//! 4. Each expert's computation starts the moment that expert arrives;
//!    computed internal experts are offloaded to CPU memory (releasing
//!    their credit) for reuse in the backward pass.
//!
//! With prefetch, pulls are rooted at iteration start instead of the
//! block's gate (Figure 10). Backward (reverse block order): non-own
//! experts are re-copied from CPU memory, gradients of internal experts
//! go straight to their owner over NVLink, and gradients of external
//! experts are pre-reduced per machine before one NIC flow per expert
//! returns them to the owner (§5.1.2).
//!
//! Whole-iteration graphs are assembled by [`crate::sim::engine`].

use crate::plan::BlockFetchPlan;
use crate::sim::common::Ctx;
use janus_moe::flops::{self, BACKWARD_FACTOR};
use janus_netsim::{PoolId, TaskId};
use janus_topology::{Location, WorkerId};
use std::collections::HashMap;

/// Data-centric scheduling options (the paper's ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct DcOpts {
    /// Staggered internal order + PCIe-switch-aware cache drain (§5.2).
    pub topo_aware: bool,
    /// Root pulls at iteration start instead of the gate (§5.3).
    pub prefetch: bool,
    /// Credit-based buffer capacity per worker (§5.1.1): how many
    /// in-flight/staged experts a GPU may hold. 16 slots cost well under
    /// a gigabyte for every model in the paper while letting the prefetch
    /// of Figure 13 stage a dozen experts ahead of the gate.
    pub credits: u32,
}

impl Default for DcOpts {
    fn default() -> Self {
        DcOpts {
            topo_aware: true,
            prefetch: true,
            credits: 16,
        }
    }
}

/// Emit the forward expert phase of MoE block `b` under the data-centric
/// paradigm. Returns the per-worker completion tasks.
#[allow(clippy::explicit_counter_loop)]
pub fn emit_fwd_block(
    ctx: &mut Ctx,
    pools: &[PoolId],
    b: usize,
    shared: &[TaskId],
    plan: &BlockFetchPlan,
    opts: DcOpts,
) -> Vec<TaskId> {
    let setup = ctx.setup;
    let cluster = &setup.cluster;
    let w_count = cluster.num_workers();
    let asg = setup.assignment(b);
    let expert_bytes = setup.model.expert_bytes();

    // 1. Machine-level external fetches (Inter-Node Scheduler).
    let mut ext_fetch: Vec<HashMap<usize, TaskId>> = vec![HashMap::new(); cluster.num_machines()];
    for machine in cluster.machines() {
        if plan.machine_external[machine.0].is_empty() {
            continue;
        }
        let dep = if opts.prefetch {
            ctx.start
        } else {
            // Requests reach the Inter-Node Scheduler when local gates
            // finish.
            let local_shared: Vec<TaskId> =
                cluster.workers_on(machine).map(|w| shared[w.0]).collect();
            ctx.join(format!("M{}/b{b}/gates", machine.0), &local_shared)
        };
        let mut seq = (b * 10_000) as i64;
        for pull in &plan.machine_external[machine.0] {
            let lane = ctx.inter_lane[machine.0];
            let t = ctx.transfer(
                Location::Gpu(pull.owner),
                Location::CpuMem(machine),
                expert_bytes,
                format!("M{}/b{b}/ep{}/fetch-ext", machine.0, pull.expert),
                seq,
                Some(lane),
                &[dep],
            );
            ext_fetch[machine.0].insert(pull.expert, t);
            seq += 1;
        }
    }

    // 2-4. Per-worker fetch pipelines and expert computation. First pass
    // covers own, internal, and PCIe-drained external experts; PCIe
    // copies are recorded so siblings can depend on them.
    let mut pcie_copy: Vec<HashMap<usize, TaskId>> = vec![HashMap::new(); w_count];
    let mut per_worker_done: Vec<Vec<TaskId>> = vec![Vec::new(); w_count];

    for w in 0..w_count {
        let wp = &plan.workers[w];
        let machine = cluster.machine_of(WorkerId(w));
        let pull_root = if opts.prefetch { ctx.start } else { shared[w] };
        let mut seq: i64 = (b * 10_000) as i64;

        // Own experts: compute as soon as the gate is done.
        for &e in &wp.own {
            let t = expert_compute(ctx, b, w, e, asg.tokens(w, e), false, &[shared[w]], seq);
            per_worker_done[w].push(t);
            seq += 1;
        }

        // Internal pulls over NVLink.
        for pull in &wp.internal {
            let acq = ctx.acquire(pools[w], seq, &[pull_root]);
            let t = ctx.transfer(
                Location::Gpu(pull.owner),
                Location::Gpu(WorkerId(w)),
                expert_bytes,
                format!("w{w}/b{b}/ep{}/pull-int", pull.expert),
                seq,
                Some(ctx.fetch_lane[w]),
                &[acq],
            );
            let comp = expert_compute(
                ctx,
                b,
                w,
                pull.expert,
                asg.tokens(w, pull.expert),
                false,
                &[t, shared[w]],
                seq,
            );
            // Offload to CPU memory for backward reuse, then free the
            // buffer slot.
            let off = ctx.transfer(
                Location::Gpu(WorkerId(w)),
                Location::CpuMem(machine),
                expert_bytes,
                format!("w{w}/b{b}/ep{}/offload", pull.expert),
                seq,
                None,
                &[comp],
            );
            ctx.release(pools[w], &[off]);
            per_worker_done[w].push(comp);
            seq += 1;
        }

        // External experts this worker drains from the CPU cache.
        for &e in &wp.external_pcie {
            let fetch = ext_fetch[machine.0][&e];
            let acq = ctx.acquire(pools[w], seq, &[pull_root]);
            let copy = ctx.transfer(
                Location::CpuMem(machine),
                Location::Gpu(WorkerId(w)),
                expert_bytes,
                format!("w{w}/b{b}/ep{e}/copy-s2"),
                seq,
                Some(ctx.fetch_lane[w]),
                &[acq, fetch],
            );
            pcie_copy[w].insert(e, copy);
            let comp = expert_compute(
                ctx,
                b,
                w,
                e,
                asg.tokens(w, e),
                false,
                &[copy, shared[w]],
                seq,
            );
            // External weights stay in the CPU cache for backward; just
            // free the buffer slot after computing.
            ctx.release(pools[w], &[comp]);
            per_worker_done[w].push(comp);
            seq += 1;
        }
    }

    // Second pass: peer-shared external experts (the PCIe-switch-aware
    // NVLink hand-off), which depend on the sibling's copies.
    for w in 0..w_count {
        let wp = &plan.workers[w];
        if wp.external_peer.is_empty() {
            continue;
        }
        let peer = cluster
            .pcie_peer(WorkerId(w))
            .expect("external_peer non-empty requires a PCIe sibling");
        let pull_root = if opts.prefetch { ctx.start } else { shared[w] };
        let mut seq: i64 = (b * 10_000 + 5_000) as i64;
        for &e in &wp.external_peer {
            let sibling_copy = pcie_copy[peer.0][&e];
            let acq = ctx.acquire(pools[w], seq, &[pull_root]);
            let t = ctx.transfer(
                Location::Gpu(peer),
                Location::Gpu(WorkerId(w)),
                ctx.setup.model.expert_bytes(),
                format!("w{w}/b{b}/ep{e}/pull-peer"),
                seq,
                Some(ctx.fetch_lane[w]),
                &[acq, sibling_copy],
            );
            let comp = expert_compute(ctx, b, w, e, asg.tokens(w, e), false, &[t, shared[w]], seq);
            ctx.release(pools[w], &[comp]);
            per_worker_done[w].push(comp);
            seq += 1;
        }
    }

    (0..w_count)
        .map(|w| {
            let mut deps = per_worker_done[w].clone();
            deps.push(shared[w]);
            ctx.join(format!("w{w}/b{b}/fwd-done"), &deps)
        })
        .collect()
}

/// Emit the backward expert phase of MoE block `b` under the data-centric
/// paradigm. Returns per-worker tasks gating this block's shared
/// backward; the final join also waits for all gradient flows of the
/// block to land at their owners.
#[allow(clippy::explicit_counter_loop)]
pub fn emit_bwd_block(
    ctx: &mut Ctx,
    pools: &[PoolId],
    b: usize,
    prev: &[TaskId],
    plan: &BlockFetchPlan,
    _opts: DcOpts,
) -> (Vec<TaskId>, Vec<TaskId>) {
    let setup = ctx.setup;
    let cluster = &setup.cluster;
    let w_count = cluster.num_workers();
    let blocks = setup.model.blocks.len();
    let asg = setup.assignment(b);
    let expert_bytes = setup.model.expert_bytes();
    let experts_total = asg.experts();

    let mut grad_acc: Vec<HashMap<usize, Vec<TaskId>>> =
        vec![HashMap::new(); cluster.num_machines()];
    let mut per_worker_done: Vec<Vec<TaskId>> = vec![Vec::new(); w_count];
    let mut grad_flows: Vec<TaskId> = Vec::new();

    for w in 0..w_count {
        let wp = &plan.workers[w];
        let machine = cluster.machine_of(WorkerId(w));
        let mut seq = (100_000 + (blocks - b) * 10_000) as i64;

        // Own experts: backward directly; the gradient stays local.
        for &e in &wp.own {
            let comp = expert_compute(ctx, b, w, e, asg.tokens(w, e), true, &[prev[w]], seq);
            per_worker_done[w].push(comp);
            seq += 1;
        }

        // Every non-own expert: copy its weights back from CPU memory
        // (offloaded internal + cached external), compute, then emit the
        // gradient.
        let non_own: Vec<usize> = wp
            .internal
            .iter()
            .map(|p| p.expert)
            .chain(wp.external_pcie.iter().copied())
            .chain(wp.external_peer.iter().copied())
            .collect();
        for e in non_own {
            let acq = ctx.acquire(pools[w], seq, &[prev[w]]);
            let copy = ctx.transfer(
                Location::CpuMem(machine),
                Location::Gpu(WorkerId(w)),
                expert_bytes,
                format!("w{w}/b{b}/ep{e}/copy-bwd"),
                seq,
                Some(ctx.fetch_lane[w]),
                &[acq],
            );
            let comp = expert_compute(ctx, b, w, e, asg.tokens(w, e), true, &[copy, prev[w]], seq);
            ctx.release(pools[w], &[comp]);
            per_worker_done[w].push(comp);

            let owner = crate::plan::expert_owner(e, experts_total, w_count);
            if cluster.machine_of(owner) == machine {
                // Internal expert: gradient straight to the owner over
                // NVLink.
                let g = ctx.transfer(
                    Location::Gpu(WorkerId(w)),
                    Location::Gpu(owner),
                    expert_bytes,
                    format!("w{w}/b{b}/ep{e}/grad-int"),
                    seq,
                    None,
                    &[comp],
                );
                grad_flows.push(g);
            } else {
                // External expert: contribute to the machine's
                // pre-reduction.
                let g = ctx.transfer(
                    Location::Gpu(WorkerId(w)),
                    Location::CpuMem(machine),
                    expert_bytes,
                    format!("w{w}/b{b}/ep{e}/grad-acc"),
                    seq,
                    None,
                    &[comp],
                );
                grad_acc[machine.0].entry(e).or_default().push(g);
            }
            seq += 1;
        }
    }

    // Pre-reduced gradients: one NIC flow per (machine, external expert)
    // back to the owner.
    for machine in cluster.machines() {
        let mut entries: Vec<(usize, Vec<TaskId>)> = grad_acc[machine.0].drain().collect();
        entries.sort_by_key(|(e, _)| *e);
        for (e, contribs) in entries {
            debug_assert_eq!(contribs.len(), cluster.gpus_per_machine());
            let owner = crate::plan::expert_owner(e, experts_total, w_count);
            let g = ctx.transfer(
                Location::CpuMem(machine),
                Location::Gpu(owner),
                expert_bytes,
                format!("M{}/b{b}/ep{e}/grad-ext", machine.0),
                0,
                None,
                &contribs,
            );
            grad_flows.push(g);
        }
    }

    let gates: Vec<TaskId> = (0..w_count)
        .map(|w| {
            let mut deps = per_worker_done[w].clone();
            deps.push(prev[w]);
            ctx.join(format!("w{w}/b{b}/experts-bwd"), &deps)
        })
        .collect();
    (gates, grad_flows)
}

/// One expert's (forward or backward) computation on worker `w`.
#[allow(clippy::too_many_arguments)]
fn expert_compute(
    ctx: &mut Ctx,
    b: usize,
    w: usize,
    e: usize,
    tokens: usize,
    backward: bool,
    deps: &[TaskId],
    priority: i64,
) -> TaskId {
    let mut f = flops::expert_fwd_flops(&ctx.setup.model, tokens);
    let tag = if backward { "bwd" } else { "fwd" };
    if backward {
        f *= BACKWARD_FACTOR;
    }
    ctx.compute(w, f, format!("w{w}/b{b}/ep{e}/{tag}"), priority, deps)
}
