//! Offline shim for `bytes`: cheaply-clonable immutable byte views
//! ([`Bytes`]), an append buffer ([`BytesMut`]), and the [`Buf`]/[`BufMut`]
//! accessor traits. Matches the upstream wire conventions the repo uses:
//! multi-byte integers big-endian, `_le` variants little-endian.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply clonable byte slice (shared backing storage plus a
/// `[start, end)` window). Reading through [`Buf`] advances `start`.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty bytes.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view relative to the current view (shares storage).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off the first `at` bytes as a new `Bytes`, advancing this
    /// view past them (shares storage, like upstream).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} of {}",
            self.len()
        );
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the remaining view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// New `Bytes` holding a copy of `data` (upstream API; the copy is
    /// the point — the caller keeps its buffer).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer for building wire payloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side accessors; multi-byte integers big-endian unless `_le`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write-side accessors; multi-byte integers big-endian unless `_le`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(42);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 4 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEADBEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_f32_le(), 1.5);
        let mut rest = [0u8; 2];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slices_share_and_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_and_advance() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b, Bytes::from(vec![9, 8, 7]));
        b.advance(1);
        assert_eq!(b, [8, 7]);
        assert_eq!(b.to_vec(), vec![8, 7]);
    }
}
