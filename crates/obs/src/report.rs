//! Derived analysis over a recorded trace: compute/comm overlap,
//! per-link utilization, pull-latency percentiles.
//!
//! Overlap is the paper's headline quantity (§5.1.1): Janus hides expert
//! pulls behind expert compute, so for each rank we take the union of
//! `compute` spans and the union of `comm`/`transport` spans and measure
//! their intersection. `overlap_fraction` = overlapped-comm-time /
//! total-comm-time, i.e. how much of the communication was hidden.

use crate::trace::TraceEvent;
use serde::Serialize;

/// Overlap accounting for one rank.
#[derive(Debug, Clone, Serialize)]
pub struct RankOverlap {
    pub rank: u32,
    /// Union of compute spans, µs.
    pub compute_us: f64,
    /// Union of comm + transport spans, µs.
    pub comm_us: f64,
    /// Intersection of the two unions, µs.
    pub overlap_us: f64,
    /// `overlap_us / comm_us` (0 when no comm).
    pub overlap_fraction: f64,
}

/// Utilization of one simulated link.
#[derive(Debug, Clone, Serialize)]
pub struct LinkUtil {
    pub link: String,
    pub bytes: f64,
    /// Busy time / makespan in [0, 1].
    pub utilization: f64,
}

/// Trace-derived summary surfaced on `TrainRun` and by `repro trace`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OverlapReport {
    pub ranks: Vec<RankOverlap>,
    /// Filled by the simulator conversion; empty for numerical runs
    /// (in-process transports have no modelled links).
    pub links: Vec<LinkUtil>,
    pub pull_p50_us: f64,
    pub pull_p95_us: f64,
    pub pull_p99_us: f64,
    pub pull_samples: usize,
}

impl OverlapReport {
    /// Compute the report from recorded spans.
    ///
    /// Spans with category `compute` count as compute; `comm` and
    /// `transport` count as communication; pull latency percentiles come
    /// from spans whose name starts with `pull/`.
    pub fn from_events(events: &[TraceEvent]) -> OverlapReport {
        let mut ranks: Vec<u32> = events.iter().map(|e| e.pid).collect();
        ranks.sort_unstable();
        ranks.dedup();

        let per_rank = ranks
            .iter()
            .map(|&rank| {
                let compute = union_intervals(events, rank, &["compute"]);
                let comm = union_intervals(events, rank, &["comm", "transport"]);
                let compute_us = total(&compute);
                let comm_us = total(&comm);
                let overlap_us = intersection_total(&compute, &comm);
                RankOverlap {
                    rank,
                    compute_us,
                    comm_us,
                    overlap_us,
                    overlap_fraction: if comm_us > 0.0 {
                        overlap_us / comm_us
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        let mut pulls: Vec<f64> = events
            .iter()
            .filter(|e| e.name.starts_with("pull/"))
            .map(|e| e.dur_us)
            .collect();
        pulls.sort_by(f64::total_cmp);

        OverlapReport {
            ranks: per_rank,
            links: Vec::new(),
            pull_p50_us: percentile(&pulls, 0.50),
            pull_p95_us: percentile(&pulls, 0.95),
            pull_p99_us: percentile(&pulls, 0.99),
            pull_samples: pulls.len(),
        }
    }

    /// Nearest-rank percentile of a **sorted** sample list: the value at
    /// rank `⌈q·n⌉` (1-based, clamped to `[1, n]`), 0 when empty. This
    /// is the estimator behind every latency percentile the crate
    /// reports.
    pub fn percentile(sorted: &[f64], q: f64) -> f64 {
        percentile(sorted, q)
    }

    /// Render as a human-readable block (used by `repro trace`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("overlap report\n");
        out.push_str("  rank  compute_us      comm_us   overlap_us  hidden\n");
        for r in &self.ranks {
            out.push_str(&format!(
                "  {:>4}  {:>10.1}  {:>11.1}  {:>11.1}  {:>5.1}%\n",
                r.rank,
                r.compute_us,
                r.comm_us,
                r.overlap_us,
                r.overlap_fraction * 100.0
            ));
        }
        out.push_str(&format!(
            "  pull latency (n={}): p50 {:.1}us  p95 {:.1}us  p99 {:.1}us\n",
            self.pull_samples, self.pull_p50_us, self.pull_p95_us, self.pull_p99_us
        ));
        if !self.links.is_empty() {
            out.push_str("  link utilization:\n");
            for l in &self.links {
                out.push_str(&format!(
                    "    {:<12} {:>12.0} bytes  {:>5.1}%\n",
                    l.link,
                    l.bytes,
                    l.utilization * 100.0
                ));
            }
        }
        out
    }
}

/// Merged, sorted half-open intervals `[start, end)` for one rank over a
/// set of categories.
fn union_intervals(events: &[TraceEvent], rank: u32, cats: &[&str]) -> Vec<(f64, f64)> {
    let mut spans: Vec<(f64, f64)> = events
        .iter()
        .filter(|e| e.pid == rank && cats.contains(&e.cat.as_str()) && e.dur_us > 0.0)
        .map(|e| (e.ts_us, e.end_us()))
        .collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

fn total(intervals: &[(f64, f64)]) -> f64 {
    intervals.iter().map(|(s, e)| e - s).sum()
}

/// Total length of the intersection of two merged interval lists.
fn intersection_total(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Nearest-rank percentile of a sorted sample list (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: &str, pid: u32, ts: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid: "t".into(),
            ts_us: ts,
            dur_us: dur,
        }
    }

    #[test]
    fn overlap_counts_intersection_only() {
        // compute [0,10), comm [5,15): overlap 5, fraction 0.5.
        let events = vec![
            ev("fwd/b0/e0", "compute", 0, 0.0, 10.0),
            ev("pull/b0/e1", "comm", 0, 5.0, 10.0),
        ];
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.ranks.len(), 1);
        let rk = &r.ranks[0];
        assert!((rk.compute_us - 10.0).abs() < 1e-9);
        assert!((rk.comm_us - 10.0).abs() < 1e-9);
        assert!((rk.overlap_us - 5.0).abs() < 1e-9);
        assert!((rk.overlap_fraction - 0.5).abs() < 1e-9);
        assert_eq!(r.pull_samples, 1);
        assert!((r.pull_p50_us - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unions_merge_overlapping_spans() {
        // Two overlapping compute spans on rank 1 union to [0, 8).
        let events = vec![
            ev("a", "compute", 1, 0.0, 5.0),
            ev("b", "compute", 1, 3.0, 5.0),
            ev("c", "comm", 1, 100.0, 2.0),
        ];
        let r = OverlapReport::from_events(&events);
        let rk = &r.ranks[0];
        assert!((rk.compute_us - 8.0).abs() < 1e-9);
        assert!((rk.comm_us - 2.0).abs() < 1e-9);
        assert_eq!(rk.overlap_us, 0.0);
        assert_eq!(rk.overlap_fraction, 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut events = Vec::new();
        for i in 1..=100u32 {
            events.push(ev(&format!("pull/b0/e{i}"), "comm", 0, 0.0, i as f64));
        }
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.pull_samples, 100);
        assert!((r.pull_p50_us - 50.0).abs() < 1e-9);
        assert!((r.pull_p95_us - 95.0).abs() < 1e-9);
        assert!((r.pull_p99_us - 99.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: defined as 0 regardless of q.
        assert_eq!(OverlapReport::percentile(&[], 0.0), 0.0);
        assert_eq!(OverlapReport::percentile(&[], 0.5), 0.0);
        assert_eq!(OverlapReport::percentile(&[], 1.0), 0.0);
        // Single sample: every quantile is that sample.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(OverlapReport::percentile(&[7.0], q), 7.0);
        }
        // Exact-rank boundaries on n=4: q·n landing exactly on an
        // integer rank selects that rank (nearest-rank, not
        // interpolated), and the rank clamps to [1, n].
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(OverlapReport::percentile(&s, 0.25), 1.0);
        assert_eq!(OverlapReport::percentile(&s, 0.2500001), 2.0);
        assert_eq!(OverlapReport::percentile(&s, 0.5), 2.0);
        assert_eq!(OverlapReport::percentile(&s, 0.75), 3.0);
        assert_eq!(OverlapReport::percentile(&s, 1.0), 4.0);
        // q ≤ 0 clamps to the first sample, q > 1 to the last.
        assert_eq!(OverlapReport::percentile(&s, 0.0), 1.0);
        assert_eq!(OverlapReport::percentile(&s, -1.0), 1.0);
        assert_eq!(OverlapReport::percentile(&s, 2.0), 4.0);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let r = OverlapReport::from_events(&[]);
        assert!(r.ranks.is_empty());
        assert_eq!(r.pull_samples, 0);
        assert_eq!(r.pull_p50_us, 0.0);
        let text = r.render();
        assert!(text.contains("overlap report"));
    }
}
