//! Micro-benchmarks of the substrate crates: the fair allocator, the
//! simulator core, the gate/workload generators, tensor kernels, and the
//! wire codecs.

use criterion::{criterion_group, criterion_main, Criterion};
use janus_comm::collectives::all_to_all;
use janus_comm::runtime::run_workers;
use janus_comm::Message;
use janus_core::exec::model::{ExecConfig, WorkerState};
use janus_core::exec::weights::{expert_from_bytes, expert_to_bytes};
use janus_core::plan::fetch_plan;
use janus_moe::expert::ExpertFfn;
use janus_moe::gate::TopKGate;
use janus_moe::workload::{AssignmentMatrix, Imbalance};
use janus_netsim::fair::max_min_rates;
use janus_netsim::{simulate, GraphBuilder, Work};
use janus_tensor::Matrix;
use janus_topology::{ClusterSpec, LinkId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fair(c: &mut Criterion) {
    // 64 flows over 32 links, structured like a fetch burst.
    let flows: Vec<Vec<LinkId>> = (0..64)
        .map(|i| vec![LinkId(i % 32), LinkId((i * 7 + 3) % 32)])
        .collect();
    let caps = vec![25e9; 32];
    c.bench_function("fair_max_min_64_flows", |b| {
        b.iter(|| black_box(max_min_rates(black_box(&flows), black_box(&caps))))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let build = || {
        let mut g = GraphBuilder::new(8, 0);
        let lanes: Vec<_> = (0..4).map(|_| g.lane()).collect();
        let pool = g.pool(2);
        for i in 0..200 {
            let a = g.task(Work::AcquireCredits { pool, amount: 1 }, &[]);
            let t = g.task(
                Work::Transfer {
                    route: vec![LinkId(i % 8)],
                    bytes: 1e6,
                    lane: Some(lanes[i % 4]),
                    latency: 1e-4,
                },
                &[a],
            );
            let comp = g.task(
                Work::Compute {
                    lane: lanes[i % 4],
                    duration: 1e-4,
                },
                &[t],
            );
            g.task(Work::ReleaseCredits { pool, amount: 1 }, &[comp]);
        }
        g.build()
    };
    let graph = build();
    let caps = vec![25e9; 8];
    c.bench_function("simulate_200_task_pipeline", |b| {
        b.iter(|| black_box(simulate(black_box(&graph), black_box(&caps)).unwrap()))
    });
}

fn bench_workload_and_gate(c: &mut Criterion) {
    c.bench_function("workload_zipf_assignment", |b| {
        b.iter(|| {
            black_box(AssignmentMatrix::generate(
                32,
                32,
                4096,
                Imbalance::Zipf(0.3),
                7,
            ))
        })
    });
    let mut rng = StdRng::seed_from_u64(1);
    let gate = TopKGate::new(64, 16, 2, &mut rng);
    let x = Matrix::uniform(256, 64, 1.0, &mut rng);
    c.bench_function("gate_route_256_tokens", |b| {
        b.iter(|| black_box(gate.route(black_box(&x))))
    });
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::uniform(128, 128, 1.0, &mut rng);
    let bm = Matrix::uniform(128, 128, 1.0, &mut rng);
    c.bench_function("matmul_128", |b| {
        b.iter(|| black_box(a.matmul(black_box(&bm))))
    });
    let expert = ExpertFfn::new(64, &mut rng);
    let x = Matrix::uniform(128, 64, 1.0, &mut rng);
    c.bench_function("expert_forward_128x64", |b| {
        b.iter(|| black_box(expert.forward(black_box(&x))))
    });
}

fn bench_plan(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(4, 8).build();
    c.bench_function("fetch_plan_32_workers", |b| {
        b.iter(|| black_box(fetch_plan(black_box(&cluster), 32, true)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let expert = ExpertFfn::new(64, &mut rng);
    c.bench_function("expert_serialize", |b| {
        b.iter(|| black_box(expert_to_bytes(black_box(&expert))))
    });
    let blob = expert_to_bytes(&expert);
    c.bench_function("expert_deserialize", |b| {
        b.iter(|| black_box(expert_from_bytes(black_box(blob.clone())).unwrap()))
    });
    let msg = Message::ExpertPayload {
        block: 1,
        expert: 2,
        nonce: 0,
        data: blob,
    };
    c.bench_function("message_encode_decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(msg.encode())).unwrap()))
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("local_all_to_all_4_workers", |b| {
        b.iter(|| {
            run_workers(4, |comm| {
                all_to_all(&comm, 0, vec![vec![0u8; 1024]; 4])
                    .unwrap()
                    .len()
            })
        })
    });
}

fn bench_numerical_iteration(c: &mut Criterion) {
    let cfg = ExecConfig::small();
    c.bench_function("exec_expert_centric_iteration", |b| {
        b.iter(|| {
            run_workers(cfg.world(), |comm| {
                let mut state = WorkerState::init(&cfg, comm.rank());
                janus_core::exec::expert_centric::run_iteration(&comm, &mut state, 0)
                    .unwrap()
                    .loss
            })
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_fair, bench_simulate, bench_workload_and_gate, bench_tensor,
        bench_plan, bench_codec, bench_collectives, bench_numerical_iteration
}
criterion_main!(substrates);
