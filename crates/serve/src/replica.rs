//! Gate-driven expert replica scaling.
//!
//! Serving flips the paper's load-balance problem around: the gate's
//! token histogram is heavily Zipf-skewed and *cannot* be retrained
//! away, so the system must give hot experts more replicas. The
//! apportionment here is the D'Hondt highest-averages method over the
//! observed histogram: every expert keeps at least one replica (cold
//! experts must stay servable), and each remaining replica slot goes to
//! the expert with the largest `load / (replicas + 1)` quotient. The
//! comparison is done in integer cross-multiplication, so the result is
//! a pure function of `(histogram, budget)` — deterministic across
//! platforms and, per highest-averages theory, monotone: raising an
//! expert's observed load never loses it a replica (property-tested).

/// Per-expert replica counts for `budget` total replicas, derived from
/// the observed gate histogram. `budget >= hist.len()` so every expert
/// keeps one replica; ties go to the lower expert index.
pub fn replica_counts(hist: &[usize], budget: usize) -> Vec<usize> {
    let experts = hist.len();
    assert!(experts > 0, "at least one expert");
    assert!(
        budget >= experts,
        "budget {budget} cannot give each of {experts} experts a replica"
    );
    let mut counts = vec![1usize; experts];
    for _ in experts..budget {
        let mut best = 0usize;
        for e in 1..experts {
            // hist[e] / (counts[e] + 1) > hist[best] / (counts[best] + 1),
            // compared exactly by cross-multiplication.
            let lhs = hist[e] as u128 * (counts[best] as u128 + 1);
            let rhs = hist[best] as u128 * (counts[e] as u128 + 1);
            if lhs > rhs {
                best = e;
            }
        }
        counts[best] += 1;
    }
    counts
}

/// Replica counts plus the worker-rank placement of each replica.
///
/// Worker ranks are `1..=total` (rank 0 is the frontend); replicas are
/// laid out expert-major, so `homes[e]` lists the ranks serving expert
/// `e` and every worker serves exactly one replica. The placement is a
/// pure function of `counts`, which is what lets a frontend and a
/// crash-restarted test run agree on chunk targets without negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPlan {
    /// Replicas per expert.
    pub counts: Vec<usize>,
    /// Worker rank of each replica, `homes[expert][replica]`.
    pub homes: Vec<Vec<usize>>,
}

impl ReplicaPlan {
    /// Lay out `counts` replicas onto worker ranks `1..`.
    pub fn new(counts: Vec<usize>) -> Self {
        let mut rank = 1usize;
        let homes = counts
            .iter()
            .map(|&c| {
                let h: Vec<usize> = (0..c).map(|i| rank + i).collect();
                rank += c;
                h
            })
            .collect();
        ReplicaPlan { counts, homes }
    }

    /// Histogram-driven plan: [`replica_counts`] then placement.
    pub fn from_histogram(hist: &[usize], budget: usize) -> Self {
        ReplicaPlan::new(replica_counts(hist, budget))
    }

    /// Total replicas (== worker count).
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// World size of the serving mesh: frontend + one rank per replica.
    pub fn world(&self) -> usize {
        self.total() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_expert_keeps_one_replica() {
        let c = replica_counts(&[1000, 0, 0, 0], 6);
        assert_eq!(c.iter().sum::<usize>(), 6);
        assert!(c.iter().all(|&r| r >= 1));
        assert_eq!(c[0], 3, "all extras go to the only loaded expert");
    }

    #[test]
    fn extras_follow_load_with_index_tiebreak() {
        // Equal loads: extras land on lower indices first.
        assert_eq!(replica_counts(&[5, 5, 5], 5), vec![2, 2, 1]);
        // Skewed: quotients 8/2, 8/3, 8/4 all beat 2/2, so every extra
        // lands on the hot expert.
        assert_eq!(replica_counts(&[8, 2, 1], 6), vec![4, 1, 1]);
        // Tie case: third extra compares 6/4 = 3/2 = 1.5 and goes to the
        // lower index.
        assert_eq!(replica_counts(&[6, 3], 5), vec![4, 1]);
    }

    #[test]
    fn plan_places_replicas_expert_major() {
        let p = ReplicaPlan::new(vec![2, 1, 3]);
        assert_eq!(p.homes, vec![vec![1, 2], vec![3], vec![4, 5, 6]]);
        assert_eq!(p.total(), 6);
        assert_eq!(p.world(), 7);
    }
}
