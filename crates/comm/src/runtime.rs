//! Scoped worker threads, one per simulated GPU.

use crate::comm::Comm;
use crate::local::{local_mesh, LocalTransport};
use crate::transport::Transport;

/// Run one closure per endpoint on its own thread and collect results in
/// rank order. Panics in any worker propagate to the caller.
pub fn run_on<T, R, F>(endpoints: Vec<T>, f: F) -> Vec<R>
where
    T: Transport + 'static,
    R: Send,
    F: Fn(Comm<T>) -> R + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                std::thread::Builder::new()
                    .name(format!("worker-{rank}"))
                    .spawn_scoped(scope, move || f(Comm::new(t)))
                    .expect("spawn worker thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Run `world` workers over an in-process channel mesh.
pub fn run_workers<R, F>(world: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm<LocalTransport>) -> R + Sync,
{
    run_on(local_mesh(world), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run_workers(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn workers_can_exchange_messages() {
        let out = run_workers(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(
                peer,
                Message::Barrier {
                    epoch: comm.rank() as u64,
                },
            )
            .unwrap();
            let (from, msg) = comm.recv_any().unwrap();
            assert_eq!(from, peer);
            msg
        });
        assert_eq!(out[0], Message::Barrier { epoch: 1 });
        assert_eq!(out[1], Message::Barrier { epoch: 0 });
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        run_workers(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn runs_over_tcp_mesh_too() {
        let endpoints = crate::tcp::tcp_mesh_localhost(3).unwrap();
        let out = run_on(endpoints, |comm| {
            crate::collectives::all_to_all(&comm, 0, vec![vec![comm.rank() as u8]; 3]).unwrap()
        });
        for received in out {
            assert_eq!(received, vec![vec![0u8], vec![1u8], vec![2u8]]);
        }
    }
}
