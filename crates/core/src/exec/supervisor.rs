//! Supervised rank recovery: run the unified trainer under a driver that
//! survives worker crashes.
//!
//! The supervisor slices training into *rounds* of `ckpt_every`
//! iterations. Each round runs on a fresh transport mesh
//! (`Reliable<Faulty<Monitor<Local>>>` — fault injection above the
//! liveness monitor, so heartbeats neither perturb the fault schedule
//! nor are themselves dropped before the board sees silence). Workers
//! restore from the round's starting checkpoint cut (or initialize fresh
//! at iteration 0), run the round's iterations, and return their
//! end-of-round checkpoint bytes *in their result* — the supervisor
//! commits a cut to the [`CkptStore`] only when **every** rank finished
//! the round, so a crash can never leave a torn, partially-written cut
//! behind.
//!
//! When a rank dies (an injected [`CrashPoint`] or any other panic), the
//! runtime marks it dead on the mesh health board; peers blocked on it
//! fail fast with [`janus_comm::CommError::PeerDead`] instead of
//! hanging. The supervisor then disarms the crash points that fired,
//! counts a recovery, and replays the round from the last committed cut.
//!
//! **Why the recovered run is bitwise identical to a fault-free run:**
//! a committed cut is a bitwise snapshot of every rank's state at an
//! iteration boundary, where the end-of-iteration double barrier plus
//! transport flush guarantee no in-flight protocol state survives.
//! Replaying a round from such a cut is therefore the same deterministic
//! computation the fault-free run performs — crashed attempts mutate
//! only state that is thrown away with their mesh.

use crate::ckpt::{Checkpoint, CkptStore};
use crate::exec::data_centric::MachineShared;
use crate::exec::model::{CommSnapshot, ExecConfig, WorkerState};
use crate::exec::trainer::{collect, TrainRun};
use crate::exec::unified;
use crate::plan::{IterationPlan, PlanOpts};
use bytes::Bytes;
use janus_comm::liveness::monitor_mesh;
use janus_comm::local::local_mesh;
use janus_comm::runtime::run_on_result;
use janus_comm::{
    CrashAt, FaultPlan, FaultyTransport, LivenessConfig, ReliableTransport, RetransmitPolicy,
    Transport,
};
use janus_moe::expert::ExpertFfn;
use janus_tensor::Matrix;
use std::time::Instant;

/// The marker every injected crash panics with; the supervisor uses it
/// to tell scheduled faults from genuine worker bugs.
pub const INJECTED_CRASH_MARKER: &str = "injected crash";

/// Supervisor knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOpts {
    /// Round length: a checkpoint cut is committed every `ckpt_every`
    /// completed iterations (also the replay granularity after a crash).
    pub ckpt_every: u64,
    /// How many failed rounds the supervisor will recover from before
    /// giving up and surfacing the failure.
    pub max_recoveries: u32,
    /// Reliability policy for the per-round transport stack.
    pub retransmit: RetransmitPolicy,
    /// Liveness policy for the per-round transport stack. The default
    /// (heartbeats off) still detects panics — the runtime marks dead
    /// ranks on the health board directly; enable heartbeats to also
    /// suspect silently wedged peers.
    pub liveness: LivenessConfig,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            ckpt_every: 1,
            max_recoveries: 8,
            retransmit: RetransmitPolicy::default(),
            liveness: LivenessConfig::default(),
        }
    }
}

/// One rank's recovery bookkeeping.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct RankRecovery {
    /// Times this rank died (injected or not).
    pub crashes: u64,
    /// Checkpoints of this rank committed to the store.
    pub ckpts_written: u64,
    /// Times this rank was restored from a committed cut.
    pub ckpts_restored: u64,
}

/// What fault tolerance cost a supervised run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// Worker deaths observed (injected crashes and collateral panics).
    pub crashes: u64,
    /// Rounds replayed after a failure.
    pub recoveries: u64,
    /// Checkpoints committed to the store (ranks × cuts).
    pub ckpts_written: u64,
    /// Checkpoints restored from the store (ranks × replays that started
    /// from a committed cut).
    pub ckpts_restored: u64,
    /// Bytes of committed checkpoints.
    pub ckpt_bytes_written: u64,
    /// Bytes read back while restoring.
    pub ckpt_bytes_restored: u64,
    /// Iterations re-executed because a round failed (round length ×
    /// failed attempts).
    pub replayed_iterations: u64,
    /// Wall-clock time of each recovery (restore + replay of the failed
    /// round), in microseconds.
    pub recover_us: Vec<u64>,
    /// Per-rank breakdown.
    pub per_rank: Vec<RankRecovery>,
}

impl RecoveryReport {
    /// The `p`-th percentile (0–100) of recovery times, in microseconds.
    pub fn recover_us_percentile(&self, p: f64) -> u64 {
        if self.recover_us.is_empty() {
            return 0;
        }
        let mut sorted = self.recover_us.clone();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

/// What one rank brings back from one (successful) round.
type RoundOut = (Vec<f32>, Matrix, Vec<Vec<ExpertFfn>>, CommSnapshot, Bytes);

/// Train `iters` iterations of the unified engine under supervision,
/// injecting `faults` (including [`janus_comm::CrashPoint`]s). Returns
/// the compiled plan, the finished run, and the recovery ledger — or an
/// error once `max_recoveries` consecutive attempts have been spent.
///
/// The headline property (asserted by the chaos tests): the returned
/// run's losses, outputs, and final weights are **bitwise identical** to
/// a fault-free [`crate::exec::trainer::train_unified`] of the same
/// config, regardless of where the crashes struck.
pub fn train_supervised(
    cfg: &ExecConfig,
    opts: &PlanOpts,
    sup: &SupervisorOpts,
    iters: u64,
    faults: FaultPlan,
) -> Result<(IterationPlan, TrainRun, RecoveryReport), String> {
    assert!(
        iters > 0,
        "supervised training needs at least one iteration"
    );
    let plan = cfg.compile_plan(opts);
    let digest = plan.digest();
    let world = cfg.world();
    let round_len = sup.ckpt_every.max(1);

    let store = CkptStore::new();
    let mut pending = faults;
    let mut report = RecoveryReport {
        per_rank: vec![RankRecovery::default(); world],
        ..RecoveryReport::default()
    };
    let mut recoveries_left = sup.max_recoveries;
    // Committed progress: loss history per rank, plus the last round's
    // outputs/experts/comm (refreshed every committed round).
    let mut losses: Vec<Vec<f32>> = vec![Vec::new(); world];
    let mut comm_totals: Vec<CommSnapshot> = vec![CommSnapshot::default(); world];
    let mut last_round: Option<Vec<(Matrix, Vec<Vec<ExpertFfn>>)>> = None;
    let mut start: u64 = 0;
    // Set after a failed attempt so the next (replaying) attempt is
    // timed as the recovery.
    let mut recovering_since: Option<Instant> = None;

    while start < iters {
        let end = (start + round_len).min(iters);
        let is_replay = recovering_since.is_some();
        let results = run_round(cfg, &plan, sup, &store, &pending, digest, start, end);

        let failed: Vec<(usize, &String)> = results
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| match r {
                Err(panic_msg) => Some((rank, panic_msg)),
                Ok(_) => None,
            })
            .collect();

        if failed.is_empty() {
            // Commit: every rank finished the round, so the cut at `end`
            // is complete and becomes the new restore point.
            let mut round = Vec::with_capacity(world);
            for (rank, r) in results.into_iter().enumerate() {
                let (l, output, experts, comm, ckpt) = r.expect("no rank failed");
                losses[rank].extend(l);
                comm_totals[rank].accumulate(&comm);
                report.ckpts_written += 1;
                report.ckpt_bytes_written += ckpt.len() as u64;
                report.per_rank[rank].ckpts_written += 1;
                store.put(rank, end, ckpt);
                round.push((output, experts));
            }
            if is_replay {
                if start > 0 {
                    report.ckpts_restored += world as u64;
                    for pr in &mut report.per_rank {
                        pr.ckpts_restored += 1;
                    }
                }
                let us = recovering_since
                    .take()
                    .expect("replay rounds are timed")
                    .elapsed()
                    .as_micros() as u64;
                report.recover_us.push(us);
                janus_obs::global().observe("janus_time_to_recover_us", us);
            }
            last_round = Some(round);
            start = end;
            continue;
        }

        // At least one rank died. Disarm the crash points that fired,
        // charge the recovery budget, and replay the round. A panic
        // without the marker (a genuine bug, or collateral damage from a
        // peer's death) is replayed on the same budget: if it is
        // deterministic it will exhaust `max_recoveries` and surface.
        for (rank, msg) in &failed {
            report.crashes += 1;
            report.per_rank[*rank].crashes += 1;
            if msg.contains(INJECTED_CRASH_MARKER) {
                disarm(&mut pending, *rank, msg);
            }
        }
        if recoveries_left == 0 {
            let detail: Vec<String> = failed
                .iter()
                .map(|(rank, msg)| format!("rank {rank}: {msg}"))
                .collect();
            return Err(format!(
                "supervisor gave up after {} recoveries; last failures: {}",
                sup.max_recoveries,
                detail.join("; ")
            ));
        }
        recoveries_left -= 1;
        report.recoveries += 1;
        report.replayed_iterations += end - start;
        if start > 0 {
            report.ckpt_bytes_restored += (0..world)
                .map(|r| store.get(r, start).map_or(0, |b| b.len() as u64))
                .sum::<u64>();
        }
        // Only restores from a committed cut count; replays of round 0
        // re-initialize instead. Restores are tallied when the replay
        // commits (ckpts_restored above), bytes when it begins (here).
        janus_obs::global().count("janus_recoveries_total", 1);
        // Keep an already-running recovery timer: back-to-back failures
        // are one outage from the run's point of view.
        recovering_since.get_or_insert_with(Instant::now);
    }

    let round = last_round.expect("at least one committed round");
    let results = round
        .into_iter()
        .zip(losses)
        .zip(comm_totals)
        .map(|(((output, experts), l), comm)| (l, output, experts, comm))
        .collect();
    Ok((plan, collect(results), report))
}

/// Run one `[start, end)` round on a fresh mesh. Per rank:
/// `Ok(RoundOut)` when it finished, `Err(panic message)` when it died.
/// A rank that *observes* a death (e.g. `PeerDead` out of an iteration)
/// converts it into a panic too, so every round outcome is uniform.
#[allow(clippy::too_many_arguments)]
fn run_round(
    cfg: &ExecConfig,
    plan: &IterationPlan,
    sup: &SupervisorOpts,
    store: &CkptStore,
    pending: &FaultPlan,
    digest: u64,
    start: u64,
    end: u64,
) -> Vec<Result<RoundOut, String>> {
    let world = cfg.world();
    let mesh: Vec<_> = monitor_mesh(local_mesh(world), sup.liveness)
        .into_iter()
        .map(|t| {
            ReliableTransport::with_policy(FaultyTransport::new(t, pending.clone()), sup.retransmit)
        })
        .collect();
    let shared = MachineShared::for_cluster(cfg);
    run_on_result(mesh, |comm| -> RoundOut {
        let rank = comm.rank();
        let mut state = WorkerState::init(cfg, rank);
        if start > 0 {
            let bytes = store
                .get(rank, start)
                .expect("restore point was committed by the supervisor");
            let ckpt = Checkpoint::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("rank {rank} restoring cut {start}: {e}"));
            assert_eq!(
                ckpt.plan_digest, digest,
                "rank {rank}: checkpoint belongs to a different plan"
            );
            assert_eq!(ckpt.iter, start, "rank {rank}: wrong cut");
            ckpt.restore(&mut state)
                .unwrap_or_else(|e| panic!("rank {rank} restoring cut {start}: {e}"));
        }
        let my_iter_crashes: Vec<u64> = pending
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .filter_map(|c| match c.at {
                CrashAt::Iteration(i) => Some(i),
                CrashAt::SendOp(_) => None,
            })
            .collect();
        let sh = &shared[cfg.machine_of(rank)];
        let mut losses = Vec::new();
        let mut output = None;
        for i in start..end {
            if my_iter_crashes.contains(&i) {
                janus_obs::global().count("janus_crashes_injected_total", 1);
                panic!("{INJECTED_CRASH_MARKER}: rank {rank} at iteration {i}");
            }
            let out = unified::run_iteration(&comm, &mut state, sh, plan, i)
                // A comm error here means a peer died mid-round; the
                // whole round is replayed, so this rank's partial work
                // is discarded along with it.
                .unwrap_or_else(|e| panic!("rank {rank} at iteration {i}: {e}"));
            losses.push(out.loss);
            output = Some(out.output);
        }
        // Drain reliability traffic before the mesh is torn down, then
        // snapshot the cut. Flush failures at teardown are not fatal to
        // the round: every iteration already completed its barriers.
        let _ = comm.transport().flush();
        state.comm.record_transport(comm.transport().stats());
        let ckpt = Checkpoint::capture(&state, end, digest).to_bytes();
        (
            losses,
            output.expect("rounds are non-empty"),
            state.experts,
            state.comm.snapshot(),
            ckpt,
        )
    })
}

/// Remove the crash point that produced `msg` from the plan so the
/// replay does not immediately die again. Injected panics name their
/// trigger (`… at iteration N` / `… at send op N`), which is parsed back
/// here rather than threading shared mutable state through the mesh.
pub(crate) fn disarm(plan: &mut FaultPlan, rank: usize, msg: &str) {
    let parse_after = |needle: &str| -> Option<u64> {
        let at = msg.find(needle)? + needle.len();
        let rest = &msg[at..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    };
    let fired = if let Some(i) = parse_after("at iteration ") {
        Some(CrashAt::Iteration(i))
    } else {
        parse_after("at send op ").map(CrashAt::SendOp)
    };
    plan.crashes
        .retain(|c| !(c.rank == rank && Some(c.at) == fired));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::trainer::{diff_runs, train_unified};
    use janus_comm::CrashPoint;

    fn small() -> ExecConfig {
        ExecConfig {
            tokens: 8,
            ..ExecConfig::small()
        }
    }

    #[test]
    fn fault_free_supervised_run_matches_train_unified_bitwise() {
        let cfg = small();
        let (_, run, report) = train_supervised(
            &cfg,
            &PlanOpts::default(),
            &SupervisorOpts::default(),
            3,
            FaultPlan::default(),
        )
        .unwrap();
        let baseline = train_unified(&cfg, 3);
        let diff = diff_runs(&run, &baseline);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
        assert_eq!(report.crashes, 0);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.ckpts_written, 3 * cfg.world() as u64);
    }

    #[test]
    fn iteration_crash_is_recovered_bitwise() {
        let cfg = small();
        let faults = FaultPlan {
            crashes: vec![CrashPoint {
                rank: 2,
                at: CrashAt::Iteration(1),
            }],
            ..FaultPlan::default()
        };
        let (_, run, report) = train_supervised(
            &cfg,
            &PlanOpts::default(),
            &SupervisorOpts::default(),
            3,
            faults,
        )
        .unwrap();
        assert!(report.crashes >= 1, "{report:?}");
        assert_eq!(report.recoveries, 1, "{report:?}");
        assert_eq!(report.ckpts_restored, cfg.world() as u64, "{report:?}");
        assert_eq!(report.recover_us.len(), 1);
        let baseline = train_unified(&cfg, 3);
        let diff = diff_runs(&run, &baseline);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }

    #[test]
    fn send_op_crash_is_recovered_bitwise() {
        let cfg = small();
        let faults = FaultPlan {
            crashes: vec![CrashPoint {
                rank: 1,
                at: CrashAt::SendOp(7),
            }],
            ..FaultPlan::default()
        };
        let (_, run, report) = train_supervised(
            &cfg,
            &PlanOpts::default(),
            &SupervisorOpts::default(),
            2,
            faults,
        )
        .unwrap();
        assert!(report.crashes >= 1, "{report:?}");
        assert!(report.recoveries >= 1, "{report:?}");
        let baseline = train_unified(&cfg, 2);
        let diff = diff_runs(&run, &baseline);
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }

    #[test]
    fn crash_in_a_later_round_restores_from_the_committed_cut() {
        let cfg = small();
        let faults = FaultPlan {
            crashes: vec![CrashPoint {
                rank: 0,
                at: CrashAt::Iteration(2),
            }],
            ..FaultPlan::default()
        };
        let sup = SupervisorOpts {
            ckpt_every: 2,
            ..SupervisorOpts::default()
        };
        let (_, run, report) =
            train_supervised(&cfg, &PlanOpts::default(), &sup, 4, faults).unwrap();
        // The crash hits round [2,4), which replays from the cut at 2.
        assert_eq!(report.recoveries, 1, "{report:?}");
        assert_eq!(report.ckpts_restored, cfg.world() as u64, "{report:?}");
        assert_eq!(report.replayed_iterations, 2, "{report:?}");
        let baseline = train_unified(&cfg, 4);
        let diff = diff_runs(&run, &baseline);
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }

    #[test]
    fn exhausted_recovery_budget_surfaces_the_failure() {
        let cfg = small();
        // Crash every rank at iteration 0 but allow zero recoveries.
        let faults = FaultPlan {
            crashes: vec![CrashPoint {
                rank: 0,
                at: CrashAt::Iteration(0),
            }],
            ..FaultPlan::default()
        };
        let sup = SupervisorOpts {
            max_recoveries: 0,
            ..SupervisorOpts::default()
        };
        let err = match train_supervised(&cfg, &PlanOpts::default(), &sup, 2, faults) {
            Err(e) => e,
            Ok(_) => panic!("a crash with zero recoveries must fail"),
        };
        assert!(err.contains("gave up"), "{err}");
        assert!(err.contains(INJECTED_CRASH_MARKER), "{err}");
    }

    #[test]
    fn disarm_removes_only_the_fired_point() {
        let mut plan = FaultPlan {
            crashes: vec![
                CrashPoint {
                    rank: 1,
                    at: CrashAt::Iteration(0),
                },
                CrashPoint {
                    rank: 1,
                    at: CrashAt::Iteration(2),
                },
                CrashPoint {
                    rank: 2,
                    at: CrashAt::SendOp(5),
                },
            ],
            ..FaultPlan::default()
        };
        disarm(&mut plan, 1, "injected crash: rank 1 at iteration 0");
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan.crashes.contains(&CrashPoint {
            rank: 1,
            at: CrashAt::Iteration(2)
        }));
        disarm(&mut plan, 2, "injected crash: rank 2 at send op 5");
        assert_eq!(plan.crashes.len(), 1);
    }
}
