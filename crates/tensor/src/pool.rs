//! Scoped compute pool shared by the blocked kernels and the execution
//! engines.
//!
//! The pool is deliberately *structural*, not a resident set of worker
//! threads: every parallel region is a [`std::thread::scope`] whose
//! threads borrow the caller's data directly, so no `'static` bounds or
//! channel plumbing leak into kernel signatures. Thread count comes from
//! the `JANUS_THREADS` environment variable (read once), defaulting to
//! the machine's available parallelism.
//!
//! Work is always split into *disjoint index ranges / slots*, never into
//! shared reductions: each output element is produced by exactly one
//! thread running exactly the code the single-threaded path runs, so
//! results are bitwise identical at any thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static CONFIGURED: OnceLock<usize> = OnceLock::new();
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside pool workers so nested parallel regions degrade to the
    /// serial path instead of oversubscribing (threads² spawns).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel regions may use right now.
///
/// Resolution order: inside a pool worker → 1 (no nesting); a process-wide
/// [`set_threads`] override, if any; else `JANUS_THREADS` (read once via
/// `OnceLock`); else [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    if IN_POOL.with(|f| f.get()) {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *CONFIGURED.get_or_init(|| {
        std::env::var("JANUS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Process-wide thread-count override (`0` clears it), taking precedence
/// over `JANUS_THREADS`. Exists so tests and benches can sweep thread
/// counts without re-execing: the environment variable is latched on
/// first use and cannot be re-read.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Run `n` independent tasks on the pool, returning their results in
/// task-index order (never completion order), so downstream folds are
/// deterministic at any thread count.
///
/// Tasks are claimed from an atomic counter, which load-balances uneven
/// task costs (expert batches vary in token count) across workers.
pub fn run_tasks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_bounded(usize::MAX, n, f)
}

/// [`run_tasks`] with an explicit worker ceiling: at most
/// `min(limit, threads(), n)` workers run concurrently. Callers that
/// schedule coarse-grained jobs (the lab's experiment DAG) use the limit
/// to honour a `--jobs N` budget without touching the process-wide
/// thread configuration.
///
/// An explicit finite `limit` is a *task-concurrency* budget, not a CPU
/// hint: it may exceed the configured pool width, because coarse jobs
/// can block on I/O or sleeps where extra in-flight tasks still help.
/// Only the unbounded form ([`run_tasks`]) clamps to [`threads`].
///
/// Workers run with the pool's nested-region guard set, so tasks that
/// themselves call into parallel kernels degrade to their serial path
/// instead of oversubscribing — and, by the pool's disjoint-work
/// invariant, produce bitwise-identical results doing so.
pub fn run_tasks_bounded<T, F>(limit: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let budget = if limit == usize::MAX {
        threads()
    } else {
        limit.max(1)
    };
    let workers = budget.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().expect("task slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("task slot poisoned")
                .expect("task ran")
        })
        .collect()
}

/// Kernel row-tile height (must match the micro-kernels in `linalg` /
/// `simd`): blocks are sized in multiples of this so every block except
/// the last runs full-height tiles.
const MR: usize = 4;

/// Output bytes a worker's row block should stay within so the block's
/// A rows and output slab remain L2-resident while the kernel sweeps
/// its column tiles. Half a conservative 1 MB L2, leaving room for the
/// packed B panel and the other thread sharing the cache.
const L2_BLOCK_BYTES: usize = 512 * 1024;

/// Pick the row-block granularity for [`par_row_chunks`].
///
/// Two forces, both perf-only (granularity never changes any output
/// bit): blocks must be *small enough* that a block's working set fits
/// L2 and uneven per-row costs balance across workers (several blocks
/// per worker, claimed from an atomic counter), yet *big enough* that
/// per-block fixed costs — the kernels re-pack their B panels once per
/// block — stay amortized. We aim for ~4 blocks per worker, capped by
/// the L2 budget, floored at one `MR`-high tile, and rounded up to a
/// multiple of `MR`.
fn block_rows_for(rows: usize, row_len: usize, workers: usize) -> usize {
    let balance = rows.div_ceil(4 * workers);
    let l2 = (L2_BLOCK_BYTES / std::mem::size_of::<f32>() / row_len.max(1)).max(MR);
    balance.min(l2).next_multiple_of(MR)
}

/// Split the rows of `out` (a row-major buffer of `row_len`-wide rows)
/// into cache-sized row blocks (see [`block_rows_for`]) and run
/// `f(row_start, row_end, chunk)` on each; workers claim blocks from an
/// atomic counter so uneven block costs load-balance.
///
/// Row ranges are disjoint, so every output element is written by the
/// same code path the serial call uses — bitwise identical results at
/// any thread count and any block granularity.
pub fn par_row_chunks(
    out: &mut [f32],
    row_len: usize,
    f: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    let rows = out.len().checked_div(row_len).unwrap_or(0);
    if rows == 0 {
        return;
    }
    let workers = threads().min(rows);
    if workers <= 1 {
        f(0, rows, out);
        return;
    }
    let block_rows = block_rows_for(rows, row_len, workers);
    let blocks: Vec<Mutex<Option<&mut [f32]>>> = out
        .chunks_mut(block_rows * row_len)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (f, blocks, next) = (&f, &blocks, &next);
            s.spawn(move || {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= blocks.len() {
                        break;
                    }
                    let chunk = blocks[i]
                        .lock()
                        .expect("block slot poisoned")
                        .take()
                        .expect("each block is claimed exactly once");
                    let r0 = i * block_rows;
                    f(r0, r0 + chunk.len() / row_len, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_return_in_index_order() {
        let out = run_tasks(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        let rows = 37;
        let row_len = 5;
        let mut buf = vec![0.0f32; rows * row_len];
        par_row_chunks(&mut buf, row_len, |r0, r1, chunk| {
            assert_eq!(chunk.len(), (r1 - r0) * row_len);
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for (r, row) in buf.chunks(row_len).enumerate() {
            assert!(
                row.iter().all(|&v| v == r as f32),
                "row {r} written wrongly: {row:?}"
            );
        }
    }

    #[test]
    fn row_blocks_are_mr_aligned_and_l2_capped() {
        // Wide rows: the L2 budget dominates and the block still holds
        // at least one full MR tile.
        let b = block_rows_for(10_000, 64 * 1024, 4);
        assert_eq!(b, MR);
        // Narrow rows: ~4 blocks per worker, rounded up to MR.
        let b = block_rows_for(1024, 128, 4);
        assert_eq!(b % MR, 0);
        assert!((1024 / (4 * 4)..=1024 / (4 * 4) + MR).contains(&b));
    }

    #[test]
    fn many_blocks_cover_every_row_exactly_once() {
        // More rows than workers × block size, so the atomic claim loop
        // hands out several blocks per worker.
        set_threads(4);
        let rows = 103;
        let row_len = 3;
        let mut buf = vec![0.0f32; rows * row_len];
        par_row_chunks(&mut buf, row_len, |r0, r1, chunk| {
            assert_eq!(chunk.len(), (r1 - r0) * row_len);
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32 + 1.0;
                }
            }
        });
        set_threads(0);
        for (r, row) in buf.chunks(row_len).enumerate() {
            assert!(
                row.iter().all(|&v| v == (r + 1) as f32),
                "row {r} written wrongly: {row:?}"
            );
        }
    }

    #[test]
    fn bounded_tasks_return_in_index_order() {
        set_threads(4);
        let out = run_tasks_bounded(2, 16, |i| i + 1);
        set_threads(0);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
        // A zero limit is clamped to one worker, not zero.
        assert_eq!(run_tasks_bounded(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_work_is_fine() {
        assert!(run_tasks(0, |i| i).is_empty());
        par_row_chunks(&mut [], 4, |_, _, _| panic!("no rows, no calls"));
    }

    #[test]
    fn nested_regions_serialize_instead_of_exploding() {
        let out = run_tasks(4, |_| {
            // Inside a worker the pool reports a single thread …
            assert_eq!(threads(), 1);
            // … and nested regions still produce correct results.
            run_tasks(3, |j| j).len()
        });
        assert_eq!(out, vec![3, 3, 3, 3]);
    }
}
