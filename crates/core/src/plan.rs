//! Plan compilation: the [`IterationPlan`] IR and the per-block fetch
//! plans it is built from.
//!
//! [`IterationPlan::compile`] is the **single compilation site** for one
//! training iteration's schedule: per block it fixes the communication
//! [`Paradigm`] (via [`crate::paradigm::paradigm_for_block`], the one
//! implementation of the `R > threshold` rule) and, for data-centric
//! blocks, the [`BlockFetchPlan`]. Both the discrete-event simulator
//! (`sim::engine::build_graph`) and the numerical engines
//! (`exec::unified`) execute the same compiled plan, and its content
//! [`digest`](IterationPlan::digest) lets tests assert they agree.
//!
//! For one MoE block under the data-centric paradigm, every worker needs
//! every expert of the block (§5.1: "each worker usually needs to pull
//! all experts in the expert layer"). The fetch plan splits each worker's
//! needs into:
//!
//! * **own** experts — resident, no communication;
//! * **internal** experts — owned by other GPUs of the same machine,
//!   pulled over NVLink in either the naive order (everyone starts at
//!   rank 0 — paper Figure 7a) or the staggered Algorithm 1 order;
//! * **external** experts — owned by other machines, fetched once per
//!   machine into the CPU-side Cache Manager and then copied to each GPU
//!   over PCIe, optionally with the PCIe-switch-aware half/half split
//!   (Figures 8-9).

use crate::paradigm::{paradigm_for_block, Paradigm, ParadigmPolicy};
use crate::placement::Placement;
use crate::priority::{internal_pull_order, naive_pull_order, pcie_split};
use janus_moe::config::ModelConfig;
use janus_moe::traffic::r_per_block;
use janus_topology::{Cluster, WorkerId};
use serde::Serialize;

/// One NVLink pull of an internal expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct InternalPull {
    /// Global expert index.
    pub expert: usize,
    /// GPU holding the expert.
    pub owner: WorkerId,
}

/// One worker's ordered fetch plan for one MoE block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerFetchPlan {
    /// The worker.
    pub worker: WorkerId,
    /// Experts resident on this worker.
    pub own: Vec<usize>,
    /// NVLink pulls, in issue order.
    pub internal: Vec<InternalPull>,
    /// External experts this worker copies from the CPU cache via PCIe,
    /// in issue order.
    pub external_pcie: Vec<usize>,
    /// External experts this worker receives from its PCIe-switch peer
    /// via NVLink (empty when the switch-aware strategy is off or the
    /// worker has no peer).
    pub external_peer: Vec<usize>,
}

/// The machine-level external fetch list plus per-worker plans.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BlockFetchPlan {
    /// Experts per worker (`E`).
    pub experts_per_worker: usize,
    /// Per worker (global rank order).
    pub workers: Vec<WorkerFetchPlan>,
    /// Per machine: the external experts its Inter-Node Scheduler fetches
    /// (each exactly once), with their owners.
    pub machine_external: Vec<Vec<InternalPull>>,
}

/// Owner of global expert `e` when `experts_total` experts are divided
/// evenly over `num_workers` workers in rank order.
pub fn expert_owner(e: usize, experts_total: usize, num_workers: usize) -> WorkerId {
    debug_assert!(e < experts_total);
    let per_worker = experts_total / num_workers;
    debug_assert!(per_worker * num_workers == experts_total);
    WorkerId(e / per_worker)
}

/// Compile the fetch plan for one MoE block with `experts_total` experts.
///
/// `topo_aware` toggles both §5.2 strategies (staggered internal order
/// and PCIe-switch-aware external split) — matching the paper's ablation,
/// which switches them together.
pub fn fetch_plan(cluster: &Cluster, experts_total: usize, topo_aware: bool) -> BlockFetchPlan {
    let num_workers = cluster.num_workers();
    let m = cluster.gpus_per_machine();
    assert!(
        experts_total.is_multiple_of(num_workers),
        "{experts_total} experts not divisible across {num_workers} workers"
    );
    let e_per = experts_total / num_workers;

    let owned = |w: WorkerId| -> Vec<usize> { (w.0 * e_per..(w.0 + 1) * e_per).collect() };

    let mut workers = Vec::with_capacity(num_workers);
    for w in cluster.workers() {
        let machine = cluster.machine_of(w);
        let r = cluster.local_rank(w);

        // Internal pulls: iterate owners in the chosen order, taking every
        // expert an owner holds (ascending).
        let owner_order = if topo_aware {
            internal_pull_order(r, m)
        } else {
            naive_pull_order(r, m)
        };
        let mut internal = Vec::with_capacity((m - 1) * e_per);
        for owner_rank in owner_order {
            let owner = cluster.worker_at(machine, owner_rank);
            for expert in owned(owner) {
                internal.push(InternalPull { expert, owner });
            }
        }

        // External experts: everything owned off-machine, ascending.
        let mut external: Vec<usize> = Vec::new();
        for e in 0..experts_total {
            let owner = expert_owner(e, experts_total, num_workers);
            if cluster.machine_of(owner) != machine {
                external.push(e);
            }
        }
        let (external_pcie, external_peer) = if topo_aware {
            let has_peer = cluster.pcie_peer(w).is_some();
            pcie_split(&external, r.0 % 2, has_peer)
        } else {
            (external, Vec::new())
        };

        workers.push(WorkerFetchPlan {
            worker: w,
            own: owned(w),
            internal,
            external_pcie,
            external_peer,
        });
    }

    // Machine-level external fetch lists.
    let mut machine_external = Vec::with_capacity(cluster.num_machines());
    for machine in cluster.machines() {
        let mut list = Vec::new();
        for e in 0..experts_total {
            let owner = expert_owner(e, experts_total, num_workers);
            if cluster.machine_of(owner) != machine {
                list.push(InternalPull { expert: e, owner });
            }
        }
        machine_external.push(list);
    }

    BlockFetchPlan {
        experts_per_worker: e_per,
        workers,
        machine_external,
    }
}

impl BlockFetchPlan {
    /// Every expert a worker will have available, across all sources
    /// (used by invariants tests and memory accounting).
    pub fn all_experts_for(&self, w: WorkerId) -> Vec<usize> {
        let p = &self.workers[w.0];
        let mut all = p.own.clone();
        all.extend(p.internal.iter().map(|i| i.expert));
        all.extend(&p.external_pcie);
        all.extend(&p.external_peer);
        all.sort_unstable();
        all
    }
}

/// Options of plan compilation — the schedule-shaping subset of the
/// engine options, shared verbatim by the simulator and the numerical
/// engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlanOpts {
    /// Paradigm policy.
    pub policy: ParadigmPolicy,
    /// `R` threshold of the unified policy (the paper's rule is `R > 1`).
    pub r_threshold: f64,
    /// Staggered internal order + PCIe-switch-aware cache drain (§5.2).
    pub topo_aware: bool,
    /// Root pulls at iteration start instead of the gate (§5.3).
    pub prefetch: bool,
    /// Credit-based buffer capacity per worker (§5.1.1).
    pub credits: u32,
}

impl Default for PlanOpts {
    fn default() -> Self {
        PlanOpts {
            policy: ParadigmPolicy::Unified,
            r_threshold: 1.0,
            topo_aware: true,
            prefetch: true,
            credits: 16,
        }
    }
}

/// The compiled schedule of one block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BlockPlan {
    /// Block index.
    pub block: usize,
    /// Experts in the block (0 for dense blocks).
    pub experts: usize,
    /// The gain metric `R = BSk/(4nHE)` (`None` for dense blocks).
    pub r: Option<f64>,
    /// Chosen communication paradigm.
    pub paradigm: Paradigm,
    /// Fetch plan — `Some` exactly for data-centric MoE blocks.
    pub fetch: Option<BlockFetchPlan>,
}

/// One iteration's complete compiled schedule: per block, the paradigm
/// and (for data-centric blocks) the worker fetch plans, plus the
/// prefetch window and credit budget. Compiled in exactly one place
/// ([`IterationPlan::compile`]) and identified by a stable content
/// [`digest`](IterationPlan::digest).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IterationPlan {
    /// Machines in the cluster.
    pub machines: usize,
    /// Workers per machine.
    pub gpus_per_machine: usize,
    /// Policy the plan was compiled under.
    pub policy: ParadigmPolicy,
    /// Threshold the unified policy applied.
    pub r_threshold: f64,
    /// Whether §5.2 topology-aware orders are compiled in.
    pub topo_aware: bool,
    /// How many blocks ahead fetches may be rooted (0 = fetch at the
    /// gate, `blocks.len()` = provident prefetch from iteration start).
    pub prefetch_window: usize,
    /// Credit-based buffer capacity per worker.
    pub credits: u32,
    /// Per-block schedule, one entry per model block.
    pub blocks: Vec<BlockPlan>,
    /// Elastic expert placement epoch (`None` = the static epoch-0
    /// layout, which keeps pre-elastic plan digests byte-identical).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub placement: Option<Placement>,
}

impl IterationPlan {
    /// Compile the iteration schedule for `model` on `cluster`. This is
    /// the only place paradigms and pull orders are decided.
    pub fn compile(model: &ModelConfig, cluster: &Cluster, opts: &PlanOpts) -> Self {
        let n = cluster.num_machines();
        let m = cluster.gpus_per_machine();
        let rs = r_per_block(model, n, m);
        let blocks = (0..model.blocks.len())
            .map(|b| {
                let paradigm = paradigm_for_block(model, b, n, m, opts.policy, opts.r_threshold);
                let experts = model.blocks[b].experts();
                let fetch = (model.blocks[b].is_moe() && paradigm == Paradigm::DataCentric)
                    .then(|| fetch_plan(cluster, experts, opts.topo_aware));
                BlockPlan {
                    block: b,
                    experts,
                    r: rs[b],
                    paradigm,
                    fetch,
                }
            })
            .collect::<Vec<_>>();
        IterationPlan {
            machines: n,
            gpus_per_machine: m,
            policy: opts.policy,
            r_threshold: opts.r_threshold,
            topo_aware: opts.topo_aware,
            prefetch_window: if opts.prefetch { blocks.len() } else { 0 },
            credits: opts.credits,
            blocks,
            placement: None,
        }
    }

    /// The same plan pinned to an explicit placement epoch. The digest
    /// then covers the expert→rank table, so two plans that differ only
    /// in where experts live hash differently.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        placement.assert_valid();
        self.placement = Some(placement);
        self
    }

    /// Per-block paradigms, in block order.
    pub fn paradigms(&self) -> Vec<Paradigm> {
        self.blocks.iter().map(|b| b.paradigm).collect()
    }

    /// Stable 64-bit content digest (FNV-1a over a canonical field walk).
    /// Two plans digest equal iff they schedule the iteration
    /// identically; tests use this to assert the simulator and the
    /// numerical engines consumed the same plan.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.word(self.machines as u64);
        h.word(self.gpus_per_machine as u64);
        h.byte(policy_tag(self.policy));
        h.word(self.r_threshold.to_bits());
        h.byte(self.topo_aware as u8);
        h.word(self.prefetch_window as u64);
        h.word(self.credits as u64);
        for b in &self.blocks {
            h.word(b.block as u64);
            h.word(b.experts as u64);
            match b.r {
                // Tag + payload so None can never collide with a value.
                Some(r) => {
                    h.byte(1);
                    h.word(r.to_bits());
                }
                None => h.byte(0),
            }
            h.byte(paradigm_tag(b.paradigm));
            match &b.fetch {
                None => h.byte(0),
                Some(f) => {
                    h.byte(1);
                    h.word(f.experts_per_worker as u64);
                    for w in &f.workers {
                        h.word(w.worker.0 as u64);
                        for &e in &w.own {
                            h.word(e as u64);
                        }
                        for p in &w.internal {
                            h.word(p.expert as u64);
                            h.word(p.owner.0 as u64);
                        }
                        for &e in &w.external_pcie {
                            h.word(e as u64);
                        }
                        for &e in &w.external_peer {
                            h.word(e as u64);
                        }
                    }
                    for list in &f.machine_external {
                        h.word(list.len() as u64);
                        for p in list {
                            h.word(p.expert as u64);
                            h.word(p.owner.0 as u64);
                        }
                    }
                }
            }
        }
        // Folded only when present, so plans without a placement keep
        // their historical digests.
        if let Some(p) = &self.placement {
            h.byte(1);
            p.fold(&mut h);
        }
        h.finish()
    }
}

fn policy_tag(p: ParadigmPolicy) -> u8 {
    match p {
        ParadigmPolicy::ExpertCentric => 0,
        ParadigmPolicy::DataCentric => 1,
        ParadigmPolicy::Unified => 2,
    }
}

fn paradigm_tag(p: Paradigm) -> u8 {
    match p {
        Paradigm::ExpertCentric => 0,
        Paradigm::DataCentric => 1,
    }
}

/// FNV-1a, 64-bit — the one content hash every digest in the workspace
/// uses: [`IterationPlan::digest`], the lab's artifact manifests, and
/// the config digests recorded alongside them. Public so tools hashing
/// artifacts produce values comparable with plan digests.
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// Fold a `u64` as its little-endian bytes.
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Fold a byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn digest_of(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.bytes(bytes);
        h.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_topology::ClusterSpec;

    fn cluster(n: usize, m: usize) -> Cluster {
        ClusterSpec::a100(n, m).build()
    }

    #[test]
    fn expert_owner_layout() {
        assert_eq!(expert_owner(0, 32, 32), WorkerId(0));
        assert_eq!(expert_owner(31, 32, 32), WorkerId(31));
        assert_eq!(expert_owner(7, 64, 16), WorkerId(1)); // 4 per worker
    }

    #[test]
    fn every_worker_sees_every_expert_exactly_once() {
        for topo in [false, true] {
            let c = cluster(2, 4);
            let plan = fetch_plan(&c, 16, topo);
            for w in c.workers() {
                let all = plan.all_experts_for(w);
                assert_eq!(all, (0..16).collect::<Vec<_>>(), "topo={topo}, w={w}");
            }
        }
    }

    #[test]
    fn machine_external_lists_cover_off_machine_experts_once() {
        let c = cluster(4, 8);
        let plan = fetch_plan(&c, 32, true);
        for (mi, list) in plan.machine_external.iter().enumerate() {
            assert_eq!(
                list.len(),
                32 - 8,
                "machine {mi} fetches every off-machine expert once"
            );
            for pull in list {
                assert_ne!(c.machine_of(pull.owner).0, mi);
            }
            let mut experts: Vec<usize> = list.iter().map(|p| p.expert).collect();
            experts.dedup();
            assert_eq!(experts.len(), list.len(), "no duplicate fetches");
        }
    }

    #[test]
    fn staggered_internal_order_starts_at_next_rank() {
        let c = cluster(1, 4);
        let plan = fetch_plan(&c, 8, true); // E = 2
                                            // Worker 1 pulls first from local rank 2 → experts 4, 5.
        let w1 = &plan.workers[1];
        assert_eq!(
            w1.internal[0],
            InternalPull {
                expert: 4,
                owner: WorkerId(2)
            }
        );
        assert_eq!(
            w1.internal[1],
            InternalPull {
                expert: 5,
                owner: WorkerId(2)
            }
        );
        // then rank 3, then rank 0.
        assert_eq!(w1.internal[2].owner, WorkerId(3));
        assert_eq!(w1.internal[4].owner, WorkerId(0));
    }

    #[test]
    fn naive_internal_order_all_start_at_rank_zero() {
        let c = cluster(1, 4);
        let plan = fetch_plan(&c, 4, false);
        for w in 1..4 {
            assert_eq!(plan.workers[w].internal[0].owner, WorkerId(0));
        }
        // Worker 0 starts at rank 1.
        assert_eq!(plan.workers[0].internal[0].owner, WorkerId(1));
    }

    #[test]
    fn pcie_halves_are_complementary_within_a_pair() {
        let c = cluster(2, 8);
        let plan = fetch_plan(&c, 32, true);
        // Workers 0 and 1 share a switch on machine 0.
        let w0 = &plan.workers[0];
        let w1 = &plan.workers[1];
        assert_eq!(w0.external_pcie, w1.external_peer);
        assert_eq!(w0.external_peer, w1.external_pcie);
        assert!(!w0.external_pcie.is_empty());
        assert!(!w0.external_peer.is_empty());
    }

    #[test]
    fn non_topo_plan_copies_everything_via_pcie() {
        let c = cluster(2, 8);
        let plan = fetch_plan(&c, 32, false);
        for w in &plan.workers {
            assert!(w.external_peer.is_empty());
            assert_eq!(
                w.external_pcie.len(),
                16,
                "all off-machine experts via PCIe"
            );
        }
    }

    #[test]
    fn single_machine_has_no_external() {
        let c = cluster(1, 8);
        let plan = fetch_plan(&c, 16, true);
        for w in &plan.workers {
            assert!(w.external_pcie.is_empty() && w.external_peer.is_empty());
        }
        assert!(plan.machine_external[0].is_empty());
    }

    #[test]
    fn own_experts_match_ownership() {
        let c = cluster(2, 2);
        let plan = fetch_plan(&c, 8, true); // E = 2
        assert_eq!(plan.workers[2].own, vec![4, 5]);
        assert_eq!(plan.experts_per_worker, 2);
    }

    #[test]
    fn compiled_plan_mixes_paradigms_for_pr_moe() {
        use janus_moe::config::pr_moe_transformer_xl;
        let model = pr_moe_transformer_xl(16);
        let c = cluster(2, 8);
        let opts = PlanOpts {
            r_threshold: 2.0,
            ..PlanOpts::default()
        };
        let plan = IterationPlan::compile(&model, &c, &opts);
        assert_eq!(plan.blocks.len(), model.blocks.len());
        let moe = model.moe_blocks();
        assert_eq!(plan.blocks[moe[0]].paradigm, Paradigm::DataCentric);
        assert_eq!(plan.blocks[moe[3]].paradigm, Paradigm::ExpertCentric);
        // Fetch plans exist exactly for the data-centric MoE blocks.
        for bp in &plan.blocks {
            let is_dc_moe = bp.experts > 0 && bp.paradigm == Paradigm::DataCentric;
            assert_eq!(bp.fetch.is_some(), is_dc_moe, "block {}", bp.block);
            assert_eq!(bp.r.is_some(), model.blocks[bp.block].is_moe());
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        use janus_moe::config::ModelPreset;
        let model = ModelPreset::MoeBert.config(16);
        let c = cluster(2, 8);
        let opts = PlanOpts::default();
        let a = IterationPlan::compile(&model, &c, &opts);
        let b = IterationPlan::compile(&model, &c, &opts);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        // Any schedule-shaping knob moves the digest.
        for changed in [
            PlanOpts {
                r_threshold: 2.0,
                ..opts
            },
            PlanOpts {
                topo_aware: false,
                ..opts
            },
            PlanOpts {
                prefetch: false,
                ..opts
            },
            PlanOpts { credits: 8, ..opts },
            PlanOpts {
                policy: ParadigmPolicy::ExpertCentric,
                ..opts
            },
        ] {
            let other = IterationPlan::compile(&model, &c, &changed);
            assert_ne!(a.digest(), other.digest(), "{changed:?}");
        }
    }

    #[test]
    fn placement_moves_the_digest_only_when_present() {
        use janus_moe::config::ModelPreset;
        let model = ModelPreset::MoeBert.config(16);
        let c = cluster(2, 8);
        let base = IterationPlan::compile(&model, &c, &PlanOpts::default());
        let counts: Vec<usize> = base.blocks.iter().map(|b| b.experts.max(16)).collect();
        let balanced = Placement::balanced(&counts, 16);
        let pinned = base.clone().with_placement(balanced.clone());
        // Pinning any placement (even the balanced one) is digest-visible;
        // a migrated epoch moves it again.
        assert_ne!(base.digest(), pinned.digest());
        let drained = base.clone().with_placement(balanced.drain(3));
        assert_ne!(pinned.digest(), drained.digest());
    }

    #[test]
    fn prefetch_window_covers_all_blocks_or_none() {
        use janus_moe::config::ModelPreset;
        let model = ModelPreset::MoeGpt.config(16);
        let c = cluster(2, 8);
        let with = IterationPlan::compile(&model, &c, &PlanOpts::default());
        assert_eq!(with.prefetch_window, model.blocks.len());
        let without = IterationPlan::compile(
            &model,
            &c,
            &PlanOpts {
                prefetch: false,
                ..PlanOpts::default()
            },
        );
        assert_eq!(without.prefetch_window, 0);
    }
}
