//! Golden pin of the `repro serve` SLO artifact.
//!
//! The lab manifest hashes `serve_slo.json` through its masked canonical
//! form: parsed, the wall-clock latency keys of the real TCP sweep
//! nulled, re-rendered compact. This test pins that exact byte stream —
//! the very content `repro lab --verify` re-digests — so any
//! unintentional change to the report's deterministic content (the
//! simulated latency sweep, replica apportionments, gate histogram,
//! structural counters of the real runs) fails loudly here with a
//! readable diff instead of as an opaque digest mismatch.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test serve_slo`.

use janus::lab::canonical_masked_json;
use janus::serve::report::{build, MASKED_KEYS};

fn assert_golden(got: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(got, want, "golden mismatch for {name}");
}

#[test]
fn slo_report_masked_canonical_form_is_golden() {
    let report = build();
    assert!(
        report.sim_p99_improves,
        "headline claim must hold: sim p99 at the largest replica budget \
         beats the smallest"
    );
    for row in &report.real {
        assert_eq!(row.completed, report.requests, "TCP run lost requests");
        assert_eq!(row.failed_workers, 0, "TCP run lost workers");
    }
    let masked: Vec<String> = MASKED_KEYS.iter().map(|k| k.to_string()).collect();
    let mut pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    pretty.push('\n');
    let mut canonical =
        canonical_masked_json(pretty.as_bytes(), &masked).expect("report is valid JSON");
    canonical.push('\n');
    // The pretty form and the compact form canonicalize identically —
    // the digest is insensitive to whitespace, exactly as the manifest
    // layer promises.
    let compact = serde_json::to_string(&report).expect("report serializes");
    assert_eq!(
        canonical_masked_json(compact.as_bytes(), &masked).map(|mut s| {
            s.push('\n');
            s
        }),
        Some(canonical.clone())
    );
    assert_golden(&canonical, "serve_slo.json");
}
