//! Length-prefixed framing over byte streams.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes
//! of [`crate::message::Message`] encoding. A configurable ceiling guards
//! against corrupt headers allocating unbounded memory.

use crate::message::{EncodedHeader, Message};
use crate::transport::CommError;
use bytes::Bytes;
use std::io::{ErrorKind, IoSlice, Read, Write};

/// Default maximum frame size: large enough for any expert in the paper's
/// models (a 768-dim fp16 expert is ~9.4 MB) with generous headroom.
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024 * 1024;

/// Frames at or below this size are decoded out of the caller's reusable
/// scratch buffer in [`read_message_buffered`] (one payload copy, zero
/// steady-state allocations — the control-plane regime); larger frames
/// get a fresh exact-size allocation handed to [`Bytes`] without a copy
/// (the bulk-payload regime, where the copy would cost more than the
/// allocation it saves).
pub const REUSE_DECODE_MAX: usize = 64 * 1024;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), CommError> {
    let len = u32::try_from(payload.len()).map_err(|_| CommError::FrameTooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Option<Vec<u8>>, CommError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(CommError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    fill(r, &mut payload)?;
    Ok(Some(payload))
}

/// Read one frame into a caller-owned buffer (resized to the frame
/// length, capacity retained across calls — the steady state of a recv
/// loop allocates nothing). Returns `Ok(false)` on clean EOF at a frame
/// boundary; EOF mid-frame is an error.
pub fn read_frame_into<R: Read>(
    r: &mut R,
    max_frame: usize,
    buf: &mut Vec<u8>,
) -> Result<bool, CommError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(false),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(CommError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    buf.resize(len, 0);
    fill(r, buf)?;
    Ok(true)
}

/// Write a [`Message`] as one frame: the 4-byte length prefix and the
/// message header are assembled on the stack and handed to the stream
/// together with the borrowed payload as **one vectored write** — no
/// intermediate encode buffer, and (on an unbuffered socket) one
/// syscall per frame instead of one per part.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), CommError> {
    let (header, payload) = msg.encode_parts();
    let header = header.as_slice();
    let payload = payload.map_or(&[][..], |d| &d[..]);
    let total = header.len() + payload.len();
    let frame_len = u32::try_from(total).map_err(|_| CommError::FrameTooLarge {
        len: total,
        max: u32::MAX as usize,
    })?;
    let mut head = [0u8; 4 + EncodedHeader::MAX];
    head[..4].copy_from_slice(&frame_len.to_be_bytes());
    head[4..4 + header.len()].copy_from_slice(header);
    let head = &head[..4 + header.len()];
    if payload.is_empty() {
        w.write_all(head)?;
    } else {
        write_all_vectored(w, head, payload)?;
    }
    w.flush()?;
    Ok(())
}

/// Write `head ‖ body` via `write_vectored`, retrying on short writes.
fn write_all_vectored<W: Write>(w: &mut W, head: &[u8], body: &[u8]) -> Result<(), CommError> {
    let mut slices = [IoSlice::new(head), IoSlice::new(body)];
    let mut bufs = &mut slices[..];
    while !bufs.is_empty() {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(CommError::Io(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "failed to write whole frame",
                )))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(CommError::Io(e)),
        }
    }
    Ok(())
}

/// Read one [`Message`]; `Ok(None)` on clean EOF.
pub fn read_message<R: Read>(r: &mut R, max_frame: usize) -> Result<Option<Message>, CommError> {
    match read_frame(r, max_frame)? {
        None => Ok(None),
        Some(payload) => Message::decode(Bytes::from(payload)).map(Some),
    }
}

/// Read one [`Message`] using `scratch` as the receive buffer for small
/// frames (≤ [`REUSE_DECODE_MAX`]: zero allocations steady-state, one
/// payload copy) and a fresh zero-copy allocation for large ones.
/// `Ok(None)` on clean EOF.
pub fn read_message_buffered<R: Read>(
    r: &mut R,
    max_frame: usize,
    scratch: &mut Vec<u8>,
) -> Result<Option<Message>, CommError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(CommError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    if len <= REUSE_DECODE_MAX {
        scratch.resize(len, 0);
        fill(r, scratch)?;
        Message::decode(Bytes::copy_from_slice(scratch)).map(Some)
    } else {
        let mut payload = vec![0u8; len];
        fill(r, &mut payload)?;
        Message::decode(Bytes::from(payload)).map(Some)
    }
}

/// `read_exact` with EOF normalized to [`CommError::Disconnected`].
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), CommError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            CommError::Disconnected
        } else {
            CommError::Io(e)
        }
    })
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// Fill `buf` completely, distinguishing EOF-before-any-byte (clean) from
/// EOF mid-buffer (dirty).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, CommError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(CommError::Disconnected)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(CommError::Io(e)),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b""
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![7u8; 1000]
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn message_round_trip_through_stream() {
        let msg = Message::ExpertPayload {
            block: 2,
            expert: 9,
            nonce: 4,
            data: Bytes::from(vec![1, 2, 3]),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap(),
            msg
        );
    }

    #[test]
    fn frame_into_reuses_one_buffer_across_frames() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first-frame").unwrap();
        write_frame(&mut stream, b"two").unwrap();
        write_frame(&mut stream, &[5u8; 4096]).unwrap();
        let mut cursor = Cursor::new(stream);
        let mut buf = Vec::new();
        assert!(read_frame_into(&mut cursor, DEFAULT_MAX_FRAME, &mut buf).unwrap());
        assert_eq!(buf, b"first-frame");
        let cap = buf.capacity();
        assert!(read_frame_into(&mut cursor, DEFAULT_MAX_FRAME, &mut buf).unwrap());
        assert_eq!(buf, b"two");
        assert_eq!(buf.capacity(), cap, "shrinking must not release capacity");
        assert!(read_frame_into(&mut cursor, DEFAULT_MAX_FRAME, &mut buf).unwrap());
        assert_eq!(buf, vec![5u8; 4096]);
        assert!(!read_frame_into(&mut cursor, DEFAULT_MAX_FRAME, &mut buf).unwrap());
    }

    #[test]
    fn frame_into_rejects_oversize_and_truncation() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0u8; 100]).unwrap();
        let mut buf = Vec::new();
        let err = read_frame_into(&mut Cursor::new(stream.clone()), 10, &mut buf).unwrap_err();
        assert!(matches!(
            err,
            CommError::FrameTooLarge { len: 100, max: 10 }
        ));
        stream.truncate(40);
        let err =
            read_frame_into(&mut Cursor::new(stream), DEFAULT_MAX_FRAME, &mut buf).unwrap_err();
        assert!(matches!(err, CommError::Disconnected));
    }

    #[test]
    fn buffered_read_crosses_the_reuse_threshold() {
        // One frame under the reuse threshold, one over it: both decode
        // identically through the hybrid path.
        let small = Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: 3,
            data: Bytes::from(vec![7u8; 100]),
        };
        let large = Message::Collective {
            seq: 9,
            data: Bytes::from(vec![8u8; REUSE_DECODE_MAX + 1]),
        };
        let mut stream = Vec::new();
        write_message(&mut stream, &small).unwrap();
        write_message(&mut stream, &large).unwrap();
        let mut cursor = Cursor::new(stream);
        let mut scratch = Vec::new();
        assert_eq!(
            read_message_buffered(&mut cursor, DEFAULT_MAX_FRAME, &mut scratch)
                .unwrap()
                .unwrap(),
            small
        );
        assert_eq!(
            read_message_buffered(&mut cursor, DEFAULT_MAX_FRAME, &mut scratch)
                .unwrap()
                .unwrap(),
            large
        );
        assert!(
            read_message_buffered(&mut cursor, DEFAULT_MAX_FRAME, &mut scratch)
                .unwrap()
                .is_none()
        );
        // The scratch buffer never grew past the small frame: the large
        // one bypassed it.
        assert!(scratch.capacity() <= REUSE_DECODE_MAX);
    }

    #[test]
    fn vectored_write_is_byte_identical_to_buffered_encode() {
        let msgs = [
            Message::Shutdown,
            Message::Ack { ack: 3 },
            Message::TokenDispatch {
                block: 2,
                seq: 5,
                data: Bytes::from(vec![1, 2, 3, 4]),
            },
            Message::TokenReturn {
                block: 2,
                seq: 5,
                data: Bytes::new(),
            },
        ];
        for m in &msgs {
            let mut fast = Vec::new();
            write_message(&mut fast, m).unwrap();
            let mut reference = Vec::new();
            write_frame(&mut reference, &m.encode()).unwrap();
            assert_eq!(fast, reference, "variant {m:?}");
        }
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 10).unwrap_err();
        assert!(matches!(
            err,
            CommError::FrameTooLarge { len: 100, max: 10 }
        ));
    }

    #[test]
    fn eof_mid_header_is_disconnect() {
        let buf = vec![0u8, 0, 0]; // truncated header
        let err = read_frame(&mut Cursor::new(buf), 100).unwrap_err();
        assert!(matches!(err, CommError::Disconnected));
    }

    #[test]
    fn eof_mid_payload_is_disconnect() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[9u8; 50]).unwrap();
        buf.truncate(20);
        let err = read_frame(&mut Cursor::new(buf), 100).unwrap_err();
        assert!(matches!(err, CommError::Disconnected));
    }
}
