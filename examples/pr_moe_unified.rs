//! PR-MoE: one model, two paradigms at once (paper §7.5).
//!
//! Pyramid-Residual MoE models put few experts in shallow blocks and many
//! in deep ones, so the gain metric `R = BSk/(4nHE)` differs per block.
//! Janus's unified mode runs data-centric communication where `R` is
//! large and falls back to All-to-All where it is not — and beats both
//! pure paradigms.
//!
//! The per-block schedule is compiled exactly once into an
//! [`IterationPlan`]; the simulator consumes the same plan (the digests
//! below prove it), and `exec::unified` executes the same IR numerically.
//!
//! ```text
//! cargo run --release --example pr_moe_unified
//! ```

use janus::core::paradigm::Paradigm;
use janus::core::plan::IterationPlan;
use janus::core::sim::engine::{compile_plan, simulate_iteration, EngineOpts, ParadigmPolicy};
use janus::core::sim::setup::SimSetup;
use janus::moe::config::pr_moe_transformer_xl;
use janus::moe::workload::Imbalance;
use janus::topology::ClusterSpec;

fn main() {
    for (gpus, machines) in [(16usize, 2usize), (32, 4)] {
        let model = pr_moe_transformer_xl(gpus);
        let cluster = ClusterSpec::a100(machines, 8).build();
        let unified_opts = EngineOpts {
            policy: ParadigmPolicy::Unified,
            r_threshold: 2.0,
            ..EngineOpts::default()
        };

        // The single compilation site: (model, cluster, opts) → plan.
        let plan = IterationPlan::compile(&model, &cluster, &unified_opts.plan_opts());
        println!("=== PR-MoE-Transformer-xl on {gpus} GPUs ===");
        println!(
            "compiled IterationPlan, digest {:#018x} (conservative threshold R > 2, §7.5):",
            plan.digest()
        );
        for bp in &plan.blocks {
            if let Some(r) = bp.r {
                println!(
                    "  block {:>2} ({:>3} experts): R = {r:>5.2} → {}",
                    bp.block,
                    bp.experts,
                    match bp.paradigm {
                        Paradigm::DataCentric => "data-centric",
                        Paradigm::ExpertCentric => "expert-centric",
                    }
                );
            }
        }

        // The simulator compiles the identical plan from the same inputs —
        // no inline paradigm or pull-order recomputation anywhere.
        let setup = SimSetup::new(
            cluster.clone(),
            model.clone(),
            Imbalance::Balanced,
            unified_opts.seed,
        );
        let sim_plan = compile_plan(&setup, &unified_opts);
        assert_eq!(
            sim_plan.digest(),
            plan.digest(),
            "simulator and direct compilation must agree"
        );

        let ec = simulate_iteration(
            cluster.clone(),
            model.clone(),
            &EngineOpts::janus_expert_centric(),
        )
        .expect("expert-centric run");
        let dc = simulate_iteration(
            cluster.clone(),
            model.clone(),
            &EngineOpts::data_centric(true, true),
        )
        .expect("data-centric run");
        let unified = simulate_iteration(cluster, model, &unified_opts).expect("unified run");

        println!("  pure expert-centric : {:>7.1} ms", ec.iter_time * 1e3);
        println!("  pure data-centric   : {:>7.1} ms", dc.iter_time * 1e3);
        println!(
            "  janus unified       : {:>7.1} ms",
            unified.iter_time * 1e3
        );
        println!(
            "  unified speedup over expert-centric: {:.2}× (paper: {})\n",
            ec.iter_time / unified.iter_time,
            if gpus == 16 { "2.06×" } else { "1.44×" }
        );
    }
}
