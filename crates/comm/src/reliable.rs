//! Reliable delivery over a lossy transport: per-pair sequence numbers,
//! cumulative acks, and retransmission with bounded exponential backoff.
//!
//! [`ReliableTransport`] restores the contract the rest of the stack
//! assumes — exactly-once, per-pair FIFO delivery — on top of *any*
//! [`Transport`], including one that drops, duplicates, delays, or
//! partitions (see [`crate::faulty::FaultyTransport`]). Every outgoing
//! message is wrapped in a [`Message::Reliable`] envelope carrying a
//! 1-based per-(sender, receiver) sequence number and kept on an unacked
//! queue; the receiver delivers envelopes in sequence order exactly once,
//! holding early arrivals and discarding duplicates, and answers each
//! with a cumulative [`Message::Ack`]. Unacked messages are retransmitted
//! with exponential backoff until acked or the attempt budget runs out,
//! at which point the send surfaces as [`CommError::Timeout`] naming the
//! peer and sequence number — a diagnostic, never a hang.
//!
//! Retransmissions are driven opportunistically from every `send`,
//! `recv`, `try_recv`, and `recv_timeout` call (the engines call these
//! constantly), so no background timer thread is needed. Call
//! [`Transport::flush`] before dropping an endpoint: it drains the
//! unacked queue and then lingers until the link has been quiet for a
//! grace period, re-acking peers that are still retransmitting.

use crate::message::Message;
use crate::transport::{CommError, Transport, TransportStats};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Retransmission budget and backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetransmitPolicy {
    /// Delay before the first retransmission; doubles per attempt.
    pub initial_backoff: Duration,
    /// Ceiling on the per-message backoff.
    pub max_backoff: Duration,
    /// Attempts (first send included) before giving up with
    /// [`CommError::Timeout`].
    pub max_attempts: u32,
    /// How long [`Transport::flush`] keeps listening after the last
    /// activity, so peers still retransmitting get their final acks.
    /// Must exceed `max_backoff` or a quiet peer's next retransmit can
    /// arrive after we stopped listening.
    pub flush_quiet: Duration,
    /// Seed for deterministic backoff jitter (see
    /// [`crate::transport::seeded_jitter`]): each retry sleeps up to a
    /// quarter *less* than its exponential backoff, de-synchronizing
    /// peers that failed in lockstep without ever missing a deadline.
    /// Purely a wall-clock effect — delivery order guarantees and
    /// training bits are untouched.
    pub jitter_seed: u64,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(32),
            max_attempts: 40,
            flush_quiet: Duration::from_millis(80),
            jitter_seed: 0x6a69_7474,
        }
    }
}

struct PendingSend {
    seq: u64,
    envelope: Message,
    attempts: u32,
    first_sent: Instant,
    next_retry: Instant,
    backoff: Duration,
}

struct RelState {
    /// Next outgoing sequence number per peer (1-based).
    next_seq: Vec<u64>,
    /// Sent-but-unacknowledged envelopes per peer, in sequence order.
    unacked: Vec<VecDeque<PendingSend>>,
    /// Next incoming sequence number expected per peer.
    expected: Vec<u64>,
    /// Early arrivals (still-encoded payloads) held until the gap
    /// before them fills.
    held: Vec<BTreeMap<u64, bytes::Bytes>>,
    /// In-order messages decoded and awaiting delivery to the caller.
    ready: VecDeque<(usize, Message)>,
    stats: TransportStats,
}

/// Exactly-once per-pair FIFO delivery over a lossy inner transport.
pub struct ReliableTransport<T: Transport> {
    inner: T,
    policy: RetransmitPolicy,
    state: RefCell<RelState>,
}

impl<T: Transport> ReliableTransport<T> {
    /// Wrap `inner` with the default [`RetransmitPolicy`].
    pub fn new(inner: T) -> Self {
        Self::with_policy(inner, RetransmitPolicy::default())
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: T, policy: RetransmitPolicy) -> Self {
        let world = inner.world_size();
        ReliableTransport {
            inner,
            policy,
            state: RefCell::new(RelState {
                next_seq: vec![1; world],
                unacked: (0..world).map(|_| VecDeque::new()).collect(),
                expected: vec![1; world],
                held: (0..world).map(|_| BTreeMap::new()).collect(),
                ready: VecDeque::new(),
                stats: TransportStats::default(),
            }),
        }
    }

    /// The configured retransmission policy.
    pub fn policy(&self) -> &RetransmitPolicy {
        &self.policy
    }

    /// Handle one message from the inner transport. Envelopes are
    /// sequenced, deduped, and acked; acks retire unacked sends;
    /// anything else (a peer not speaking the reliable protocol, or a
    /// self-send looped back) passes straight through.
    fn process_incoming(
        &self,
        state: &mut RelState,
        from: usize,
        msg: Message,
    ) -> Result<(), CommError> {
        match msg {
            Message::Reliable { seq, data } => {
                let expected = state.expected[from];
                if seq < expected {
                    state.stats.duplicates_dropped += 1;
                    crate::obs::proto_count("janus_comm_duplicates_dropped_total");
                } else if seq == expected {
                    let inner_msg = Message::decode(data)?;
                    state.ready.push_back((from, inner_msg));
                    state.expected[from] += 1;
                    // Drain any held messages made contiguous.
                    while let Some(next) = state.held[from].remove(&state.expected[from]) {
                        state.ready.push_back((from, Message::decode(next)?));
                        state.expected[from] += 1;
                    }
                } else {
                    // Early arrival: hold it; duplicates of held frames
                    // are dropped.
                    if state.held[from].insert(seq, data).is_none() {
                        state.stats.out_of_order_held += 1;
                        crate::obs::proto_count("janus_comm_out_of_order_held_total");
                    } else {
                        state.stats.duplicates_dropped += 1;
                        crate::obs::proto_count("janus_comm_duplicates_dropped_total");
                    }
                }
                // Cumulative ack for everything contiguously delivered,
                // including re-acks of duplicates (the peer evidently
                // missed the previous one). A peer that already tore its
                // endpoint down no longer needs acks — erroring here
                // would abort the caller's recv even though the message
                // just delivered is sitting in `ready`.
                let ack = state.expected[from] - 1;
                match self.inner.send(from, Message::Ack { ack }) {
                    Ok(()) => {
                        state.stats.acks_sent += 1;
                        crate::obs::proto_event(self.inner.rank(), "janus_comm_acks_total", || {
                            format!("ack/from{from}/s{ack}")
                        });
                    }
                    Err(CommError::Disconnected) => {}
                    Err(e) => return Err(e),
                }
            }
            Message::Ack { ack } => {
                let queue = &mut state.unacked[from];
                while queue.front().is_some_and(|p| p.seq <= ack) {
                    queue.pop_front();
                }
            }
            other => state.ready.push_back((from, other)),
        }
        Ok(())
    }

    /// Retransmit every overdue unacked envelope; error out when one
    /// exhausts its attempt budget.
    ///
    /// A `Disconnected` retransmit means *that* peer already tore its
    /// endpoint down, so nothing it still needed from us is outstanding:
    /// its queue is dropped and the pump moves on. Propagating the error
    /// instead would abort the caller's send/recv — and, worse, a flush
    /// draining a *different* peer's still-deliverable messages (a
    /// dropped `Shutdown` abandoned that way leaves an open-loop serving
    /// worker blocked in `recv` forever).
    fn pump_retransmits(&self, state: &mut RelState) -> Result<(), CommError> {
        let now = Instant::now();
        for peer in 0..state.unacked.len() {
            let mut peer_gone = false;
            for pending in state.unacked[peer].iter_mut() {
                if pending.next_retry > now {
                    continue;
                }
                if pending.attempts >= self.policy.max_attempts {
                    return Err(CommError::Timeout {
                        context: format!(
                            "reliable delivery of message seq {} from rank {} to peer rank {peer}",
                            pending.seq,
                            self.inner.rank()
                        ),
                        attempts: pending.attempts,
                        elapsed: now.duration_since(pending.first_sent),
                    });
                }
                match self.inner.send(peer, pending.envelope.clone()) {
                    Ok(()) => {}
                    Err(CommError::Disconnected) => {
                        peer_gone = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
                pending.attempts += 1;
                pending.backoff = (pending.backoff * 2).min(self.policy.max_backoff);
                let jitter = crate::transport::seeded_jitter(
                    self.policy.jitter_seed,
                    pending.attempts,
                    pending.seq,
                    pending.backoff,
                );
                if !jitter.is_zero() {
                    state.stats.jittered_backoffs += 1;
                }
                pending.next_retry = now + pending.backoff - jitter;
                state.stats.retransmits += 1;
                let seq = pending.seq;
                crate::obs::proto_event(self.inner.rank(), "janus_comm_retransmits_total", || {
                    format!("retransmit/to{peer}/s{seq}")
                });
            }
            if peer_gone {
                state.unacked[peer].clear();
            }
        }
        Ok(())
    }

    /// Drain everything immediately available from the inner transport,
    /// then run the retransmit pump.
    fn drain_and_pump(&self, state: &mut RelState) -> Result<(), CommError> {
        while let Some((from, msg)) = self.inner.try_recv()? {
            self.process_incoming(state, from, msg)?;
        }
        self.pump_retransmits(state)
    }

    /// How long a blocking receive may wait before the pump must run
    /// again: until the earliest pending retransmit, clamped sensibly.
    fn wait_slice(&self, state: &RelState) -> Duration {
        let now = Instant::now();
        let earliest = state
            .unacked
            .iter()
            .flat_map(|q| q.iter().map(|p| p.next_retry))
            .min();
        match earliest {
            Some(t) => t
                .saturating_duration_since(now)
                .clamp(Duration::from_micros(200), self.policy.max_backoff),
            None => self.policy.max_backoff,
        }
    }

    fn total_unacked(state: &RelState) -> usize {
        state.unacked.iter().map(|q| q.len()).sum()
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        // Self-sends loop back over the inner transport, which is
        // in-process and lossless by construction; no envelope needed.
        if to == self.inner.rank() {
            return self.inner.send(to, msg);
        }
        let mut state = self.state.borrow_mut();
        // Opportunistically retire acked sends and retransmit overdue
        // ones; send-heavy phases must not starve the pump.
        self.drain_and_pump(&mut state)?;
        let seq = state.next_seq[to];
        state.next_seq[to] += 1;
        let envelope = Message::Reliable {
            seq,
            data: msg.encode(),
        };
        let now = Instant::now();
        let jitter = crate::transport::seeded_jitter(
            self.policy.jitter_seed,
            1,
            seq,
            self.policy.initial_backoff,
        );
        if !jitter.is_zero() {
            state.stats.jittered_backoffs += 1;
        }
        state.unacked[to].push_back(PendingSend {
            seq,
            envelope: envelope.clone(),
            attempts: 1,
            first_sent: now,
            next_retry: now + self.policy.initial_backoff - jitter,
            backoff: self.policy.initial_backoff,
        });
        self.inner.send(to, envelope)
    }

    // In every recv path below, already-delivered messages in `ready`
    // are served before a drain error propagates: a peer tearing down
    // concurrently must not swallow traffic that was delivered in order
    // before it left (its final message is typically the very thing the
    // caller is waiting for, e.g. a `Shutdown`).

    fn recv(&self) -> Result<(usize, Message), CommError> {
        loop {
            let mut state = self.state.borrow_mut();
            let pumped = self.drain_and_pump(&mut state);
            if let Some(m) = state.ready.pop_front() {
                return Ok(m);
            }
            pumped?;
            let slice = self.wait_slice(&state);
            drop(state);
            if let Some((from, msg)) = self.inner.recv_timeout(slice)? {
                let mut state = self.state.borrow_mut();
                self.process_incoming(&mut state, from, msg)?;
            }
        }
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        let mut state = self.state.borrow_mut();
        let pumped = self.drain_and_pump(&mut state);
        if let Some(m) = state.ready.pop_front() {
            return Ok(Some(m));
        }
        pumped?;
        Ok(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, Message)>, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut state = self.state.borrow_mut();
            let pumped = self.drain_and_pump(&mut state);
            if let Some(m) = state.ready.pop_front() {
                return Ok(Some(m));
            }
            pumped?;
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let slice = self.wait_slice(&state).min(deadline - now);
            drop(state);
            if let Some((from, msg)) = self.inner.recv_timeout(slice)? {
                let mut state = self.state.borrow_mut();
                self.process_incoming(&mut state, from, msg)?;
            }
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.state.borrow().stats;
        s.add(&self.inner.stats());
        s
    }

    /// Drain the unacked queue, then linger until the link has been
    /// quiet for `flush_quiet`, re-acking peers still retransmitting.
    /// A disconnected peer during flush means that peer already tore
    /// down — its endpoint completed, so nothing it still needed from us
    /// is outstanding — and is treated as delivery, not an error.
    fn flush(&self) -> Result<(), CommError> {
        let mut state = self.state.borrow_mut();
        // Phase 1: wait for every send to be acknowledged.
        while Self::total_unacked(&state) > 0 {
            match self.pump_retransmits(&mut state) {
                Ok(()) => {}
                Err(CommError::Disconnected) => {
                    state.unacked.iter_mut().for_each(VecDeque::clear);
                    break;
                }
                Err(e) => return Err(e),
            }
            let slice = self.wait_slice(&state);
            match self.inner.recv_timeout(slice) {
                Ok(Some((from, msg))) => self.process_incoming(&mut state, from, msg)?,
                Ok(None) => {}
                Err(CommError::Disconnected) => {
                    state.unacked.iter_mut().for_each(VecDeque::clear);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2: linger so peers still retransmitting get their acks.
        let mut last_activity = Instant::now();
        while last_activity.elapsed() < self.policy.flush_quiet {
            match self.inner.recv_timeout(self.policy.flush_quiet / 4) {
                Ok(Some((from, msg))) => {
                    match self.process_incoming(&mut state, from, msg) {
                        Ok(()) | Err(CommError::Disconnected) => {}
                        Err(e) => return Err(e),
                    }
                    last_activity = Instant::now();
                }
                Ok(None) => {}
                Err(CommError::Disconnected) => break,
                Err(e) => return Err(e),
            }
        }
        drop(state);
        self.inner.flush()
    }

    fn death_handle(&self) -> crate::liveness::DeathHandle {
        self.inner.death_handle()
    }

    fn acknowledge_dead(&self, rank: usize) {
        self.inner.acknowledge_dead(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{FaultPlan, FaultyTransport, Partition};
    use crate::local::local_mesh;

    fn lossy_pair(
        plan: FaultPlan,
        policy: RetransmitPolicy,
    ) -> (
        ReliableTransport<FaultyTransport<crate::local::LocalTransport>>,
        ReliableTransport<FaultyTransport<crate::local::LocalTransport>>,
    ) {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        (
            ReliableTransport::with_policy(FaultyTransport::new(a, plan.clone()), policy),
            ReliableTransport::with_policy(FaultyTransport::new(b, plan), policy),
        )
    }

    fn quick_policy() -> RetransmitPolicy {
        RetransmitPolicy {
            initial_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(4),
            max_attempts: 60,
            flush_quiet: Duration::from_millis(10),
            ..RetransmitPolicy::default()
        }
    }

    #[test]
    fn exactly_once_fifo_over_lossy_link() {
        let plan = FaultPlan {
            seed: 77,
            drop: 0.3,
            duplicate: 0.2,
            delay: 0.2,
            max_delay_ops: 3,
            ..FaultPlan::default()
        };
        let (a, b) = lossy_pair(plan, quick_policy());
        const N: u64 = 60;
        let stats = std::thread::scope(|s| {
            let sender = s.spawn(move || {
                for i in 0..N {
                    a.send(1, Message::Barrier { epoch: i }).unwrap();
                }
                a.flush().unwrap();
                a.stats()
            });
            let receiver = s.spawn(move || {
                for i in 0..N {
                    let (from, msg) = b.recv().unwrap();
                    assert_eq!(from, 0);
                    assert_eq!(msg, Message::Barrier { epoch: i }, "FIFO violated");
                }
                b.flush().unwrap();
                // Exactly once: nothing extra is ever delivered.
                assert!(b.try_recv().unwrap().is_none());
            });
            receiver.join().unwrap();
            sender.join().unwrap()
        });
        assert!(
            stats.faults_dropped > 0 && stats.retransmits > 0,
            "test is vacuous without injected loss: {stats:?}"
        );
    }

    /// A peer that tore down with traffic still unacked to it must not
    /// poison delivery to the peers that are still alive: rank 2 exits
    /// while rank 0 owes it an envelope, and rank 0's flush must still
    /// retransmit rank 1's (initially dropped) message until acked
    /// instead of abandoning every queue on the first `Disconnected`.
    #[test]
    fn flush_survives_one_dead_peer_and_still_delivers_to_the_living() {
        let plan = FaultPlan {
            seed: 9,
            partitions: vec![Partition {
                a: 0,
                b: 2,
                from_op: 0,
                to_op: 1,
            }],
            ..FaultPlan::default()
        };
        let mut mesh = local_mesh(3);
        let b = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        let t1 = mesh.pop().unwrap();
        let a = ReliableTransport::with_policy(
            FaultyTransport::new(mesh.pop().unwrap(), plan),
            quick_policy(),
        );
        drop(t1); // rank 1 is gone before rank 0 ever reaches it
                  // The dead peer has the lower rank, so the retransmit pump
                  // reaches its queue first — before the fix, the resulting
                  // `Disconnected` aborted the flush and abandoned rank 2's
                  // still-deliverable message.
        assert!(matches!(
            a.send(1, Message::Barrier { epoch: 0 }),
            Err(CommError::Disconnected)
        ));
        a.send(2, Message::Barrier { epoch: 7 }).unwrap(); // dropped by the partition
        std::thread::scope(|s| {
            let receiver = s.spawn(move || {
                assert_eq!(b.recv().unwrap(), (0, Message::Barrier { epoch: 7 }));
                b.flush().unwrap();
            });
            a.flush().unwrap();
            receiver.join().unwrap();
        });
    }

    /// An in-order message delivered just before the sender tears down
    /// must still come out of `recv`: the ack for it cannot be sent
    /// (the peer is gone) and draining the inner transport reports
    /// `Disconnected`, but neither may outrank the `ready` queue.
    #[test]
    fn recv_serves_delivered_messages_before_reporting_disconnect() {
        let mut mesh = local_mesh(2);
        let b = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        let a = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        a.send(1, Message::Shutdown).unwrap();
        drop(a); // sender exits without waiting for the ack
        assert_eq!(b.recv().unwrap(), (0, Message::Shutdown));
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn retransmit_recovers_partition_window() {
        let plan = FaultPlan {
            seed: 5,
            partitions: vec![Partition {
                a: 0,
                b: 1,
                from_op: 0,
                to_op: 3,
            }],
            ..FaultPlan::default()
        };
        let (a, b) = lossy_pair(plan, quick_policy());
        let stats = std::thread::scope(|s| {
            let sender = s.spawn(move || {
                a.send(1, Message::Barrier { epoch: 42 }).unwrap();
                a.flush().unwrap();
                a.stats()
            });
            let receiver = s.spawn(move || {
                assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 42 });
                b.flush().unwrap();
            });
            receiver.join().unwrap();
            sender.join().unwrap()
        });
        assert!(stats.retransmits >= 3, "{stats:?}");
        assert_eq!(stats.faults_dropped, 3, "{stats:?}");
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let mut mesh = local_mesh(2);
        let raw = mesh.pop().unwrap(); // rank 1, speaks the protocol by hand
        let rel = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        let env = Message::Reliable {
            seq: 1,
            data: Message::Barrier { epoch: 7 }.encode(),
        };
        raw.send(0, env.clone()).unwrap();
        raw.send(0, env).unwrap();
        assert_eq!(rel.recv().unwrap(), (1, Message::Barrier { epoch: 7 }));
        assert!(rel.try_recv().unwrap().is_none(), "duplicate delivered");
        let stats = rel.stats();
        assert_eq!(stats.duplicates_dropped, 1);
        // Both copies were acked (cumulative ack = 1 each time).
        assert_eq!(stats.acks_sent, 2);
        assert_eq!(raw.recv().unwrap().1, Message::Ack { ack: 1 });
        assert_eq!(raw.recv().unwrap().1, Message::Ack { ack: 1 });
    }

    #[test]
    fn out_of_order_arrivals_are_held_and_reordered() {
        let mut mesh = local_mesh(2);
        let raw = mesh.pop().unwrap();
        let rel = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        let env = |seq: u64, epoch: u64| Message::Reliable {
            seq,
            data: Message::Barrier { epoch }.encode(),
        };
        raw.send(0, env(2, 200)).unwrap();
        raw.send(0, env(3, 300)).unwrap();
        raw.send(0, env(1, 100)).unwrap();
        assert_eq!(rel.recv().unwrap().1, Message::Barrier { epoch: 100 });
        assert_eq!(rel.recv().unwrap().1, Message::Barrier { epoch: 200 });
        assert_eq!(rel.recv().unwrap().1, Message::Barrier { epoch: 300 });
        assert_eq!(rel.stats().out_of_order_held, 2);
        // Acks are cumulative: 0, 0 (held), then 3 once the gap filled.
        assert_eq!(raw.recv().unwrap().1, Message::Ack { ack: 0 });
        assert_eq!(raw.recv().unwrap().1, Message::Ack { ack: 0 });
        assert_eq!(raw.recv().unwrap().1, Message::Ack { ack: 3 });
    }

    #[test]
    fn exhausted_retry_budget_surfaces_timeout() {
        let mut mesh = local_mesh(2);
        let _silent = mesh.pop().unwrap(); // rank 1 never acks, never hangs us
        let rel = ReliableTransport::with_policy(
            mesh.pop().unwrap(),
            RetransmitPolicy {
                initial_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(1),
                max_attempts: 3,
                flush_quiet: Duration::from_millis(2),
                ..RetransmitPolicy::default()
            },
        );
        rel.send(1, Message::Barrier { epoch: 1 }).unwrap();
        let start = Instant::now();
        let err = rel.flush().unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
        match &err {
            CommError::Timeout {
                context, attempts, ..
            } => {
                assert_eq!(*attempts, 3);
                assert!(context.contains("peer rank 1"), "{context}");
                assert!(context.contains("seq 1"), "{context}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn self_sends_and_unwrapped_messages_pass_through() {
        let mut mesh = local_mesh(2);
        let raw = mesh.pop().unwrap();
        let rel = ReliableTransport::with_policy(mesh.pop().unwrap(), quick_policy());
        rel.send(0, Message::Barrier { epoch: 9 }).unwrap();
        assert_eq!(rel.recv().unwrap(), (0, Message::Barrier { epoch: 9 }));
        // A peer speaking the plain protocol still reaches us.
        raw.send(0, Message::Shutdown).unwrap();
        assert_eq!(rel.recv().unwrap(), (1, Message::Shutdown));
        assert_eq!(rel.stats(), TransportStats::default());
    }

    #[test]
    fn bidirectional_traffic_under_combined_faults() {
        let plan = FaultPlan {
            seed: 1234,
            drop: 0.15,
            duplicate: 0.15,
            delay: 0.15,
            max_delay_ops: 4,
            reorder: 0.3,
            ..FaultPlan::default()
        };
        let (a, b) = lossy_pair(plan, quick_policy());
        const N: u64 = 40;
        fn chat<T: Transport>(me: T) {
            let mut next_expected = 0u64;
            for sent in 0..N {
                me.send(1 - me.rank(), Message::Barrier { epoch: sent })
                    .unwrap();
                while let Some((_, msg)) = me.try_recv().unwrap() {
                    assert_eq!(
                        msg,
                        Message::Barrier {
                            epoch: next_expected
                        }
                    );
                    next_expected += 1;
                }
            }
            while next_expected < N {
                let (_, msg) = me.recv().unwrap();
                assert_eq!(
                    msg,
                    Message::Barrier {
                        epoch: next_expected
                    }
                );
                next_expected += 1;
            }
            me.flush().unwrap();
        }
        std::thread::scope(|s| {
            s.spawn(move || chat(a));
            s.spawn(move || chat(b));
        });
    }
}
