//! Numerical expert-centric training iteration (the All-to-All baseline).
//!
//! Forward, per block: route tokens, All-to-All the routed slots to the
//! expert owners, compute, All-to-All the results back, combine with the
//! gate weights on a residual stream. Backward mirrors the two
//! collectives; expert owners accumulate weight gradients locally over
//! the full received batch.

use crate::exec::model::{loss_and_grad, ExecConfig, WorkerState};
use crate::exec::weights::{tokens_from_bytes, tokens_to_bytes, Slot};
use janus_comm::collectives::{all_to_all, barrier};
use janus_comm::{Comm, CommError, Transport};
use janus_moe::expert::ExpertGrads;
use janus_tensor::{pool, Matrix};

/// Output of one training iteration.
#[derive(Debug, Clone)]
pub struct IterOutput {
    /// Final block output for this worker's tokens.
    pub output: Matrix,
    /// `½‖y‖²` loss over this worker's output.
    pub loss: f32,
}

/// What each owned expert remembers between forward and backward. The
/// activation tape itself lives in the expert's [`WorkerState::scratch`]
/// slot.
struct ExpertTape {
    /// Global expert id.
    expert: usize,
    /// Origin of every row of the expert batch: `(src_rank, slot)`.
    origins: Vec<(usize, Slot)>,
}

/// Per-block forward bookkeeping.
struct BlockTapeEc {
    /// Slots this worker dispatched, grouped per destination rank.
    sent: Vec<Vec<Slot>>,
    /// Tapes of the experts this worker owns.
    experts: Vec<ExpertTape>,
}

fn a2a_seq(iter: u64, block: usize, phase: u64) -> u64 {
    (iter << 16) | ((block as u64) << 4) | phase
}

/// Group this worker's routed slots by destination rank, in (expert
/// ascending, token ascending) order — the deterministic order both
/// paradigms share.
fn group_slots(cfg: &ExecConfig, routing: &janus_moe::gate::Routing) -> Vec<Vec<Slot>> {
    let mut per_dst: Vec<Vec<Slot>> = vec![Vec::new(); cfg.world()];
    for e in 0..cfg.experts {
        let dst = cfg.owner_of(e);
        for (tok, w) in routing.tokens_for(e) {
            per_dst[dst].push((tok as u32, e as u32, w));
        }
    }
    per_dst
}

/// Run one expert-centric training iteration.
pub fn run_iteration<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    iter: u64,
) -> Result<IterOutput, CommError> {
    let cfg = state.cfg.clone();
    let world = cfg.world();
    let mut x = state.inputs.clone();
    let mut tapes: Vec<BlockTapeEc> = Vec::with_capacity(cfg.blocks);

    // ---- Forward ----
    for b in 0..cfg.blocks {
        let routing = state.gates[b].route(&x);
        let sent = group_slots(&cfg, &routing);

        // Dispatch A2A.
        let chunks: Vec<Vec<u8>> = sent
            .iter()
            .map(|slots| {
                let idx: Vec<usize> = slots.iter().map(|s| s.0 as usize).collect();
                tokens_to_bytes(slots, &x.gather_rows(&idx)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 0), chunks)?;

        // Build per-owned-expert batches in (src asc, slot order) order.
        let decoded: Vec<(Vec<Slot>, Matrix)> = received
            .into_iter()
            .map(|c| tokens_from_bytes(c.into()))
            .collect::<Result<_, _>>()?;
        let owned = cfg.owned_experts(state.rank);
        let e0 = owned.start;
        // Per-owned-expert batch assembly + forward as parallel tasks;
        // each expert's activation tape is recorded in its scratch slot.
        let origins_per: Vec<Vec<(usize, Slot)>> = {
            let decoded = &decoded;
            let experts = &state.experts;
            pool::run_tasks(owned.len(), |local| {
                let e = e0 + local;
                let mut origins = Vec::new();
                for (src, (slots, _)) in decoded.iter().enumerate() {
                    for (i, slot) in slots.iter().enumerate() {
                        if slot.1 as usize == e {
                            origins.push((src, (i, *slot)));
                        }
                    }
                }
                let mut s = state.scratch_slot(b, e).lock();
                s.x.resize(origins.len(), cfg.hidden_dim);
                for (row, (src, (i, _))) in origins.iter().enumerate() {
                    s.x.row_mut(row).copy_from_slice(decoded[*src].1.row(*i));
                }
                experts[b][local].forward_scratch(&mut s);
                origins
                    .into_iter()
                    .map(|(src, (_, slot))| (src, slot))
                    .collect()
            })
        };
        // Collect outputs in expert-ascending order (deterministic
        // regardless of task scheduling).
        let mut expert_tapes = Vec::new();
        let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
            (0..world).map(|_| (Vec::new(), Vec::new())).collect();
        for (local, origins) in origins_per.into_iter().enumerate() {
            let e = e0 + local;
            let s = state.scratch_slot(b, e).lock();
            for (i, (src, slot)) in origins.iter().enumerate() {
                returns[*src].0.push(*slot);
                returns[*src].1.push(s.y.row(i).to_vec());
            }
            expert_tapes.push(ExpertTape { expert: e, origins });
        }

        // Combine A2A: send results home.
        let chunks: Vec<Vec<u8>> = returns
            .iter()
            .map(|(slots, rows)| {
                tokens_to_bytes(slots, &rows_to_matrix(rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 1), chunks)?;

        // y = x + Σ wₖ·expertₖ(x): iterate sources in rank order, which is
        // expert-ascending order because expert ownership is contiguous.
        let mut y = x.clone();
        for chunk in received {
            let (slots, rows) = tokens_from_bytes(chunk.into())?;
            for (i, (tok, _e, w)) in slots.iter().enumerate() {
                y.scatter_add_rows(&[*tok as usize], &[*w], &rows_to_matrix_one(rows.row(i)));
            }
        }
        tapes.push(BlockTapeEc {
            sent,
            experts: expert_tapes,
        });
        x = y;
    }

    let (loss, mut dy) = loss_and_grad(&x);
    let output = x;

    // ---- Backward ----
    let mut grads: Vec<Vec<ExpertGrads>> = (0..cfg.blocks)
        .map(|b| {
            cfg.owned_experts(state.rank)
                .map(|e| {
                    let local = e - cfg.owned_experts(state.rank).start;
                    let _ = e;
                    ExpertGrads::zeros_like(&state.experts[b][local])
                })
                .collect()
        })
        .collect();

    for b in (0..cfg.blocks).rev() {
        let tape = &tapes[b];
        // Send ∂L/∂(expert output) for every dispatched slot: w·dy[token].
        let chunks: Vec<Vec<u8>> = tape
            .sent
            .iter()
            .map(|slots| {
                let mut rows = Vec::with_capacity(slots.len());
                for (tok, _e, w) in slots {
                    let mut row = dy.row(*tok as usize).to_vec();
                    for v in &mut row {
                        *v *= *w;
                    }
                    rows.push(row);
                }
                tokens_to_bytes(slots, &rows_to_matrix(&rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 2), chunks)?;
        let decoded: Vec<(Vec<Slot>, Matrix)> = received
            .into_iter()
            .map(|c| tokens_from_bytes(c.into()))
            .collect::<Result<_, _>>()?;

        // Expert backward over the full received batch, as parallel
        // tasks against each slot's recorded activation tape.
        {
            let decoded = &decoded;
            let experts = &state.experts;
            let tape_experts = &tape.experts;
            let e0 = cfg.owned_experts(state.rank).start;
            pool::run_tasks(tape_experts.len(), |ti| {
                let tape_e = &tape_experts[ti];
                let local = tape_e.expert - e0;
                let mut s = state.scratch_slot(b, tape_e.expert).lock();
                // Rebuild dY in the same order as the forward batch,
                // staged through the slot's `dy` buffer.
                let mut dy_e = std::mem::take(&mut s.dy);
                dy_e.resize(tape_e.origins.len(), cfg.hidden_dim);
                for (row, (src, slot)) in tape_e.origins.iter().enumerate() {
                    let (slots, mat) = &decoded[*src];
                    let pos = slots
                        .iter()
                        .position(|s| s == slot)
                        .expect("backward slot must mirror forward slot");
                    dy_e.row_mut(row).copy_from_slice(mat.row(pos));
                }
                experts[b][local].backward_scratch(&dy_e, &mut s);
                s.dy = dy_e;
            });
        }
        // Accumulate gradients and route dx home, experts ascending.
        let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
            (0..world).map(|_| (Vec::new(), Vec::new())).collect();
        for tape_e in tape.experts.iter() {
            let local = tape_e.expert - cfg.owned_experts(state.rank).start;
            let s = state.scratch_slot(b, tape_e.expert).lock();
            grads[b][local].accumulate(&s.grad);
            for (i, (src, slot)) in tape_e.origins.iter().enumerate() {
                returns[*src].0.push(*slot);
                returns[*src].1.push(s.dx.row(i).to_vec());
            }
        }
        let chunks: Vec<Vec<u8>> = returns
            .iter()
            .map(|(slots, rows)| {
                tokens_to_bytes(slots, &rows_to_matrix(rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 3), chunks)?;

        // dx = dy (residual) + returned expert input-gradients.
        let mut dx = dy.clone();
        for chunk in received {
            let (slots, rows) = tokens_from_bytes(chunk.into())?;
            for (i, (tok, _e, _w)) in slots.iter().enumerate() {
                dx.scatter_add_rows(&[*tok as usize], &[1.0], &rows_to_matrix_one(rows.row(i)));
            }
        }
        dy = dx;
    }

    // ---- Update ----
    for (b, block_grads) in grads.iter().enumerate() {
        for (local, g) in block_grads.iter().enumerate() {
            state.experts[b][local].apply(g, cfg.lr);
        }
    }
    barrier(comm, iter)?;
    Ok(IterOutput { output, loss })
}

fn rows_to_matrix(rows: &[Vec<f32>], cols: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        debug_assert_eq!(r.len(), cols);
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

fn rows_to_matrix_one(row: &[f32]) -> Matrix {
    Matrix::from_vec(1, row.len(), row.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_comm::runtime::run_workers;

    #[test]
    fn iteration_runs_and_losses_are_finite() {
        let cfg = ExecConfig::small();
        let out = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            run_iteration(&comm, &mut state, 0).unwrap()
        });
        for o in &out {
            assert!(o.loss.is_finite() && o.loss > 0.0);
            assert_eq!(o.output.shape(), (cfg.tokens, cfg.hidden_dim));
        }
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let cfg = ExecConfig::small();
        let losses = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            (0..5)
                .map(|i| run_iteration(&comm, &mut state, i).unwrap().loss)
                .collect::<Vec<_>>()
        });
        for per_worker in losses {
            assert!(
                per_worker.last().unwrap() < per_worker.first().unwrap(),
                "loss did not decrease: {per_worker:?}"
            );
        }
    }

    #[test]
    fn updated_weights_agree_across_repeat_runs() {
        // Determinism: two independent runs produce identical weights.
        let cfg = ExecConfig::small();
        let run = || {
            run_workers(cfg.world(), |comm| {
                let mut state = WorkerState::init(&cfg, comm.rank());
                for i in 0..3 {
                    run_iteration(&comm, &mut state, i).unwrap();
                }
                state.experts
            })
        };
        let a = run();
        let b = run();
        for (wa, wb) in a.iter().zip(&b) {
            for (ba, bb) in wa.iter().zip(wb) {
                for (ea, eb) in ba.iter().zip(bb) {
                    assert_eq!(ea, eb);
                }
            }
        }
    }
}
