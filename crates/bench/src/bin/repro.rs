//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [plan|table1|goodput|fig3|fig12|fig13|fig14|fig15|fig16|fig17|rmetric|ablations|compute|transport|bench|faults|crash|trace|all]...
//! ```
//!
//! With no arguments, runs everything. Add `--json` to also dump the raw
//! rows as JSON (for EXPERIMENTS.md bookkeeping).
//!
//! `repro bench` runs the perf suite (compute + transport) and rewrites
//! the `BENCH_compute.json` / `BENCH_transport.json` baselines. With
//! `--check` it instead compares the fresh run against the committed
//! baselines and exits non-zero on a >10% regression in any gated
//! ratio; set `UPDATE_BENCH=1` to force a baseline refresh even with
//! `--check` (the CI perf shard runs `--check`, so refreshing baselines
//! is always an explicit, reviewed act).

use janus_bench::experiments::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--json" && a != "--check");
    if args.is_empty() || args.iter().any(|a| a == "all") {
        args = [
            "plan",
            "rmetric",
            "table1",
            "goodput",
            "fig3",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablations",
            "compute",
            "faults",
            "crash",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for arg in &args {
        match arg.as_str() {
            "table1" => {
                let rows = table1::run();
                table1::print(&rows);
                dump(json, "table1", &rows);
            }
            "goodput" => {
                let rows = goodput::run();
                goodput::print(&rows);
                dump(json, "goodput", &rows);
            }
            "fig3" => {
                let rows = fig3::run();
                fig3::print(&rows);
                dump(json, "fig3", &rows);
            }
            "fig12" => {
                let rows = fig12::run();
                fig12::print(&rows);
                dump(json, "fig12", &rows);
            }
            "fig13" => {
                let summary = fig13::run();
                fig13::print(&summary);
                dump(json, "fig13", &summary);
            }
            "fig14" => {
                let rows = fig14::run();
                fig14::print(&rows);
                dump(json, "fig14", &rows);
            }
            "fig15" => {
                let rows = sensitivity::run_fig15();
                sensitivity::print("Figure 15 — batch-size sensitivity (Janus vs Tutel)", &rows);
                dump(json, "fig15", &rows);
            }
            "fig16" => {
                let rows = sensitivity::run_fig16();
                sensitivity::print(
                    "Figure 16 — sequence-length sensitivity (OOM = exceeds 80 GB)",
                    &rows,
                );
                dump(json, "fig16", &rows);
            }
            "fig17" => {
                let rows = fig17::run();
                fig17::print(&rows);
                dump(json, "fig17", &rows);
            }
            "ablations" => {
                let credits = ablations::credit_sweep();
                let latency = ablations::latency_sweep();
                let a2a = ablations::a2a_style();
                ablations::print(&credits, &latency, &a2a);
                dump(json, "ablation_credits", &credits);
                dump(json, "ablation_latency", &latency);
                dump(json, "ablation_a2a", &a2a);
            }
            "compute" => {
                let report = compute::run();
                compute::print(&report);
                let path = compute::write_json(&report, "BENCH_compute.json")
                    .expect("write BENCH_compute.json");
                println!("wrote {path}");
                dump(json, "compute", &report);
            }
            "transport" => {
                let report = transport::run();
                transport::print(&report);
                let path = transport::write_json(&report, "BENCH_transport.json")
                    .expect("write BENCH_transport.json");
                println!("wrote {path}");
                dump(json, "transport", &report);
            }
            "bench" => {
                let creport = compute::run();
                compute::print(&creport);
                let treport = transport::run();
                transport::print(&treport);
                dump(json, "compute", &creport);
                dump(json, "transport", &treport);
                let update = std::env::var("UPDATE_BENCH").is_ok_and(|v| v == "1");
                if check && !update {
                    let run_gates = |c: &compute::Report, t: &transport::Report| {
                        let mut gates = Vec::new();
                        match std::fs::read_to_string("BENCH_compute.json") {
                            Ok(base) => gates.extend(benchgate::check_compute(&base, c)),
                            Err(e) => eprintln!("no compute baseline ({e}); skipping its gates"),
                        }
                        match std::fs::read_to_string("BENCH_transport.json") {
                            Ok(base) => gates.extend(benchgate::check_transport(&base, t)),
                            Err(e) => eprintln!("no transport baseline ({e}); skipping its gates"),
                        }
                        gates
                    };
                    let mut gates = run_gates(&creport, &treport);
                    if !gates.iter().all(|g| g.ok) {
                        // One retry before failing: re-measure and keep
                        // each metric's best attempt, so a single noisy
                        // timing window on a shared box cannot fail CI.
                        eprintln!("a gate regressed; re-measuring once to rule out machine noise");
                        let creport2 = compute::run();
                        let treport2 = transport::run();
                        gates = benchgate::merge_best(gates, run_gates(&creport2, &treport2));
                    }
                    if !benchgate::print(&gates) {
                        eprintln!(
                            "perf gate failed: a gated ratio regressed more than {:.0}% \
                             below its committed baseline (UPDATE_BENCH=1 refreshes baselines \
                             after an intentional change)",
                            benchgate::TOLERANCE * 100.0
                        );
                        std::process::exit(1);
                    }
                } else {
                    let path = compute::write_json(&creport, "BENCH_compute.json")
                        .expect("write BENCH_compute.json");
                    println!("wrote {path}");
                    let path = transport::write_json(&treport, "BENCH_transport.json")
                        .expect("write BENCH_transport.json");
                    println!("wrote {path}");
                }
            }
            "faults" => {
                let report = faults::run();
                faults::print(&report);
                dump(json, "faults", &report);
            }
            "crash" => {
                let report = crash::run();
                crash::print(&report);
                dump(json, "crash", &report);
            }
            "trace" => {
                let path = trace_export::write("fig13_timeline.json").expect("write chrome trace");
                println!("wrote {path} (open in chrome://tracing or Perfetto)");
                let report = trace_run::run().expect("instrumented training run");
                trace_run::print(&report);
                dump(json, "trace", &report);
            }
            "rmetric" => {
                let rows = rmetric::run();
                rmetric::print(&rows);
                dump(json, "rmetric", &rows);
            }
            "plan" => {
                let rows = plan::run();
                plan::print(&rows);
                dump(json, "plan", &rows);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn dump<T: serde::Serialize>(enabled: bool, name: &str, rows: &T) {
    if enabled {
        println!(
            "JSON[{name}]: {}",
            serde_json::to_string(rows).expect("experiment rows serialize")
        );
    }
}
