//! Wire vocabulary of the Janus data and control planes.

use crate::transport::CommError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One message between workers. Bulk payloads (`Bytes`) hold serialized
/// expert weights, gradients, or token batches; the runtime never looks
/// inside them.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Data-centric control plane: "send me expert `expert` of MoE block
    /// `block`" (the paper's pull request). `nonce` is unique per request
    /// attempt at the requester, echoed back in the payload, so a
    /// deadline-driven re-request can never be satisfied by a stale
    /// response from an earlier attempt (or an earlier iteration).
    PullRequest {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Requester-unique request id, echoed in the response.
        nonce: u32,
    },
    /// Data-centric data plane: the requested expert's weights.
    ExpertPayload {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Echo of the pull request's nonce.
        nonce: u32,
        /// Serialized weights.
        data: Bytes,
    },
    /// Data-centric backward: a (pre-reduced) gradient for an expert,
    /// carrying how many workers' contributions it already aggregates.
    GradPush {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Number of per-worker contributions already summed in.
        contributions: u32,
        /// Serialized gradient.
        data: Bytes,
    },
    /// Expert-centric: tokens routed to a peer (one All-to-All lane).
    TokenDispatch {
        /// MoE block index.
        block: u32,
        /// Collective sequence number (disambiguates successive
        /// All-to-Alls of the same block in fwd/bwd).
        seq: u32,
        /// Serialized token batch.
        data: Bytes,
    },
    /// Expert-centric: processed tokens returned to their origin.
    TokenReturn {
        /// MoE block index.
        block: u32,
        /// Collective sequence number.
        seq: u32,
        /// Serialized token batch.
        data: Bytes,
    },
    /// Synchronization marker (end of iteration, cache invalidation).
    Barrier {
        /// Monotone barrier epoch.
        epoch: u64,
    },
    /// Generic collective payload used by [`crate::collectives`].
    Collective {
        /// Operation sequence number.
        seq: u64,
        /// Chunk payload.
        data: Bytes,
    },
    /// Orderly teardown of a peer connection.
    Shutdown,
    /// Reliability envelope ([`crate::reliable::ReliableTransport`]):
    /// `data` is an encoded inner message, `seq` its per-(sender,
    /// receiver)-pair sequence number (starting at 1). The receiver
    /// delivers per-pair in `seq` order exactly once.
    Reliable {
        /// Per-pair sequence number, 1-based.
        seq: u64,
        /// The encoded inner [`Message`].
        data: Bytes,
    },
    /// Cumulative acknowledgement: every [`Message::Reliable`] frame the
    /// sender of this ack received from the addressee with `seq <= ack`
    /// has been delivered. Acks are idempotent and never retransmitted
    /// on their own — a lost ack is recovered by the data retransmit it
    /// would have suppressed.
    Ack {
        /// Highest contiguous delivered sequence number.
        ack: u64,
    },
    /// Liveness beacon ([`crate::liveness::LivenessMonitor`]): "I am
    /// alive". Emitted every N virtual send-ops, consumed by the
    /// monitor on the receiving side, never delivered to the protocol
    /// layers above it.
    Heartbeat {
        /// Monotone per-sender heartbeat sequence number.
        seq: u64,
    },
}

const TAG_PULL: u8 = 1;
const TAG_EXPERT: u8 = 2;
const TAG_GRAD: u8 = 3;
const TAG_DISPATCH: u8 = 4;
const TAG_RETURN: u8 = 5;
const TAG_BARRIER: u8 = 6;
const TAG_COLLECTIVE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_RELIABLE: u8 = 9;
const TAG_ACK: u8 = 10;
const TAG_HEARTBEAT: u8 = 11;

impl Message {
    /// Encode into a byte buffer (framing is added separately by
    /// [`crate::codec`]).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16 + self.payload_len());
        match self {
            Message::PullRequest {
                block,
                expert,
                nonce,
            } => {
                b.put_u8(TAG_PULL);
                b.put_u32(*block);
                b.put_u32(*expert);
                b.put_u32(*nonce);
            }
            Message::ExpertPayload {
                block,
                expert,
                nonce,
                data,
            } => {
                b.put_u8(TAG_EXPERT);
                b.put_u32(*block);
                b.put_u32(*expert);
                b.put_u32(*nonce);
                put_bytes(&mut b, data);
            }
            Message::GradPush {
                block,
                expert,
                contributions,
                data,
            } => {
                b.put_u8(TAG_GRAD);
                b.put_u32(*block);
                b.put_u32(*expert);
                b.put_u32(*contributions);
                put_bytes(&mut b, data);
            }
            Message::TokenDispatch { block, seq, data } => {
                b.put_u8(TAG_DISPATCH);
                b.put_u32(*block);
                b.put_u32(*seq);
                put_bytes(&mut b, data);
            }
            Message::TokenReturn { block, seq, data } => {
                b.put_u8(TAG_RETURN);
                b.put_u32(*block);
                b.put_u32(*seq);
                put_bytes(&mut b, data);
            }
            Message::Barrier { epoch } => {
                b.put_u8(TAG_BARRIER);
                b.put_u64(*epoch);
            }
            Message::Collective { seq, data } => {
                b.put_u8(TAG_COLLECTIVE);
                b.put_u64(*seq);
                put_bytes(&mut b, data);
            }
            Message::Shutdown => b.put_u8(TAG_SHUTDOWN),
            Message::Reliable { seq, data } => {
                b.put_u8(TAG_RELIABLE);
                b.put_u64(*seq);
                put_bytes(&mut b, data);
            }
            Message::Ack { ack } => {
                b.put_u8(TAG_ACK);
                b.put_u64(*ack);
            }
            Message::Heartbeat { seq } => {
                b.put_u8(TAG_HEARTBEAT);
                b.put_u64(*seq);
            }
        }
        b.freeze()
    }

    /// Decode a buffer produced by [`Message::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Message, CommError> {
        if buf.remaining() < 1 {
            return Err(CommError::Decode("empty message".into()));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_PULL => {
                need(&buf, 12)?;
                Message::PullRequest {
                    block: buf.get_u32(),
                    expert: buf.get_u32(),
                    nonce: buf.get_u32(),
                }
            }
            TAG_EXPERT => {
                need(&buf, 12)?;
                let block = buf.get_u32();
                let expert = buf.get_u32();
                let nonce = buf.get_u32();
                Message::ExpertPayload {
                    block,
                    expert,
                    nonce,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_GRAD => {
                need(&buf, 12)?;
                let block = buf.get_u32();
                let expert = buf.get_u32();
                let contributions = buf.get_u32();
                Message::GradPush {
                    block,
                    expert,
                    contributions,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_DISPATCH => {
                need(&buf, 8)?;
                let block = buf.get_u32();
                let seq = buf.get_u32();
                Message::TokenDispatch {
                    block,
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_RETURN => {
                need(&buf, 8)?;
                let block = buf.get_u32();
                let seq = buf.get_u32();
                Message::TokenReturn {
                    block,
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_BARRIER => {
                need(&buf, 8)?;
                Message::Barrier {
                    epoch: buf.get_u64(),
                }
            }
            TAG_COLLECTIVE => {
                need(&buf, 8)?;
                let seq = buf.get_u64();
                Message::Collective {
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_RELIABLE => {
                need(&buf, 8)?;
                let seq = buf.get_u64();
                Message::Reliable {
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_ACK => {
                need(&buf, 8)?;
                Message::Ack { ack: buf.get_u64() }
            }
            TAG_HEARTBEAT => {
                need(&buf, 8)?;
                Message::Heartbeat { seq: buf.get_u64() }
            }
            other => return Err(CommError::Decode(format!("unknown message tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(CommError::Decode(format!(
                "{} trailing bytes after message",
                buf.remaining()
            )));
        }
        Ok(msg)
    }

    /// Bulk payload size, for logging and traffic accounting.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::ExpertPayload { data, .. }
            | Message::GradPush { data, .. }
            | Message::TokenDispatch { data, .. }
            | Message::TokenReturn { data, .. }
            | Message::Collective { data, .. }
            | Message::Reliable { data, .. } => data.len(),
            _ => 0,
        }
    }
}

fn put_bytes(b: &mut BytesMut, data: &Bytes) {
    b.put_u32(data.len() as u32);
    b.put_slice(data);
}

fn need(buf: &Bytes, n: usize) -> Result<(), CommError> {
    if buf.remaining() < n {
        Err(CommError::Decode(format!(
            "message truncated: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn take_bytes(buf: &mut Bytes) -> Result<Bytes, CommError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    Ok(buf.split_to(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let encoded = msg.encode();
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        roundtrip(Message::PullRequest {
            block: 3,
            expert: 17,
            nonce: 41,
        });
        roundtrip(Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: u32::MAX,
            data: Bytes::from(vec![1, 2, 3, 4, 5]),
        });
        roundtrip(Message::GradPush {
            block: 0,
            expert: 31,
            contributions: 8,
            data: Bytes::from(vec![0u8; 100]),
        });
        roundtrip(Message::TokenDispatch {
            block: 5,
            seq: 9,
            data: Bytes::from(vec![7; 16]),
        });
        roundtrip(Message::TokenReturn {
            block: 5,
            seq: 10,
            data: Bytes::new(),
        });
        roundtrip(Message::Barrier { epoch: u64::MAX });
        roundtrip(Message::Collective {
            seq: 42,
            data: Bytes::from(vec![9; 3]),
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Reliable {
            seq: 1 << 40,
            data: Bytes::from(vec![8; 9]),
        });
        roundtrip(Message::Ack { ack: 0 });
        roundtrip(Message::Heartbeat { seq: 1 << 33 });
    }

    #[test]
    fn reliable_envelope_nests_any_message() {
        let inner = Message::GradPush {
            block: 2,
            expert: 5,
            contributions: 3,
            data: Bytes::from(vec![1, 2, 3]),
        };
        let wrapped = Message::Reliable {
            seq: 7,
            data: inner.encode(),
        };
        match Message::decode(wrapped.encode()).unwrap() {
            Message::Reliable { seq, data } => {
                assert_eq!(seq, 7);
                assert_eq!(Message::decode(data).unwrap(), inner);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn payload_len_reports_bulk_size() {
        let m = Message::ExpertPayload {
            block: 0,
            expert: 0,
            nonce: 0,
            data: Bytes::from(vec![0; 77]),
        };
        assert_eq!(m.payload_len(), 77);
        assert_eq!(Message::Shutdown.payload_len(), 0);
    }

    #[test]
    fn decode_rejects_empty() {
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(CommError::Decode(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let err = Message::decode(Bytes::from(vec![200])).unwrap_err();
        assert!(err.to_string().contains("unknown message tag"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut full = Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: 0,
            data: Bytes::from(vec![1, 2, 3]),
        }
        .encode()
        .to_vec();
        full.truncate(full.len() - 2);
        assert!(Message::decode(Bytes::from(full)).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut full = Message::Barrier { epoch: 1 }.encode().to_vec();
        full.push(0xFF);
        let err = Message::decode(Bytes::from(full)).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
