//! Worker-side model state for the numerical engines.
//!
//! The numerical engines exist to demonstrate the paper's §3.2
//! equivalence claim end to end, so the model is a stack of pure MoE
//! blocks (`y = x + Σ_k wₖ·expertₖ(x)`, top-k gated). Attention layers
//! add identical local compute to both paradigms and are omitted; the
//! simulation engines model their cost instead.

use janus_moe::expert::{ExpertFfn, ExpertGrads, ExpertScratch};
use janus_moe::gate::TopKGate;
use janus_tensor::Matrix;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Gradient contributions addressed to this worker's owned experts,
/// keyed by `(block, expert)`: `(sender, grad, contribution count)`
/// tuples buffered until all of the world's contributions arrived.
///
/// Lives on [`WorkerState`] (not inside one iteration's runtime) because
/// a fast peer may pass the end-of-iteration barriers and push its
/// next-iteration gradient while this worker is still draining the
/// current iteration's barrier — the contribution must survive into the
/// next iteration instead of being dropped with the old runtime.
pub type GradInbox = Mutex<HashMap<(usize, usize), Vec<(usize, ExpertGrads, u32)>>>;

/// Configuration of a numerical training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Number of machines.
    pub machines: usize,
    /// Workers (GPUs) per machine.
    pub gpus_per_machine: usize,
    /// Token dimension `H`.
    pub hidden_dim: usize,
    /// Number of (MoE) blocks.
    pub blocks: usize,
    /// Experts per block (divisible by the world size).
    pub experts: usize,
    /// Gate fan-out.
    pub top_k: usize,
    /// Tokens per worker per iteration.
    pub tokens: usize,
    /// Base RNG seed; every worker derives the same weights from it.
    pub seed: u64,
    /// SGD learning rate.
    pub lr: f32,
}

impl ExecConfig {
    /// A small default configuration for tests and examples.
    pub fn small() -> Self {
        ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            top_k: 2,
            tokens: 16,
            seed: 7,
            lr: 0.05,
        }
    }

    /// Total workers.
    pub fn world(&self) -> usize {
        self.machines * self.gpus_per_machine
    }

    /// Experts per worker.
    pub fn experts_per_worker(&self) -> usize {
        assert_eq!(
            self.experts % self.world(),
            0,
            "experts must divide the world size"
        );
        self.experts / self.world()
    }

    /// Owner rank of global expert `e`.
    pub fn owner_of(&self, e: usize) -> usize {
        e / self.experts_per_worker()
    }

    /// Machine index of a rank.
    pub fn machine_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_machine
    }

    /// The local rank designated to fetch external expert `e` for its
    /// machine (round-robin over local workers), and to aggregate its
    /// gradient pre-reduction.
    pub fn designated_local(&self, machine: usize, e: usize) -> usize {
        machine * self.gpus_per_machine + e % self.gpus_per_machine
    }

    /// Global expert ids owned by `rank`.
    pub fn owned_experts(&self, rank: usize) -> std::ops::Range<usize> {
        let per = self.experts_per_worker();
        rank * per..(rank + 1) * per
    }
}

/// One worker's model replica + expert shard.
pub struct WorkerState {
    /// Configuration.
    pub cfg: ExecConfig,
    /// This worker's rank.
    pub rank: usize,
    /// Replicated gates, one per block (identical on every worker).
    pub gates: Vec<TopKGate>,
    /// Owned experts: `experts[block][local_index]`.
    pub experts: Vec<Vec<ExpertFfn>>,
    /// This worker's token batch.
    pub inputs: Matrix,
    /// Cross-iteration inbox of gradient contributions for owned experts.
    pub grads_inbox: GradInbox,
    /// Reusable compute buffers, one slot per `(block, global expert)`
    /// (index `block · experts + expert`). A slot doubles as the
    /// activation tape of its expert between forward and backward, and
    /// its allocations persist across iterations, so steady-state expert
    /// passes are allocation-free. Slots are independent, so the engines
    /// run per-expert compute as parallel tasks, each locking only its
    /// own slot.
    pub scratch: Vec<Mutex<ExpertScratch>>,
}

impl WorkerState {
    /// Deterministic initialization: gates and experts depend only on
    /// `(seed, block, expert)` — *not* on which worker materializes them —
    /// so every engine builds bit-identical weights.
    pub fn init(cfg: &ExecConfig, rank: usize) -> Self {
        let gates = (0..cfg.blocks)
            .map(|b| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xA11CE << 8) ^ b as u64);
                TopKGate::new(cfg.hidden_dim, cfg.experts, cfg.top_k, &mut rng)
            })
            .collect();
        let experts = (0..cfg.blocks)
            .map(|b| {
                cfg.owned_experts(rank)
                    .map(|e| expert_weights(cfg, b, e))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xDA7A << 16) ^ rank as u64);
        let inputs = Matrix::uniform(cfg.tokens, cfg.hidden_dim, 1.0, &mut rng);
        let scratch = (0..cfg.blocks * cfg.experts)
            .map(|_| Mutex::new(ExpertScratch::new()))
            .collect();
        WorkerState {
            cfg: cfg.clone(),
            rank,
            gates,
            experts,
            inputs,
            grads_inbox: Mutex::new(HashMap::new()),
            scratch,
        }
    }

    /// The scratch slot of `(block, global expert)`.
    pub fn scratch_slot(&self, block: usize, e: usize) -> &Mutex<ExpertScratch> {
        &self.scratch[block * self.cfg.experts + e]
    }

    /// The canonical initial weights of global expert `e` in block `b`.
    pub fn reference_expert(cfg: &ExecConfig, b: usize, e: usize) -> ExpertFfn {
        expert_weights(cfg, b, e)
    }

    /// Mutable access to an owned expert by global id.
    pub fn owned_mut(&mut self, block: usize, e: usize) -> &mut ExpertFfn {
        let per = self.cfg.experts_per_worker();
        assert_eq!(
            self.cfg.owner_of(e),
            self.rank,
            "expert {e} not owned by rank {}",
            self.rank
        );
        &mut self.experts[block][e % per]
    }

    /// Shared access to an owned expert by global id.
    pub fn owned(&self, block: usize, e: usize) -> &ExpertFfn {
        let per = self.cfg.experts_per_worker();
        assert_eq!(
            self.cfg.owner_of(e),
            self.rank,
            "expert {e} not owned by rank {}",
            self.rank
        );
        &self.experts[block][e % per]
    }
}

fn expert_weights(cfg: &ExecConfig, b: usize, e: usize) -> ExpertFfn {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0_0000 ^ ((b as u64) << 32) ^ e as u64);
    ExpertFfn::new(cfg.hidden_dim, &mut rng)
}

/// Apply an accumulated gradient (sum over all `W` workers' token slots)
/// to an owned expert with plain SGD.
pub fn apply_gradient(expert: &mut ExpertFfn, grad: &ExpertGrads, lr: f32) {
    expert.apply(grad, lr);
}

/// The loss used by both engines: `L = ½‖y‖²` over the worker's final
/// output, whose gradient is simply `y`.
pub fn loss_and_grad(y: &Matrix) -> (f32, Matrix) {
    let loss = 0.5 * y.data().iter().map(|v| v * v).sum::<f32>();
    (loss, y.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_helpers() {
        let cfg = ExecConfig::small();
        assert_eq!(cfg.world(), 4);
        assert_eq!(cfg.experts_per_worker(), 2);
        assert_eq!(cfg.owner_of(0), 0);
        assert_eq!(cfg.owner_of(7), 3);
        assert_eq!(cfg.machine_of(3), 1);
        assert_eq!(cfg.owned_experts(2), 4..6);
        assert_eq!(cfg.designated_local(1, 5), 3);
    }

    #[test]
    fn init_is_rank_consistent() {
        let cfg = ExecConfig::small();
        let w0 = WorkerState::init(&cfg, 0);
        let w1 = WorkerState::init(&cfg, 1);
        // Same gates everywhere.
        assert_eq!(w0.gates[0], w1.gates[0]);
        // Different input tokens per worker.
        assert_ne!(w0.inputs, w1.inputs);
        // Expert weights depend only on (block, expert id).
        assert_eq!(w1.experts[0][0], WorkerState::reference_expert(&cfg, 0, 2));
    }

    #[test]
    fn owned_accessors_check_ownership() {
        let cfg = ExecConfig::small();
        let mut w1 = WorkerState::init(&cfg, 1);
        let _ = w1.owned(0, 2);
        let _ = w1.owned_mut(1, 3);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_expert_access_panics() {
        let cfg = ExecConfig::small();
        let w1 = WorkerState::init(&cfg, 1);
        let _ = w1.owned(0, 0);
    }

    #[test]
    fn loss_gradient_is_identity() {
        let y = Matrix::from_rows(&[&[3.0, 4.0]]);
        let (l, g) = loss_and_grad(&y);
        assert!((l - 12.5).abs() < 1e-6);
        assert_eq!(g, y);
    }
}
