//! TCP full-mesh transport over `std::net`.
//!
//! Every pair of ranks shares one TCP connection carrying length-prefixed
//! [`Message`] frames (see [`crate::codec`]). Rank `i` connects to every
//! lower rank and accepts from every higher rank; a 4-byte handshake
//! identifies the connector. One reader thread per peer demultiplexes
//! incoming frames into the endpoint's inbox.
//!
//! This is the same control-plane/data-plane split the paper builds on
//! BytePS (§6), collapsed onto one socket per pair: requests and payloads
//! are distinct message types rather than distinct fabrics.

use crate::codec::{read_message_buffered, write_message, DEFAULT_MAX_FRAME};
use crate::message::Message;
use crate::transport::{CommError, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// A TCP mesh endpoint.
pub struct TcpTransport {
    rank: usize,
    world: usize,
    /// Write half per peer (`None` at our own rank).
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Loopback for self-sends.
    self_tx: Sender<(usize, Message)>,
    inbox: Receiver<(usize, Message)>,
}

impl TcpTransport {
    /// Build one endpoint given a pre-bound listener and every rank's
    /// address. Blocks until the full mesh is connected. Uses the default
    /// [`ConnectRetry`] budget; see [`TcpTransport::from_listener_with`]
    /// to bound it explicitly.
    pub fn from_listener(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<Self, CommError> {
        TcpTransport::from_listener_with(rank, listener, addrs, &ConnectRetry::default())
    }

    /// [`TcpTransport::from_listener`] with an explicit connection retry
    /// budget, so callers control how long mesh assembly may block before
    /// failing with a [`CommError::Timeout`].
    pub fn from_listener_with(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        retry: &ConnectRetry,
    ) -> Result<Self, CommError> {
        let world = addrs.len();
        assert!(rank < world, "rank out of range");
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();

        // Connect to every lower rank (they bound their listeners first).
        for (j, addr) in addrs.iter().enumerate().take(rank) {
            let mut stream = connect_with_retry(*addr, retry)?;
            stream.set_nodelay(true)?;
            stream.write_all(&(rank as u32).to_be_bytes())?;
            stream.flush()?;
            streams[j] = Some(stream);
        }
        // Accept from every higher rank; the handshake tells us which.
        for _ in rank + 1..world {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut hs = [0u8; 4];
            stream.read_exact(&mut hs)?;
            let peer = u32::from_be_bytes(hs) as usize;
            if peer <= rank || peer >= world {
                return Err(CommError::Decode(format!("bad handshake rank {peer}")));
            }
            if streams[peer].is_some() {
                return Err(CommError::Decode(format!(
                    "duplicate connection from rank {peer}"
                )));
            }
            streams[peer] = Some(stream);
        }

        let (tx, inbox) = unbounded::<(usize, Message)>();
        let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(world);
        for (peer, slot) in streams.into_iter().enumerate() {
            match slot {
                None => writers.push(None),
                Some(stream) => {
                    let reader = stream.try_clone()?;
                    spawn_reader(peer, reader, tx.clone());
                    writers.push(Some(Mutex::new(stream)));
                }
            }
        }
        Ok(TcpTransport {
            rank,
            world,
            writers,
            self_tx: tx,
            inbox,
        })
    }

    /// Orderly teardown: shut down every connection's write half so peer
    /// readers observe EOF at a frame boundary.
    pub fn close(&self) {
        for w in self.writers.iter().flatten() {
            let _ = w.lock().shutdown(std::net::Shutdown::Write);
        }
    }
}

fn spawn_reader(peer: usize, stream: TcpStream, tx: Sender<(usize, Message)>) {
    thread::Builder::new()
        .name(format!("tcp-reader-{peer}"))
        .spawn(move || {
            // Buffered reads amortize kernel round-trips across small
            // frames (a bulk payload larger than the buffer bypasses it
            // and reads straight into its own allocation), and one scratch
            // buffer per peer is reused for every frame under the codec's
            // size threshold: the control-plane fast path does one read
            // syscall per buffer-full and allocates nothing per message.
            let mut stream = std::io::BufReader::with_capacity(64 * 1024, stream);
            let mut scratch = Vec::new();
            loop {
                match read_message_buffered(&mut stream, DEFAULT_MAX_FRAME, &mut scratch) {
                    Ok(Some(msg)) => {
                        if tx.send((peer, msg)).is_err() {
                            return; // endpoint dropped
                        }
                    }
                    // Clean EOF or any error: stop reading. Dropping this
                    // tx clone eventually disconnects the inbox when all
                    // readers are gone and the endpoint itself is dropped.
                    Ok(None) | Err(_) => return,
                }
            }
        })
        .expect("spawn tcp reader thread");
}

/// Retry budget for mesh-assembly connections: how many attempts, with
/// what (exponentially growing, bounded) backoff between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectRetry {
    /// Maximum connection attempts before giving up.
    pub max_attempts: u32,
    /// Sleep after the first failed attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling (each failure doubles the sleep up to this).
    pub max_backoff: Duration,
    /// Seed for deterministic backoff jitter (see
    /// [`crate::transport::seeded_jitter`]): each sleep is shortened by
    /// up to a quarter so a mesh's worth of ranks dialing the same slow
    /// listener spread out instead of reconnecting in phase.
    pub jitter_seed: u64,
}

impl Default for ConnectRetry {
    fn default() -> Self {
        // Worst case ~11 s: enough for every peer of a slow mesh to bind
        // its listener, bounded enough that a dead address fails loudly.
        ConnectRetry {
            max_attempts: 60,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x6a69_7474,
        }
    }
}

/// Connect to `addr`, retrying with bounded exponential backoff up to
/// `retry.max_attempts` times. On exhaustion, returns
/// [`CommError::Timeout`] reporting the attempt count and total elapsed
/// time (the last OS error is folded into the context).
pub fn connect_with_retry(addr: SocketAddr, retry: &ConnectRetry) -> Result<TcpStream, CommError> {
    assert!(
        retry.max_attempts > 0,
        "retry budget must allow one attempt"
    );
    let start = std::time::Instant::now();
    let mut delay = retry.initial_backoff;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 1..=retry.max_attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last_err = Some(e);
                if attempt < retry.max_attempts {
                    let jitter = crate::transport::seeded_jitter(
                        retry.jitter_seed,
                        attempt,
                        addr.port() as u64,
                        delay,
                    );
                    if !jitter.is_zero() {
                        crate::obs::proto_count("janus_comm_connect_jitter_total");
                    }
                    thread::sleep(delay - jitter);
                    delay = (delay * 2).min(retry.max_backoff);
                }
            }
        }
    }
    Err(CommError::Timeout {
        context: format!(
            "connect to {addr} (last error: {})",
            last_err.expect("at least one failed attempt")
        ),
        attempts: retry.max_attempts,
        elapsed: start.elapsed(),
    })
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        assert!(to < self.world, "rank {to} out of range");
        let _span = crate::obs::send_hook(self.rank, to, &msg);
        if to == self.rank {
            return self
                .self_tx
                .send((self.rank, msg))
                .map_err(|_| CommError::Disconnected);
        }
        let writer = self.writers[to]
            .as_ref()
            .expect("non-self rank must have a stream");
        let mut stream = writer.lock();
        write_message(&mut *stream, &msg)
    }

    fn recv(&self) -> Result<(usize, Message), CommError> {
        let _span = crate::obs::recv_wait_hook(self.rank);
        let m = self.inbox.recv().map_err(|_| CommError::Disconnected)?;
        crate::obs::recv_hook(self.rank, &m.1);
        Ok(m)
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        use crossbeam::channel::TryRecvError;
        match self.inbox.try_recv() {
            Ok(m) => {
                crate::obs::recv_hook(self.rank, &m.1);
                Ok(Some(m))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, Message)>, CommError> {
        use crossbeam::channel::RecvTimeoutError;
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => {
                crate::obs::recv_hook(self.rank, &m.1);
                Ok(Some(m))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected),
        }
    }
}

/// Bind `world` loopback listeners on ephemeral ports and assemble the
/// full mesh, returning endpoints in rank order.
pub fn tcp_mesh_localhost(world: usize) -> Result<Vec<TcpTransport>, CommError> {
    assert!(world > 0);
    let listeners: Vec<TcpListener> = (0..world)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<Result<_, _>>()?;

    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| {
            let addrs = addrs.clone();
            thread::Builder::new()
                .name(format!("tcp-mesh-setup-{rank}"))
                .spawn(move || TcpTransport::from_listener(rank, listener, &addrs))
                .expect("spawn mesh setup thread")
        })
        .collect();

    let mut endpoints = Vec::with_capacity(world);
    for h in handles {
        endpoints.push(h.join().expect("mesh setup thread panicked")?);
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn two_rank_mesh_round_trip() {
        let mut mesh = tcp_mesh_localhost(2).unwrap();
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        a.send(
            1,
            Message::PullRequest {
                block: 1,
                expert: 5,
                nonce: 77,
            },
        )
        .unwrap();
        assert_eq!(
            b.recv().unwrap(),
            (
                0,
                Message::PullRequest {
                    block: 1,
                    expert: 5,
                    nonce: 77
                }
            )
        );
        b.send(
            0,
            Message::ExpertPayload {
                block: 1,
                expert: 5,
                nonce: 77,
                data: Bytes::from(vec![9; 64]),
            },
        )
        .unwrap();
        let (from, msg) = a.recv().unwrap();
        assert_eq!(from, 1);
        assert_eq!(msg.payload_len(), 64);
    }

    #[test]
    fn four_rank_mesh_all_pairs() {
        let mesh = tcp_mesh_localhost(4).unwrap();
        // Every rank sends its rank to every other rank.
        for t in &mesh {
            for peer in 0..4 {
                if peer != t.rank() {
                    t.send(
                        peer,
                        Message::Barrier {
                            epoch: t.rank() as u64,
                        },
                    )
                    .unwrap();
                }
            }
        }
        for t in &mesh {
            let mut seen = [false; 4];
            for _ in 0..3 {
                let (from, msg) = t.recv().unwrap();
                assert_eq!(msg, Message::Barrier { epoch: from as u64 });
                assert!(!seen[from], "duplicate from {from}");
                seen[from] = true;
            }
        }
    }

    #[test]
    fn self_send_loops_back() {
        let mesh = tcp_mesh_localhost(1).unwrap();
        mesh[0].send(0, Message::Shutdown).unwrap();
        assert_eq!(mesh[0].recv().unwrap(), (0, Message::Shutdown));
    }

    #[test]
    fn connect_retry_budget_is_bounded_and_reported() {
        // Bind a listener to reserve a port, then drop it so nothing is
        // listening there: every connection attempt is refused.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let retry = ConnectRetry {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..ConnectRetry::default()
        };
        let start = std::time::Instant::now();
        let err = connect_with_retry(dead_addr, &retry).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "bounded budget must fail fast"
        );
        match &err {
            CommError::Timeout {
                context,
                attempts,
                elapsed,
            } => {
                assert_eq!(*attempts, 3);
                assert!(context.contains(&dead_addr.to_string()), "{context}");
                assert!(*elapsed < Duration::from_secs(5));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The rendered error names the attempts and the address.
        let s = err.to_string();
        assert!(s.contains("3 attempts"), "{s}");
        assert!(s.contains("connect to"), "{s}");
    }

    #[test]
    fn mesh_assembly_honours_custom_retry_budget() {
        // A one-rank world connects to nobody, so assembly succeeds even
        // with a minimal budget; this pins the `from_listener_with` API.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![listener.local_addr().unwrap()];
        let retry = ConnectRetry {
            max_attempts: 1,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            ..ConnectRetry::default()
        };
        let t = TcpTransport::from_listener_with(0, listener, &addrs, &retry).unwrap();
        assert_eq!(t.world_size(), 1);
    }

    #[test]
    fn large_payload_survives_framing() {
        let mut mesh = tcp_mesh_localhost(2).unwrap();
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        let data: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        a.send(
            1,
            Message::Collective {
                seq: 1,
                data: Bytes::from(data.clone()),
            },
        )
        .unwrap();
        match b.recv().unwrap().1 {
            Message::Collective { data: got, .. } => assert_eq!(&got[..], &data[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_senders_do_not_interleave_frames() {
        let mut mesh = tcp_mesh_localhost(2).unwrap();
        let b = mesh.pop().unwrap();
        let a = std::sync::Arc::new(mesh.pop().unwrap());
        let mut joins = Vec::new();
        for t in 0..4 {
            let a = a.clone();
            joins.push(thread::spawn(move || {
                for i in 0..50u32 {
                    let payload = vec![t as u8; 1000 + i as usize];
                    a.send(
                        1,
                        Message::TokenDispatch {
                            block: t,
                            seq: i,
                            data: Bytes::from(payload),
                        },
                    )
                    .unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for _ in 0..200 {
            let (_, msg) = b.recv().unwrap();
            match msg {
                Message::TokenDispatch { block, seq, data } => {
                    assert_eq!(data.len(), 1000 + seq as usize);
                    assert!(data.iter().all(|&x| x == block as u8));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
