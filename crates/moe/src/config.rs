//! Model configurations and the paper's presets (Table 1, §7.5).

use serde::{Deserialize, Serialize};

/// Per-block structure: a plain Transformer block or an MoE block with a
/// given expert count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// Attention + dense FFN.
    Transformer,
    /// Attention + gate + expert layer with this many experts.
    Moe {
        /// Number of experts in the block's expert layer.
        experts: usize,
    },
}

impl BlockKind {
    /// Expert count (0 for a dense block).
    pub fn experts(&self) -> usize {
        match self {
            BlockKind::Transformer => 0,
            BlockKind::Moe { experts } => *experts,
        }
    }

    /// True for MoE blocks.
    pub fn is_moe(&self) -> bool {
        matches!(self, BlockKind::Moe { .. })
    }
}

/// A complete model + training-task description, the unit every engine
/// consumes. Field names follow the paper's notation (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Per-block structure, length = total block count.
    pub blocks: Vec<BlockKind>,
    /// Token dimension `H`.
    pub hidden_dim: usize,
    /// Per-worker batch size `B`.
    pub batch: usize,
    /// Sequence length `S`.
    pub seq_len: usize,
    /// Gate fan-out `k` (topK).
    pub top_k: usize,
    /// Bytes per element on the wire and in activations (2 = fp16, the
    /// paper's training precision).
    pub dtype_bytes: usize,
    /// Vocabulary size, used only for total-parameter accounting.
    pub vocab: usize,
}

impl ModelConfig {
    /// Number of tokens generated per worker per iteration after gating:
    /// `T = B·S·k` (paper §5.1.3).
    pub fn tokens_per_worker(&self) -> usize {
        self.batch * self.seq_len * self.top_k
    }

    /// Indices of the MoE blocks.
    pub fn moe_blocks(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_moe())
            .map(|(i, _)| i)
            .collect()
    }

    /// Experts per worker `E` for one MoE block under expert parallelism
    /// over `num_workers` GPUs. The paper always divides experts evenly.
    pub fn experts_per_worker(&self, block: usize, num_workers: usize) -> usize {
        let e = self.blocks[block].experts();
        assert!(
            e.is_multiple_of(num_workers),
            "block {block}: {e} experts not divisible across {num_workers} workers"
        );
        e / num_workers
    }

    /// Parameters in one expert FFN: two `H×4H` matrices plus biases
    /// (paper §5.1.3 counts `8H²`; biases add `5H`).
    pub fn expert_params(&self) -> usize {
        8 * self.hidden_dim * self.hidden_dim + 5 * self.hidden_dim
    }

    /// On-the-wire size of one expert in bytes.
    pub fn expert_bytes(&self) -> f64 {
        (self.expert_params() * self.dtype_bytes) as f64
    }

    /// Bytes of one token's activation vector.
    pub fn token_bytes(&self) -> f64 {
        (self.hidden_dim * self.dtype_bytes) as f64
    }

    /// Approximate total parameter count: attention (4H² per block),
    /// dense FFNs (8H²), experts, gate matrices (H·experts), and the
    /// embedding table.
    pub fn total_params(&self) -> usize {
        let h = self.hidden_dim;
        let mut params = self.vocab * h; // embeddings
        for b in &self.blocks {
            params += 4 * h * h; // attention projections
            match b {
                BlockKind::Transformer => params += 8 * h * h,
                BlockKind::Moe { experts } => {
                    params += experts * self.expert_params() + h * experts;
                }
            }
        }
        params
    }

    /// Validate divisibility of every MoE block across `num_workers`.
    pub fn validate_for(&self, num_workers: usize) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            if let BlockKind::Moe { experts } = b {
                if experts % num_workers != 0 {
                    return Err(format!(
                        "block {i}: {experts} experts not divisible across {num_workers} workers"
                    ));
                }
            }
        }
        if self.blocks.is_empty() {
            return Err("model has no blocks".into());
        }
        Ok(())
    }
}

/// The paper's evaluation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelPreset {
    /// Encoder-style; blocks 2, 5, 8, 11 are MoE (paper §7.1).
    MoeBert,
    /// Decoder-style; block 11 is MoE.
    MoeGpt,
    /// Decoder-style; all 12 blocks are MoE.
    MoeTransformerXl,
}

impl ModelPreset {
    /// Instantiate with `experts` experts in every MoE block (paper uses
    /// 16 on 16 GPUs and 32 on 32 GPUs), and Table 1 hyperparameters.
    pub fn config(self, experts: usize) -> ModelConfig {
        let moe = BlockKind::Moe { experts };
        let t = BlockKind::Transformer;
        match self {
            ModelPreset::MoeBert => ModelConfig {
                name: format!("MoE-BERT/{experts}e"),
                blocks: vec![t, t, moe, t, t, moe, t, t, moe, t, t, moe],
                hidden_dim: 768,
                batch: 256,
                seq_len: 128,
                top_k: 2,
                dtype_bytes: 2,
                vocab: 30_522,
            },
            ModelPreset::MoeGpt => ModelConfig {
                name: format!("MoE-GPT/{experts}e"),
                blocks: vec![t, t, t, t, t, t, t, t, t, t, t, moe],
                hidden_dim: 768,
                batch: 256,
                seq_len: 64,
                top_k: 4,
                dtype_bytes: 2,
                vocab: 50_257,
            },
            ModelPreset::MoeTransformerXl => ModelConfig {
                name: format!("MoE-Transformer-xl/{experts}e"),
                blocks: vec![moe; 12],
                hidden_dim: 256,
                batch: 64,
                seq_len: 512,
                top_k: 2,
                dtype_bytes: 2,
                vocab: 32_000,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelPreset::MoeBert => "MoE-BERT",
            ModelPreset::MoeGpt => "MoE-GPT",
            ModelPreset::MoeTransformerXl => "MoE-Transformer-xl",
        }
    }

    /// All three evaluation presets in paper order.
    pub fn all() -> [ModelPreset; 3] {
        [
            ModelPreset::MoeBert,
            ModelPreset::MoeGpt,
            ModelPreset::MoeTransformerXl,
        ]
    }
}

/// PR-MoE-Transformer-xl (paper §7.5): four MoE blocks — the first two
/// shallow ones with few experts, the last two deep ones with many.
///
/// * 16-GPU variant: experts 16/16/64/64, `B = 32`, `S = 256`, `k = 2`.
/// * 32-GPU variant: experts 32/32/128/128, `B = 64`.
pub fn pr_moe_transformer_xl(num_gpus: usize) -> ModelConfig {
    assert!(
        num_gpus == 16 || num_gpus == 32,
        "paper evaluates PR-MoE on 16 or 32 GPUs"
    );
    let (small, large, batch) = if num_gpus == 16 {
        (16, 64, 32)
    } else {
        (32, 128, 64)
    };
    let t = BlockKind::Transformer;
    let s = BlockKind::Moe { experts: small };
    let l = BlockKind::Moe { experts: large };
    ModelConfig {
        name: format!("PR-MoE-Transformer-xl/{num_gpus}gpu"),
        // 12 blocks; MoE at 2, 5 (shallow, small) and 8, 11 (deep, large).
        blocks: vec![t, t, s, t, t, s, t, t, l, t, t, l],
        hidden_dim: 256,
        batch,
        seq_len: 256,
        top_k: 2,
        dtype_bytes: 2,
        vocab: 32_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_hyperparameters() {
        let bert = ModelPreset::MoeBert.config(32);
        assert_eq!(bert.batch, 256);
        assert_eq!(bert.seq_len, 128);
        assert_eq!(bert.top_k, 2);
        assert_eq!(bert.hidden_dim, 768);
        assert_eq!(bert.moe_blocks(), vec![2, 5, 8, 11]);
        assert_eq!(bert.blocks.len(), 12);

        let gpt = ModelPreset::MoeGpt.config(32);
        assert_eq!(gpt.moe_blocks(), vec![11]);
        assert_eq!((gpt.batch, gpt.seq_len, gpt.top_k), (256, 64, 4));

        let xl = ModelPreset::MoeTransformerXl.config(32);
        assert_eq!(xl.moe_blocks().len(), 12);
        assert_eq!(
            (xl.batch, xl.seq_len, xl.top_k, xl.hidden_dim),
            (64, 512, 2, 256)
        );
    }

    #[test]
    fn tokens_per_worker_is_bsk() {
        let bert = ModelPreset::MoeBert.config(32);
        assert_eq!(bert.tokens_per_worker(), 256 * 128 * 2);
    }

    #[test]
    fn expert_params_close_to_8h2() {
        let bert = ModelPreset::MoeBert.config(32);
        let h = 768;
        assert_eq!(bert.expert_params(), 8 * h * h + 5 * h);
        // fp16 expert ≈ 9.4 MB.
        assert!((bert.expert_bytes() - 9.44e6).abs() < 0.1e6);
    }

    #[test]
    fn experts_per_worker_divides_evenly() {
        let bert = ModelPreset::MoeBert.config(32);
        assert_eq!(bert.experts_per_worker(2, 32), 1);
        assert_eq!(bert.experts_per_worker(2, 16), 2);
        assert!(bert.validate_for(32).is_ok());
        assert!(bert.validate_for(7).is_err());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_split_panics() {
        let bert = ModelPreset::MoeBert.config(32);
        bert.experts_per_worker(2, 5);
    }

    #[test]
    fn total_params_match_paper_model_sizes() {
        // Paper Table 1 model sizes (fp params): BERT/32e = 0.73B,
        // GPT/32e = 0.31B, xl/32e = 0.21B. Our accounting omits layernorm
        // and task heads, so allow ~15 % slack.
        let close = |got: usize, paper: f64| {
            let got = got as f64;
            (got - paper).abs() / paper < 0.20
        };
        assert!(close(
            ModelPreset::MoeBert.config(32).total_params(),
            0.73e9
        ));
        assert!(close(
            ModelPreset::MoeBert.config(16).total_params(),
            0.42e9
        ));
        assert!(close(ModelPreset::MoeGpt.config(32).total_params(), 0.31e9));
        assert!(close(
            ModelPreset::MoeTransformerXl.config(32).total_params(),
            0.21e9
        ));
        assert!(close(
            ModelPreset::MoeTransformerXl.config(16).total_params(),
            0.11e9
        ));
    }

    #[test]
    fn pr_moe_shapes() {
        let m16 = pr_moe_transformer_xl(16);
        let moe = m16.moe_blocks();
        assert_eq!(moe.len(), 4);
        assert_eq!(m16.blocks[moe[0]].experts(), 16);
        assert_eq!(m16.blocks[moe[3]].experts(), 64);
        assert_eq!(m16.experts_per_worker(moe[0], 16), 1);
        assert_eq!(m16.experts_per_worker(moe[3], 16), 4);

        let m32 = pr_moe_transformer_xl(32);
        assert_eq!(m32.batch, 64);
        assert_eq!(m32.experts_per_worker(m32.moe_blocks()[3], 32), 4);
    }

    #[test]
    #[should_panic(expected = "16 or 32")]
    fn pr_moe_rejects_other_sizes() {
        pr_moe_transformer_xl(8);
    }

    #[test]
    fn config_serializes() {
        let c = ModelPreset::MoeGpt.config(16);
        let json = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
