//! The serving pipeline as a `janus-netsim` task graph.
//!
//! Before touching a socket, the replica-scaling question — *how does
//! p99 latency move as the replica budget grows under a Zipf-skewed
//! gate?* — is answered in the deterministic fluid simulator. Each
//! request becomes a small task chain: an arrival timer (a zero-byte
//! transfer whose latency is the open-loop arrival time), a gate
//! compute on the frontend lane, one transfer→compute→transfer chain
//! per expert chunk (each replica is a serial lane, so queueing at hot
//! experts emerges naturally), and a combine compute joining the
//! returns. Request latency is `finish(combine) − arrival`, and the
//! chunking mirrors [`crate::engine`]: per-expert token lists split
//! into `counts[e]` plan-fixed chunks.

use janus_netsim::{simulate, GraphBuilder, TaskId, TaskSpec, Work};
use janus_topology::ids::LinkId;

use crate::model::ServeModel;
use crate::workload::ServeWorkload;

/// Physical constants of the simulated serving cluster.
#[derive(Debug, Clone)]
pub struct SimOpts {
    /// Open-loop interarrival time between requests, seconds.
    pub arrival_period_s: f64,
    /// Expert service time per routed token slot, seconds.
    pub per_token_s: f64,
    /// Frontend gate / combine cost per request, seconds.
    pub gate_s: f64,
    /// Fixed per-dispatch issue latency, seconds.
    pub net_latency_s: f64,
    /// Frontend↔worker link bandwidth, bytes per second.
    pub link_bytes_per_s: f64,
}

impl Default for SimOpts {
    fn default() -> Self {
        SimOpts {
            arrival_period_s: 4e-3,
            per_token_s: 2e-3,
            gate_s: 1e-4,
            net_latency_s: 2e-4,
            link_bytes_per_s: 10e9,
        }
    }
}

/// Latency distribution of one simulated sweep point.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Replica budget the point ran with.
    pub budget: usize,
    /// Replica counts the budget apportioned to.
    pub counts: Vec<usize>,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Completion time of the whole stream, milliseconds.
    pub makespan_ms: f64,
}

/// Simulate serving `wl` with `counts` replicas per expert. The gate is
/// evaluated for real (per request), so the simulated load is exactly
/// the load the engine would dispatch. Deterministic.
pub fn simulate_serving(
    model: &ServeModel,
    wl: &ServeWorkload,
    counts: &[usize],
    opts: &SimOpts,
) -> SimPoint {
    let hidden = model.hidden_dim();
    // Link 0: frontend -> workers; link 1: workers -> frontend.
    let mut g = GraphBuilder::new(2, 0);
    let fe_lane = g.lane();
    let replica_lanes: Vec<Vec<_>> = counts
        .iter()
        .map(|&c| (0..c).map(|_| g.lane()).collect())
        .collect();
    let mut arrivals = Vec::with_capacity(wl.requests.len());
    let mut combines: Vec<TaskId> = Vec::with_capacity(wl.requests.len());
    for (i, req) in wl.requests.iter().enumerate() {
        let at = i as f64 * opts.arrival_period_s;
        arrivals.push(at);
        let timer = g.task(
            Work::Transfer {
                route: vec![],
                bytes: 0.0,
                lane: None,
                latency: at,
            },
            &[],
        );
        let gate = g.add(
            TaskSpec::new(Work::Compute {
                lane: fe_lane,
                duration: opts.gate_s,
            })
            .priority(i as i64)
            .label(format!("gate/{i}")),
            &[timer],
        );
        let routing = model.gate.route(&req.tokens);
        let mut returns = Vec::new();
        for (e, lanes) in replica_lanes.iter().enumerate() {
            let slots = routing.tokens_for(e).len();
            if slots == 0 {
                continue;
            }
            // Same plan-fixed chunking as the engine.
            let per = slots.div_ceil(counts[e]);
            let mut remaining = slots;
            let mut replica = 0usize;
            while remaining > 0 {
                let chunk = remaining.min(per);
                remaining -= chunk;
                let bytes = (chunk * hidden * 4) as f64;
                let dispatch = g.task(
                    Work::Transfer {
                        route: vec![LinkId(0)],
                        bytes,
                        lane: None,
                        latency: opts.net_latency_s,
                    },
                    &[gate],
                );
                let ffn = g.add(
                    TaskSpec::new(Work::Compute {
                        lane: lanes[replica],
                        duration: chunk as f64 * opts.per_token_s,
                    })
                    .priority(i as i64)
                    .label(format!("ffn/{i}/e{e}/r{replica}")),
                    &[dispatch],
                );
                let ret = g.task(
                    Work::Transfer {
                        route: vec![LinkId(1)],
                        bytes,
                        lane: None,
                        latency: opts.net_latency_s,
                    },
                    &[ffn],
                );
                returns.push(ret);
                replica += 1;
            }
        }
        let combine = g.add(
            TaskSpec::new(Work::Compute {
                lane: fe_lane,
                duration: opts.gate_s,
            })
            .priority(i as i64)
            .label(format!("req/{i}")),
            &returns,
        );
        combines.push(combine);
    }
    let caps = vec![opts.link_bytes_per_s, opts.link_bytes_per_s];
    let res = simulate(&g.build(), &caps).expect("serving graph simulates");
    let mut latencies: Vec<f64> = combines
        .iter()
        .zip(&arrivals)
        .map(|(&c, &at)| res.records[c.0].finish - at)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    SimPoint {
        budget: counts.iter().sum(),
        counts: counts.to_vec(),
        p50_ms: 1e3 * pct(&latencies, 0.50),
        p99_ms: 1e3 * pct(&latencies, 0.99),
        mean_ms: 1e3 * mean,
        makespan_ms: 1e3 * res.makespan,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub(crate) fn pct(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::plan_from_workload;
    use crate::workload::ServeConfig;

    fn sweep(budgets: &[usize]) -> Vec<SimPoint> {
        let cfg = ServeConfig {
            requests: 48,
            ..ServeConfig::small()
        };
        let model = ServeModel::new(&cfg);
        let wl = ServeWorkload::generate(&cfg);
        budgets
            .iter()
            .map(|&b| {
                let (_, plan) = plan_from_workload(&model, &wl, b);
                simulate_serving(&model, &wl, &plan.counts, &SimOpts::default())
            })
            .collect()
    }

    #[test]
    fn p99_improves_with_replica_budget() {
        let points = sweep(&[4, 8, 12]);
        assert!(
            points[0].p99_ms > points[1].p99_ms && points[1].p99_ms >= points[2].p99_ms,
            "p99 must fall as replicas scale: {:?}",
            points.iter().map(|p| p.p99_ms).collect::<Vec<_>>()
        );
        assert!(points[0].p50_ms >= points[2].p50_ms);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = sweep(&[6]);
        let b = sweep(&[6]);
        assert_eq!(a[0].p99_ms.to_bits(), b[0].p99_ms.to_bits());
        assert_eq!(a[0].makespan_ms.to_bits(), b[0].makespan_ms.to_bits());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pct(&v, 0.50), 2.0);
        assert_eq!(pct(&v, 0.99), 4.0);
        assert_eq!(pct(&v, 0.0), 1.0);
    }
}
