//! Janus: a unified expert-centric / data-centric MoE training framework.
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates:
//!
//! * [`paradigm`] — the `R = BSk/(4nHE)` gain metric and the per-block
//!   paradigm choice that makes Janus "unified" (§5.1.3, §7.5).
//! * [`priority`] — the topology-aware priority strategies: Algorithm 1's
//!   staggered ring for intra-node pulls and the PCIe-switch-aware split
//!   for draining the CPU cache (§5.2).
//! * [`queue`] — the Janus Task Queue components: the credit-based buffer
//!   of the Intra-Node Scheduler (§5.1.1) and the Cache Manager plus
//!   gradient pre-reduction of the Inter-Node Scheduler (§5.1.2).
//! * [`plan`] — compiles a cluster + model + paradigm choice into each
//!   worker's ordered fetch plan.
//! * [`sim`] — discrete-event engines that execute one training iteration
//!   of either paradigm on the [`janus_netsim`] simulator and report
//!   iteration time, traffic, timelines, and memory (every figure of the
//!   paper's evaluation is a view over these reports).
//! * [`exec`] — numerical engines that run real MoE training over
//!   [`janus_comm`] transports in both paradigms, demonstrating the
//!   paper's equivalence claim (§3.2) end to end.
//! * [`ckpt`] — versioned, checksummed per-rank checkpoints with a
//!   bitwise `save(load(x)) == x` guarantee, plus the policy and store
//!   the trainer commits cuts to.
//! * [`exec::supervisor`] — restartable-worker training: crashed ranks
//!   are detected (liveness board), the world is restored from the
//!   latest committed cut, and the recovered run stays bitwise
//!   identical to the fault-free one.

pub mod ckpt;
pub mod paradigm;
pub mod placement;
pub mod plan;
pub mod priority;
pub mod queue;

pub mod sim {
    //! Discrete-event iteration engines (one per paradigm) and reports.
    pub mod collectives;
    pub mod common;
    pub mod data_centric;
    pub mod drift;
    pub mod engine;
    pub mod expert_centric;
    pub mod memory;
    pub mod report;
    pub mod setup;

    pub use engine::{simulate_iteration, EngineOpts, ParadigmPolicy};
    pub use report::IterationReport;
    pub use setup::SimSetup;
}

pub mod exec {
    //! Numerical training engines over real message transports.
    pub mod data_centric;
    pub mod elastic;
    pub mod expert_centric;
    pub mod model;
    pub(crate) mod obs;
    pub mod supervisor;
    pub mod trainer;
    pub mod unified;
    pub mod weights;
}

pub use paradigm::{choose_paradigm, Paradigm, ParadigmPolicy};
pub use placement::{Move, Placement};
pub use plan::{Fnv64, IterationPlan, PlanOpts};
