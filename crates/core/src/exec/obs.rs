//! Span helpers for engine instrumentation.
//!
//! Thin sugar over the global `janus-obs` recorder: every helper defers
//! all string building to a closure that only runs when recording is
//! enabled, so instrumented hot paths cost one relaxed atomic load when
//! it is not (the default — and the bitwise-equivalence guarantee relies
//! on recording never touching numerics either way).

use janus_obs::{global, SpanGuard, SpanMeta};

/// Open a span on the global recorder. `meta` returns `(name, tid)` and
/// runs only when recording is enabled. Returns `None` (for free) when
/// disabled.
#[inline]
pub(crate) fn span(
    rank: usize,
    cat: &'static str,
    meta: impl FnOnce() -> (String, String),
) -> Option<SpanGuard<'static>> {
    global().span(|| {
        let (name, tid) = meta();
        SpanMeta::new(name, cat, rank as u32, tid)
    })
}

/// End `span` (if recording) and feed its duration into histogram `hist`.
#[inline]
pub(crate) fn end_into(span: Option<SpanGuard<'static>>, hist: &'static str) {
    if let Some(g) = span {
        let dur = g.end();
        global().observe(hist, dur);
    }
}
