//! Directed link descriptors.
//!
//! Every physical connection is modeled as a pair of directed links so
//! that full-duplex hardware (NVLink, PCIe, RDMA NICs) carries traffic in
//! both directions independently, as it does on real A100 machines.

use crate::ids::{LinkId, MachineId, PcieSwitchId, WorkerId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which way a directed link carries data, relative to its anchor entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Out of the anchor (GPU egress, switch→CPU upstream, NIC transmit).
    Egress,
    /// Into the anchor (GPU ingress, CPU→switch downstream, NIC receive).
    Ingress,
}

/// The hardware class a directed link belongs to.
///
/// The anchors mirror the paper's Figure 6: per-GPU NVLink ports into the
/// NVSwitch fabric, per-GPU PCIe lanes to the local PCIe switch, per-switch
/// uplinks to CPU memory, and one RDMA NIC per machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// A GPU's NVLink port into the intra-machine NVSwitch fabric. The
    /// fabric itself is non-blocking, so only per-GPU ports constrain
    /// intra-node traffic.
    Nvlink {
        worker: WorkerId,
        dir: LinkDirection,
    },
    /// The PCIe lanes between a GPU and its PCIe switch.
    PcieGpu {
        worker: WorkerId,
        dir: LinkDirection,
    },
    /// The PCIe lanes between a PCIe switch and CPU memory. This is the
    /// contended resource in the paper's Figure 8 (two GPUs behind one
    /// switch pulling the same cached expert).
    PcieSwitch {
        switch: PcieSwitchId,
        dir: LinkDirection,
    },
    /// A machine's RDMA NIC. Inter-machine flows cross the source NIC
    /// egress and the destination NIC ingress.
    Nic {
        machine: MachineId,
        dir: LinkDirection,
    },
}

impl LinkKind {
    /// Human-readable label used in traces.
    pub fn label(&self) -> String {
        match self {
            LinkKind::Nvlink { worker, dir } => format!("nvlink/{worker}/{}", dir_tag(*dir)),
            LinkKind::PcieGpu { worker, dir } => format!("pcie-gpu/{worker}/{}", dir_tag(*dir)),
            LinkKind::PcieSwitch { switch, dir } => {
                format!("pcie-switch/{switch}/{}", dir_tag(*dir))
            }
            LinkKind::Nic { machine, dir } => format!("nic/{machine}/{}", dir_tag(*dir)),
        }
    }

    /// True when this link crosses the machine boundary (i.e. it is NIC
    /// bandwidth). Cross-node traffic accounting in the engines counts
    /// bytes on these links only.
    pub fn is_cross_node(&self) -> bool {
        matches!(self, LinkKind::Nic { .. })
    }
}

fn dir_tag(dir: LinkDirection) -> &'static str {
    match dir {
        LinkDirection::Egress => "out",
        LinkDirection::Ingress => "in",
    }
}

/// A directed link with a fixed capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Dense identifier; doubles as the index into capacity vectors.
    pub id: LinkId,
    /// Hardware class and anchor.
    pub kind: LinkKind,
    /// Capacity in bytes per second.
    pub bandwidth: f64,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.1} GB/s",
            self.id,
            self.kind.label(),
            self.bandwidth / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let k = LinkKind::Nvlink {
            worker: WorkerId(3),
            dir: LinkDirection::Egress,
        };
        assert_eq!(k.label(), "nvlink/w3/out");
        let k = LinkKind::PcieSwitch {
            switch: PcieSwitchId(2),
            dir: LinkDirection::Ingress,
        };
        assert_eq!(k.label(), "pcie-switch/sw2/in");
        let k = LinkKind::Nic {
            machine: MachineId(1),
            dir: LinkDirection::Egress,
        };
        assert_eq!(k.label(), "nic/M1/out");
    }

    #[test]
    fn only_nic_links_are_cross_node() {
        assert!(LinkKind::Nic {
            machine: MachineId(0),
            dir: LinkDirection::Egress
        }
        .is_cross_node());
        assert!(!LinkKind::Nvlink {
            worker: WorkerId(0),
            dir: LinkDirection::Egress
        }
        .is_cross_node());
        assert!(!LinkKind::PcieGpu {
            worker: WorkerId(0),
            dir: LinkDirection::Ingress
        }
        .is_cross_node());
        assert!(!LinkKind::PcieSwitch {
            switch: PcieSwitchId(0),
            dir: LinkDirection::Egress
        }
        .is_cross_node());
    }

    #[test]
    fn display_includes_bandwidth() {
        let link = Link {
            id: LinkId(4),
            kind: LinkKind::Nic {
                machine: MachineId(0),
                dir: LinkDirection::Ingress,
            },
            bandwidth: 25e9,
        };
        let s = link.to_string();
        assert!(s.contains("L4"), "{s}");
        assert!(s.contains("25.0 GB/s"), "{s}");
    }
}
