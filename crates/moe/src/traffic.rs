//! The paper's analytic communication model (§5.1.3) and Table 1.
//!
//! All quantities are *cross-machine traffic per machine per iteration*,
//! the metric the paper reports, in bytes unless noted. Element counts are
//! converted with the model's `dtype_bytes` (fp16 in the evaluation).

use crate::config::ModelConfig;
use serde::Serialize;

/// Forward-phase data-centric traffic per machine for one MoE block, in
/// elements: `Comm_DC = 8H²·E·m·(n−1)` — each machine pulls every
/// external expert exactly once thanks to the hierarchical cache.
pub fn comm_dc_elements(h: usize, e: usize, m: usize, n: usize) -> f64 {
    8.0 * (h * h) as f64 * e as f64 * m as f64 * (n as f64 - 1.0)
}

/// Forward-phase expert-centric traffic per machine for one MoE block, in
/// elements: `Comm_EC = 2·m·H·T·(n−1)/n` — two All-to-Alls (dispatch and
/// combine) under the balanced-distribution lower bound.
pub fn comm_ec_elements(h: usize, t_tokens: usize, m: usize, n: usize) -> f64 {
    2.0 * m as f64 * h as f64 * t_tokens as f64 * (n as f64 - 1.0) / n as f64
}

/// The paper's gain metric `R = B·S·k / (4·n·H·E)` (equation 1).
/// `R > 1` ⇒ the data-centric paradigm moves fewer bytes.
pub fn r_metric(b: usize, s: usize, k: usize, n: usize, h: usize, e: usize) -> f64 {
    (b * s * k) as f64 / (4.0 * n as f64 * h as f64 * e as f64)
}

/// `R` for a specific block of a model on a given cluster shape.
pub fn r_for_block(model: &ModelConfig, block: usize, n_machines: usize, m_gpus: usize) -> f64 {
    let e = model.experts_per_worker(block, n_machines * m_gpus);
    r_metric(
        model.batch,
        model.seq_len,
        model.top_k,
        n_machines,
        model.hidden_dim,
        e,
    )
}

/// `R` for every block of a model: `Some(R)` for MoE blocks, `None` for
/// dense blocks (which have no expert communication). This is the
/// per-block surface plan compilation consumes.
pub fn r_per_block(model: &ModelConfig, n_machines: usize, m_gpus: usize) -> Vec<Option<f64>> {
    (0..model.blocks.len())
        .map(|b| {
            model.blocks[b]
                .is_moe()
                .then(|| r_for_block(model, b, n_machines, m_gpus))
        })
        .collect()
}

/// Per-machine cross-node traffic for a whole iteration (forward +
/// backward) under the data-centric paradigm, in bytes.
///
/// Backward traffic equals forward traffic (§5.1.3): gradients are the
/// same size as experts and are pre-reduced so each machine sends each
/// expert's gradient once.
pub fn iteration_traffic_dc(model: &ModelConfig, n: usize, m: usize) -> f64 {
    let mut elems = 0.0;
    for block in model.moe_blocks() {
        let e = model.experts_per_worker(block, n * m);
        elems += 2.0 * comm_dc_elements(model.hidden_dim, e, m, n);
    }
    elems * model.dtype_bytes as f64
}

/// Per-machine cross-node traffic for a whole iteration (forward +
/// backward) under the expert-centric paradigm, in bytes.
///
/// Backward All-to-Alls move the same volume as the forward ones
/// (§5.1.3: "this volume is equal to the volume of the tokens it sends in
/// the forward phase").
pub fn iteration_traffic_ec(model: &ModelConfig, n: usize, m: usize) -> f64 {
    let t = model.tokens_per_worker();
    let mut elems = 0.0;
    for _ in model.moe_blocks() {
        elems += 2.0 * comm_ec_elements(model.hidden_dim, t, m, n);
    }
    elems * model.dtype_bytes as f64
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Total experts per MoE block.
    pub experts: usize,
    /// GPUs (= experts, E = 1 in Table 1).
    pub gpus: usize,
    /// Total parameters, in billions.
    pub model_size_b: f64,
    /// Expert-centric cross-machine traffic per machine per iteration, GiB.
    pub ec_traffic_gib: f64,
    /// Data-centric cross-machine traffic per machine per iteration, GiB.
    pub dc_traffic_gib: f64,
    /// Reduction factor EC/DC.
    pub reduction: f64,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Compute a Table 1 row for `model` trained on `n` machines × `m` GPUs.
pub fn table1_row(model: &ModelConfig, n: usize, m: usize) -> Table1Row {
    let ec = iteration_traffic_ec(model, n, m);
    let dc = iteration_traffic_dc(model, n, m);
    let experts = model.blocks[model.moe_blocks()[0]].experts();
    Table1Row {
        model: model.name.clone(),
        experts,
        gpus: n * m,
        model_size_b: model.total_params() as f64 / 1e9,
        ec_traffic_gib: ec / GIB,
        dc_traffic_gib: dc / GIB,
        reduction: ec / dc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    #[test]
    fn r_matches_paper_section_7_3() {
        // Paper: R = 5.33, 5.33, 16 for BERT/GPT/xl on 32 GPUs (4 machines).
        assert!((r_metric(256, 128, 2, 4, 768, 1) - 5.333).abs() < 0.01);
        assert!((r_metric(256, 64, 4, 4, 768, 1) - 5.333).abs() < 0.01);
        assert!((r_metric(64, 512, 2, 4, 256, 1) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn r_matches_paper_gpt3_example() {
        // §9: GPT-3-style MoE — hidden 12288, S = 2048, k = 1, E = 1,
        // data-parallel degree 128 (16 machines of 8 GPUs), global batch
        // over 1M: B = 1e6/128 = 7812.5 sequences per worker. The paper
        // reports R = 20.35; reproduce it from the same closed form with
        // the fractional per-worker batch.
        let (b, s, k) = (1e6_f64 / 128.0, 2048.0, 1.0);
        let (n, h, e) = (16.0, 12288.0, 1.0);
        let r = b * s * k / (4.0 * n * h * e);
        assert!((r - 20.345).abs() < 0.01, "r = {r}");
    }

    #[test]
    fn table1_traffic_matches_paper_32_gpus() {
        // Paper Table 1 (32 experts / 32 GPUs): EC 9 / 2.25 / 9 GB,
        // DC 1.69 / 0.42 / 0.56 GB for BERT / GPT / xl.
        let bert = table1_row(&ModelPreset::MoeBert.config(32), 4, 8);
        assert!((bert.ec_traffic_gib - 9.0).abs() < 0.1, "{bert:?}");
        assert!((bert.dc_traffic_gib - 1.69).abs() < 0.02, "{bert:?}");

        let gpt = table1_row(&ModelPreset::MoeGpt.config(32), 4, 8);
        assert!((gpt.ec_traffic_gib - 2.25).abs() < 0.03, "{gpt:?}");
        assert!((gpt.dc_traffic_gib - 0.42).abs() < 0.01, "{gpt:?}");

        let xl = table1_row(&ModelPreset::MoeTransformerXl.config(32), 4, 8);
        assert!((xl.ec_traffic_gib - 9.0).abs() < 0.1, "{xl:?}");
        assert!((xl.dc_traffic_gib - 0.56).abs() < 0.01, "{xl:?}");
    }

    #[test]
    fn table1_traffic_matches_paper_16_gpus() {
        // Paper Table 1 (16 experts / 16 GPUs): EC 6 / 1.5 / 6 GB,
        // DC 0.56 / 0.14 / 0.19 GB.
        let bert = table1_row(&ModelPreset::MoeBert.config(16), 2, 8);
        assert!((bert.ec_traffic_gib - 6.0).abs() < 0.1, "{bert:?}");
        assert!((bert.dc_traffic_gib - 0.56).abs() < 0.01, "{bert:?}");

        let gpt = table1_row(&ModelPreset::MoeGpt.config(16), 2, 8);
        assert!((gpt.ec_traffic_gib - 1.5).abs() < 0.02, "{gpt:?}");
        assert!((gpt.dc_traffic_gib - 0.14).abs() < 0.01, "{gpt:?}");

        let xl = table1_row(&ModelPreset::MoeTransformerXl.config(16), 2, 8);
        assert!((xl.ec_traffic_gib - 6.0).abs() < 0.1, "{xl:?}");
        assert!((xl.dc_traffic_gib - 0.19).abs() < 0.01, "{xl:?}");
    }

    #[test]
    fn reduction_peaks_at_16x_for_xl() {
        // Abstract: "Janus can reduce the traffic up to 16×".
        let xl = table1_row(&ModelPreset::MoeTransformerXl.config(32), 4, 8);
        assert!((xl.reduction - 16.0).abs() < 0.2, "{}", xl.reduction);
    }

    #[test]
    fn r_per_block_marks_dense_blocks_none() {
        let model = ModelPreset::MoeBert.config(32);
        let rs = r_per_block(&model, 4, 8);
        assert_eq!(rs.len(), model.blocks.len());
        for (b, r) in rs.iter().enumerate() {
            assert_eq!(r.is_some(), model.blocks[b].is_moe());
            if let Some(r) = r {
                assert_eq!(*r, r_for_block(&model, b, 4, 8));
            }
        }
    }

    #[test]
    fn r_greater_than_one_iff_dc_wins() {
        for preset in ModelPreset::all() {
            let model = preset.config(32);
            let block = model.moe_blocks()[0];
            let r = r_for_block(&model, block, 4, 8);
            let ec = iteration_traffic_ec(&model, 4, 8);
            let dc = iteration_traffic_dc(&model, 4, 8);
            assert_eq!(
                r > 1.0,
                dc < ec,
                "{preset:?}: R = {r}, dc = {dc}, ec = {ec}"
            );
        }
    }

    #[test]
    fn dc_traffic_independent_of_batch_size() {
        let mut a = ModelPreset::MoeBert.config(32);
        let dc1 = iteration_traffic_dc(&a, 4, 8);
        a.batch *= 4;
        let dc2 = iteration_traffic_dc(&a, 4, 8);
        assert_eq!(dc1, dc2);
        // While EC scales linearly with batch.
        let mut b = ModelPreset::MoeBert.config(32);
        let ec1 = iteration_traffic_ec(&b, 4, 8);
        b.batch *= 4;
        let ec2 = iteration_traffic_ec(&b, 4, 8);
        assert!((ec2 / ec1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_machine_has_no_cross_node_traffic() {
        let model = ModelPreset::MoeBert.config(16);
        assert_eq!(iteration_traffic_dc(&model, 1, 16), 0.0);
        assert_eq!(iteration_traffic_ec(&model, 1, 16), 0.0);
    }
}
