//! Topology-aware priority strategies (paper §5.2).
//!
//! Two independent strategies:
//!
//! 1. **Staggered intra-node pulls** (Algorithm 1): worker `r` pulls
//!    internal experts starting from local rank `r+1`, wrapping around, so
//!    at any instant each GPU's NVLink egress serves exactly one peer
//!    (paper Figure 7b). [`internal_priority`] is the priority function
//!    `P_i^r`; [`internal_pull_order`] is the resulting order.
//! 2. **PCIe-switch-aware cache drain** (Figures 8-9): the two GPUs
//!    behind one PCIe switch split the cached external experts in halves;
//!    each half crosses PCIe once and reaches the sibling over NVLink.
//!    [`pcie_split`] computes the halves.

use janus_topology::LocalRank;

/// Priority of pulling an internal expert whose owner has local rank
/// `owner` into the worker with local rank `r`, on a machine with `m`
/// GPUs. Smaller is higher priority. This is the paper's `P_i^r` with
/// `rank(i) = owner`:
///
/// ```text
/// P = owner - r         if owner > r
/// P = owner + m - r     if owner < r
/// ```
///
/// Pulling from oneself is meaningless; callers never ask for it.
pub fn internal_priority(owner: LocalRank, r: LocalRank, m: usize) -> usize {
    debug_assert!(owner != r, "a worker does not pull its own experts");
    debug_assert!(owner.0 < m && r.0 < m);
    if owner.0 > r.0 {
        owner.0 - r.0
    } else {
        owner.0 + m - r.0
    }
}

/// The staggered pull order for worker `r`: owners `r+1, r+2, …` mod `m`,
/// skipping `r` itself (paper Algorithm 1).
pub fn internal_pull_order(r: LocalRank, m: usize) -> Vec<LocalRank> {
    (1..m).map(|d| LocalRank((r.0 + d) % m)).collect()
}

/// The naive order every worker uses without the topology-aware strategy
/// (paper Figure 7a): ascending owner rank, skipping oneself.
pub fn naive_pull_order(r: LocalRank, m: usize) -> Vec<LocalRank> {
    (0..m).filter(|&o| o != r.0).map(LocalRank).collect()
}

/// Split the externally cached experts of one PCIe-switch pair.
///
/// `pair_index` is 0 for the lower-ranked GPU of the pair, 1 for the
/// higher-ranked one. Returns `(via_pcie, via_peer)`: the experts this
/// GPU copies from CPU memory itself, and the ones it receives from its
/// sibling over NVLink. The interleaved split keeps the two PCIe streams
/// and the two NVLink hand-offs overlapped in time (paper Figure 9).
///
/// A GPU without a sibling (odd GPU count) copies everything via PCIe:
/// pass `pair_index = 0` and treat the second half as empty by giving it
/// `has_peer = false`.
pub fn pcie_split<T: Copy>(experts: &[T], pair_index: usize, has_peer: bool) -> (Vec<T>, Vec<T>) {
    assert!(pair_index < 2, "a PCIe switch hosts two GPUs");
    if !has_peer {
        return (experts.to_vec(), Vec::new());
    }
    let mut mine = Vec::with_capacity(experts.len() / 2 + 1);
    let mut peers = Vec::with_capacity(experts.len() / 2 + 1);
    for (i, &e) in experts.iter().enumerate() {
        if i % 2 == pair_index {
            mine.push(e);
        } else {
            peers.push(e);
        }
    }
    (mine, peers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_matches_paper_formula() {
        let m = 4;
        // Worker 1 on a 4-GPU machine: owner 2 → P=1, owner 3 → P=2,
        // owner 0 → P=3.
        assert_eq!(internal_priority(LocalRank(2), LocalRank(1), m), 1);
        assert_eq!(internal_priority(LocalRank(3), LocalRank(1), m), 2);
        assert_eq!(internal_priority(LocalRank(0), LocalRank(1), m), 3);
    }

    #[test]
    fn pull_order_sorts_by_priority() {
        let m = 8;
        for r in 0..m {
            let order = internal_pull_order(LocalRank(r), m);
            assert_eq!(order.len(), m - 1);
            let mut prios: Vec<usize> = order
                .iter()
                .map(|&o| internal_priority(o, LocalRank(r), m))
                .collect();
            let sorted = {
                let mut p = prios.clone();
                p.sort_unstable();
                p
            };
            assert_eq!(prios, sorted, "order for r={r} not priority-sorted");
            prios.dedup();
            assert_eq!(prios.len(), m - 1, "priorities must be distinct");
        }
    }

    #[test]
    fn staggering_gives_each_owner_one_puller_per_step() {
        // At step s, worker r pulls from (r + 1 + s) mod m. For any fixed
        // s, the map r → owner is a bijection: no owner serves two pullers
        // simultaneously (paper Figure 7b).
        let m = 8;
        for s in 0..m - 1 {
            let mut owners_at_step: Vec<usize> = (0..m)
                .map(|r| internal_pull_order(LocalRank(r), m)[s].0)
                .collect();
            owners_at_step.sort_unstable();
            owners_at_step.dedup();
            assert_eq!(owners_at_step.len(), m, "step {s} has owner collision");
        }
    }

    #[test]
    fn naive_order_collides_on_owner_zero() {
        // Everyone except worker 0 starts by pulling from worker 0 —
        // the Figure 7a congestion.
        let m = 4;
        let first_owner: Vec<usize> = (1..m)
            .map(|r| naive_pull_order(LocalRank(r), m)[0].0)
            .collect();
        assert_eq!(first_owner, vec![0, 0, 0]);
    }

    #[test]
    fn pcie_split_partitions_and_interleaves() {
        let experts = [10, 11, 12, 13, 14];
        let (a_mine, a_peer) = pcie_split(&experts, 0, true);
        let (b_mine, b_peer) = pcie_split(&experts, 1, true);
        assert_eq!(a_mine, vec![10, 12, 14]);
        assert_eq!(a_peer, vec![11, 13]);
        assert_eq!(b_mine, a_peer);
        assert_eq!(b_peer, a_mine);
        // Jointly exhaustive and disjoint.
        let mut all = a_mine.clone();
        all.extend(&a_peer);
        all.sort_unstable();
        assert_eq!(all, experts.to_vec());
    }

    #[test]
    fn pcie_split_without_peer_takes_everything() {
        let experts = [1, 2, 3];
        let (mine, peer) = pcie_split(&experts, 0, false);
        assert_eq!(mine, vec![1, 2, 3]);
        assert!(peer.is_empty());
    }

    #[test]
    fn empty_expert_list_is_fine() {
        let (mine, peer) = pcie_split::<usize>(&[], 1, true);
        assert!(mine.is_empty() && peer.is_empty());
    }
}
