//! Map simulated task labels onto sim-vs-real drift alignment keys.
//!
//! The graph emitters ([`crate::sim::data_centric`],
//! [`crate::sim::expert_centric`]) label every task with its scope baked
//! in (`w{w}/…` worker, `M{m}/…` machine, `a2a/…` collective leg), so a
//! [`SimResult`] can be folded onto the same `(scope, block, category)`
//! keys `janus_obs::drift::real_segments` extracts from a recorded
//! engine trace. Categories the real engine cannot expose (`copy` for
//! staging hand-offs, dense-block compute) still map — they surface in
//! the drift report's `unmatched_sim` list instead of silently
//! disappearing.

use janus_netsim::SimResult;
use janus_obs::drift::SegKey;

/// Reduce a simulated iteration to drift segments `(key, µs)`, sorted by
/// key. Only `compute` and `transfer` tasks contribute; joins, credit
/// acquires, and zero-duration tasks are skipped.
pub fn sim_segments(res: &SimResult) -> Vec<(SegKey, f64)> {
    res.drift_segments_with(|r| {
        if r.kind != "compute" && r.kind != "transfer" {
            return None;
        }
        map_label(&r.label)
    })
}

/// The alignment key of one simulated task label, `None` for tasks the
/// drift report does not score (joins, gates, unknown shapes).
pub fn map_label(label: &str) -> Option<SegKey> {
    let parts: Vec<&str> = label.split('/').collect();
    let head = *parts.first()?;
    let block = parts
        .iter()
        .find_map(|p| p.strip_prefix('b').and_then(|s| s.parse::<i64>().ok()))?;
    if head == "a2a" {
        // a2a/b{b}/{tag}/{leg}: blame the leg's source worker (flat and
        // aggregation stages), destination worker (distribution stage),
        // or source machine (the inter-machine NIC flow).
        let leg = *parts.last()?;
        let scope = if let Some(rest) = leg.strip_prefix("agg-w") {
            format!("r{}", rest.split('-').next()?)
        } else if let Some(rest) = leg.strip_prefix("dist-") {
            format!("r{}", rest.split('-').nth(1)?.strip_prefix('w')?)
        } else if leg.starts_with('w') {
            format!("r{}", leg.split('-').next()?.strip_prefix('w')?)
        } else if leg.starts_with('M') {
            leg.split('-').next()?.to_string()
        } else {
            return None;
        };
        return Some(SegKey::new(scope, block, "a2a"));
    }
    let leaf = *parts.last()?;
    if let Some(w) = head.strip_prefix('w') {
        w.parse::<usize>().ok()?;
        let category = match leaf {
            "fwd" | "bwd" | "fwd-shared" | "bwd-shared" => "compute",
            "pull-int" => "pull",
            // Staging hand-offs the real engine services from its CPU
            // cache without a dedicated span.
            "pull-peer" | "copy-s2" | "copy-bwd" | "offload" => "copy",
            "grad-int" | "grad-acc" => "grad",
            _ => return None,
        };
        return Some(SegKey::new(format!("r{w}"), block, category));
    }
    if head.starts_with('M') {
        let category = match leaf {
            "fetch-ext" => "prefetch",
            "grad-ext" => "grad",
            _ => return None,
        };
        return Some(SegKey::new(head, block, category));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::model::ExecConfig;
    use crate::plan::PlanOpts;
    use crate::sim::engine::{build_graph_from_plan, EngineOpts};
    use crate::sim::setup::SimSetup;
    use janus_moe::workload::Imbalance;
    use janus_netsim::simulate;

    #[test]
    fn label_mapping_covers_every_emitter_family() {
        let cases = [
            ("w0/b0/ep3/fwd", Some(("r0", 0, "compute"))),
            ("w2/b1/ep5/bwd", Some(("r2", 1, "compute"))),
            ("w1/b0/fwd-shared", Some(("r1", 0, "compute"))),
            ("w1/b0/ep2/pull-int", Some(("r1", 0, "pull"))),
            ("w1/b0/ep2/pull-peer", Some(("r1", 0, "copy"))),
            ("w1/b0/ep2/copy-s2", Some(("r1", 0, "copy"))),
            ("w1/b0/ep2/offload", Some(("r1", 0, "copy"))),
            ("w1/b0/ep2/grad-int", Some(("r1", 0, "grad"))),
            ("w1/b0/ep2/grad-acc", Some(("r1", 0, "grad"))),
            ("M0/b0/ep2/fetch-ext", Some(("M0", 0, "prefetch"))),
            ("M1/b0/ep2/grad-ext", Some(("M1", 0, "grad"))),
            ("a2a/b1/fd/w2-w3", Some(("r2", 1, "a2a"))),
            ("a2a/b1/fd/agg-w1-M0", Some(("r1", 1, "a2a"))),
            ("a2a/b1/fd/M0-M1", Some(("M0", 1, "a2a"))),
            ("a2a/b1/fd/dist-M1-w3", Some(("r3", 1, "a2a"))),
            ("a2a/b1/fd/join", None),
            ("w0/b0/fwd-done", None),
            ("M0/b0/gates", None),
            ("start", None),
        ];
        for (label, want) in cases {
            let got = map_label(label);
            let want = want.map(|(s, b, c)| SegKey::new(s, b, c));
            assert_eq!(got, want, "label {label:?}");
        }
    }

    #[test]
    fn mixed_paradigm_sim_yields_segments_on_every_rank() {
        let cfg = ExecConfig::mixed_paradigms();
        let plan = cfg.compile_plan(&PlanOpts::default());
        let setup = SimSetup::new(cfg.cluster(), cfg.model_config(), Imbalance::Balanced, 7);
        let (graph, _) = build_graph_from_plan(&setup, &EngineOpts::default(), &plan);
        let sim = simulate(&graph, &setup.cluster.capacities()).expect("simulate");
        let segs = sim_segments(&sim);
        assert!(!segs.is_empty());
        let has = |scope: &str, block: i64, cat: &str| {
            segs.iter().any(|(k, us)| {
                k.scope == scope && k.block == block && k.category == cat && *us > 0.0
            })
        };
        for r in 0..cfg.world() {
            let scope = format!("r{r}");
            // Data-centric block 0: compute, internal pulls, gradient
            // routing on every rank.
            assert!(has(&scope, 0, "compute"), "{scope} b0 compute");
            assert!(has(&scope, 0, "pull"), "{scope} b0 pull");
            assert!(has(&scope, 0, "grad"), "{scope} b0 grad");
            // Expert-centric block 1: compute and a2a on every rank.
            assert!(has(&scope, 1, "compute"), "{scope} b1 compute");
            assert!(has(&scope, 1, "a2a"), "{scope} b1 a2a");
        }
        for m in 0..cfg.machines {
            let scope = format!("M{m}");
            assert!(has(&scope, 0, "prefetch"), "{scope} b0 prefetch");
            assert!(has(&scope, 0, "grad"), "{scope} b0 grad-ext");
        }
    }
}
