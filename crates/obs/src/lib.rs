//! `janus-obs`: the observability layer shared by the numerical engines,
//! the transports, and the discrete-event simulator.
//!
//! The crate deliberately sits at the bottom of the dependency graph (it
//! depends only on the vendored `parking_lot` and `serde` shims) so every
//! other crate on the data path can record into it:
//!
//! - [`Recorder`] — a process-global (or locally owned) sink for timed
//!   spans and monotonic counters / histograms. Disabled recording costs
//!   one relaxed atomic load per call site.
//! - [`Clock`] — injectable time source. Production uses [`RealClock`];
//!   determinism tests use [`FakeClock`] so traces are bitwise stable.
//! - [`trace`] — the Chrome trace-event JSON exporter (Perfetto /
//!   `chrome://tracing` loadable) plus a pure-rust schema validator.
//! - [`metrics`] — counter / histogram registry with Prometheus
//!   text-format export.
//! - [`report`] — derived analysis: compute/comm overlap fraction,
//!   per-link utilization, pull-latency percentiles.
//! - [`analysis`] — critical-path blame and straggler / expert-skew
//!   detection over a recorded trace.
//! - [`drift`] — sim-vs-real drift calibration: align simulator
//!   segments against real spans and score the cost model.

pub mod analysis;
pub mod clock;
pub mod drift;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use analysis::{critical_path, detect_skew, CriticalPathReport, SkewConfig, SkewReport};
pub use clock::{Clock, FakeClock, RealClock};
pub use drift::{drift_report, DriftReport, SegKey};
pub use metrics::{Histogram, Metrics};
pub use recorder::{global, Recorder, SpanGuard, SpanMeta};
pub use report::{LinkUtil, OverlapReport, RankOverlap};
pub use trace::{chrome_trace, validate_chrome_trace, TraceEvent};
