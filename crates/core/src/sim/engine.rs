//! Whole-iteration assembly and the unified engine entry point.
//!
//! [`simulate_iteration`] compiles one training iteration — mixing
//! expert-centric and data-centric MoE blocks according to the
//! [`ParadigmPolicy`] — runs it on the discrete-event simulator, and
//! distills an [`IterationReport`]. Every figure of the paper's
//! evaluation is produced by calling this function with different options
//! (see `janus-bench`).

use crate::paradigm::Paradigm;
pub use crate::paradigm::ParadigmPolicy;
use crate::plan::{IterationPlan, PlanOpts};
use crate::sim::common::{a2a_window_time, Ctx};
pub use crate::sim::data_centric::DcOpts;
use crate::sim::report::IterationReport;
use crate::sim::setup::SimSetup;
use crate::sim::{data_centric, expert_centric, memory};
use janus_moe::config::ModelConfig;
use janus_moe::flops::{self, BACKWARD_FACTOR};
use janus_moe::workload::Imbalance;
use janus_netsim::{simulate, Graph, SimError, SimResult, TaskId};
use janus_topology::Cluster;

/// Options of one simulated iteration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Paradigm policy.
    pub policy: ParadigmPolicy,
    /// Data-centric scheduling knobs (§5.1-5.3 ablations).
    pub dc: DcOpts,
    /// Expert-centric blocks use Tutel-style hierarchical All-to-All.
    pub hierarchical_a2a: bool,
    /// Token→expert skew of the sampled workload.
    pub imbalance: Imbalance,
    /// Workload seed.
    pub seed: u64,
    /// Simulate the backward phase.
    pub include_backward: bool,
    /// Fixed per-message issue latency (control-plane round trip, kernel
    /// launch, RDMA rendezvous) applied to every simulated transfer.
    /// Serialized expert pulls pay it per expert — the reason the paper
    /// prefers expert-centric communication at small `R` (§7.5).
    pub msg_latency: f64,
    /// `R` threshold of the unified policy. The paper's rule is `R > 1`,
    /// conservatively rounded up where the measured PCIe ceiling makes
    /// data-centric staging unattractive (§7.5).
    pub r_threshold: f64,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            policy: ParadigmPolicy::Unified,
            dc: DcOpts::default(),
            hierarchical_a2a: false,
            imbalance: Imbalance::Zipf(0.3),
            seed: 42,
            include_backward: true,
            msg_latency: 300e-6,
            r_threshold: 1.0,
        }
    }
}

impl EngineOpts {
    /// The paper's Tutel baseline. Tutel's hierarchical/pipelined
    /// All-to-All recovers most of the flat collective's performance on
    /// real hardware; the fluid model cannot express that pipelining (its
    /// staged variant serializes the stages), so the baseline uses the
    /// flat collective, which is the *stronger* expert-centric baseline
    /// in-sim. The staged variant remains available via
    /// `hierarchical_a2a` for topology studies.
    pub fn tutel() -> Self {
        EngineOpts {
            policy: ParadigmPolicy::ExpertCentric,
            ..EngineOpts::default()
        }
    }

    /// Janus's own expert-centric mode (the Figure 12 ablation baseline).
    pub fn janus_expert_centric() -> Self {
        EngineOpts {
            policy: ParadigmPolicy::ExpertCentric,
            ..EngineOpts::default()
        }
    }

    /// Pure data-centric with the given ablation switches.
    pub fn data_centric(topo_aware: bool, prefetch: bool) -> Self {
        EngineOpts {
            policy: ParadigmPolicy::DataCentric,
            dc: DcOpts {
                topo_aware,
                prefetch,
                ..DcOpts::default()
            },
            ..EngineOpts::default()
        }
    }

    /// The schedule-shaping subset of these options, as plan-compilation
    /// input. Remaining `EngineOpts` fields (latency, workload, backward
    /// toggle) are execution knobs that do not alter the schedule.
    pub fn plan_opts(&self) -> PlanOpts {
        PlanOpts {
            policy: self.policy,
            r_threshold: self.r_threshold,
            topo_aware: self.dc.topo_aware,
            prefetch: self.dc.prefetch,
            credits: self.dc.credits,
        }
    }

    /// Short description used in reports.
    pub fn describe(&self) -> String {
        let base = match self.policy {
            ParadigmPolicy::ExpertCentric if self.hierarchical_a2a => "tutel(ec+hier-a2a)",
            ParadigmPolicy::ExpertCentric => "expert-centric",
            ParadigmPolicy::DataCentric => "data-centric",
            ParadigmPolicy::Unified => "janus-unified",
        };
        if self.policy == ParadigmPolicy::ExpertCentric {
            base.to_string()
        } else {
            format!(
                "{base}(topo={}, prefetch={}, credits={})",
                self.dc.topo_aware, self.dc.prefetch, self.dc.credits
            )
        }
    }
}

/// Compile the iteration plan these options describe for a setup.
pub fn compile_plan(setup: &SimSetup, opts: &EngineOpts) -> IterationPlan {
    IterationPlan::compile(&setup.model, &setup.cluster, &opts.plan_opts())
}

/// Per-block paradigm choice under a policy (a view over the compiled
/// plan — the decision itself lives in `paradigm::paradigm_for_block`).
pub fn block_paradigms(setup: &SimSetup, opts: &EngineOpts) -> Vec<Paradigm> {
    compile_plan(setup, opts).paradigms()
}

/// Compile one iteration into a task graph.
pub fn build_graph(setup: &SimSetup, opts: &EngineOpts) -> (Graph, Vec<Paradigm>) {
    let plan = compile_plan(setup, opts);
    build_graph_from_plan(setup, opts, &plan)
}

/// Emit the task DAG of one iteration from a pre-compiled plan. The plan
/// is the source of truth for paradigms, fetch orders, prefetch, and
/// credits; `opts` only contributes execution knobs (message latency,
/// hierarchical A2A, backward toggle).
pub fn build_graph_from_plan(
    setup: &SimSetup,
    opts: &EngineOpts,
    plan: &IterationPlan,
) -> (Graph, Vec<Paradigm>) {
    assert_eq!(
        plan.blocks.len(),
        setup.model.blocks.len(),
        "plan compiled for a different model"
    );
    let paradigms = plan.paradigms();
    let dc = DcOpts {
        topo_aware: plan.topo_aware,
        prefetch: plan.prefetch_window > 0,
        credits: plan.credits,
    };
    let mut ctx = Ctx::new(setup);
    ctx.msg_latency = opts.msg_latency;
    let w_count = setup.cluster.num_workers();
    let blocks = setup.model.blocks.len();
    let pools = ctx.credit_pools(dc.credits.max(1));

    // ---- Forward ----
    let mut prev: Vec<TaskId> = vec![ctx.start; w_count];
    for (b, &paradigm) in paradigms.iter().enumerate() {
        let shared: Vec<TaskId> = (0..w_count)
            .map(|w| {
                ctx.compute(
                    w,
                    flops::block_shared_fwd_flops(&setup.model, b),
                    format!("w{w}/b{b}/fwd-shared"),
                    b as i64,
                    &[prev[w]],
                )
            })
            .collect();
        if !setup.model.blocks[b].is_moe() {
            prev = shared;
            continue;
        }
        prev = match paradigm {
            Paradigm::ExpertCentric => {
                expert_centric::emit_fwd_block(&mut ctx, b, &shared, opts.hierarchical_a2a)
            }
            Paradigm::DataCentric => data_centric::emit_fwd_block(
                &mut ctx,
                &pools,
                b,
                &shared,
                plan.blocks[b]
                    .fetch
                    .as_ref()
                    .expect("plan built for DC block"),
                dc,
            ),
        };
    }
    let fwd_done = ctx.join("fwd-done".to_string(), &prev);
    prev = vec![fwd_done; w_count];

    // ---- Backward ----
    let mut late_grad_flows: Vec<TaskId> = Vec::new();
    if opts.include_backward {
        for b in (0..blocks).rev() {
            let gates: Vec<TaskId> = if !setup.model.blocks[b].is_moe() {
                prev.clone()
            } else {
                match paradigms[b] {
                    Paradigm::ExpertCentric => {
                        expert_centric::emit_bwd_block(&mut ctx, b, &prev, opts.hierarchical_a2a)
                    }
                    Paradigm::DataCentric => {
                        let (gates, grads) = data_centric::emit_bwd_block(
                            &mut ctx,
                            &pools,
                            b,
                            &prev,
                            plan.blocks[b]
                                .fetch
                                .as_ref()
                                .expect("plan built for DC block"),
                            dc,
                        );
                        late_grad_flows.extend(grads);
                        gates
                    }
                }
            };
            prev = (0..w_count)
                .map(|w| {
                    ctx.compute(
                        w,
                        BACKWARD_FACTOR * flops::block_shared_fwd_flops(&setup.model, b),
                        format!("w{w}/b{b}/bwd-shared"),
                        (100_000 + (blocks - b) * 10_000) as i64,
                        &[gates[w]],
                    )
                })
                .collect();
        }
    }

    // The iteration ends when every worker's backward is done and every
    // gradient has landed at its owner (the weight-update barrier).
    let mut final_deps = prev;
    final_deps.extend(late_grad_flows);
    ctx.join("iter-done".to_string(), &final_deps);
    (ctx.build(), paradigms)
}

/// Time worker 0's expert computation spent stalled on expert arrival in
/// data-centric forward blocks: per block, the gap between the gate and
/// block completion minus the pure compute time.
fn dc_fetch_stall(setup: &SimSetup, paradigms: &[Paradigm], sim: &SimResult) -> f64 {
    let mut stall = 0.0;
    for (b, kind) in setup.model.blocks.iter().enumerate() {
        if !kind.is_moe() || paradigms[b] != Paradigm::DataCentric {
            continue;
        }
        let gate = sim.finish_of(&format!("w0/b{b}/fwd-shared"));
        let done = sim.finish_of(&format!("w0/b{b}/fwd-done"));
        let prefix = format!("w0/b{b}/ep");
        let compute: f64 = sim
            .records
            .iter()
            .filter(|r| {
                r.kind == "compute" && r.label.starts_with(&prefix) && r.label.ends_with("/fwd")
            })
            .map(|r| r.duration())
            .sum();
        stall += (done - gate - compute).max(0.0);
    }
    stall
}

/// Simulate one iteration end to end.
pub fn simulate_iteration(
    cluster: Cluster,
    model: ModelConfig,
    opts: &EngineOpts,
) -> Result<IterationReport, SimError> {
    let setup = SimSetup::new(cluster, model, opts.imbalance, opts.seed);
    simulate_iteration_on(&setup, opts)
}

/// Simulate one iteration on a pre-built setup (reusing the workload).
pub fn simulate_iteration_on(
    setup: &SimSetup,
    opts: &EngineOpts,
) -> Result<IterationReport, SimError> {
    let (graph, paradigms) = build_graph(setup, opts);
    let sim = simulate(&graph, &setup.cluster.capacities())?;

    let memory = memory::estimate_mixed(
        &setup.model,
        &setup.assignments,
        setup.cluster.num_workers(),
        setup.cluster.spec().gpu_memory_bytes,
        &paradigms,
        opts.dc.credits,
    );

    let blocks = setup.model.blocks.len();
    let block_finish_w0: Vec<f64> = (0..blocks)
        .map(|b| {
            if setup.model.blocks[b].is_moe() {
                sim.finish_of(&format!("w0/b{b}/fwd-done"))
            } else {
                sim.finish_of(&format!("w0/b{b}/fwd-shared"))
            }
        })
        .collect();
    let expert_arrival_w0: Vec<(String, f64)> = sim
        .records
        .iter()
        .filter(|r| {
            r.label.starts_with("w0/")
                && (r.label.contains("/pull-int")
                    || r.label.contains("/copy-s2")
                    || r.label.contains("/pull-peer"))
        })
        .map(|r| (r.label.clone(), r.finish))
        .collect();

    let comm_time = a2a_window_time(&sim) + dc_fetch_stall(setup, &paradigms, &sim);
    Ok(IterationReport {
        engine: opts.describe(),
        iter_time: sim.makespan,
        fwd_time: sim.finish_of("fwd-done"),
        comm_time,
        cross_node_bytes_per_machine: IterationReport::cross_node_per_machine(&setup.cluster, &sim),
        memory,
        block_finish_w0,
        expert_arrival_w0,
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_moe::config::{pr_moe_transformer_xl, ModelPreset};
    use janus_moe::traffic::{iteration_traffic_dc, iteration_traffic_ec};
    use janus_topology::ClusterSpec;

    fn small_model() -> ModelConfig {
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 8; // keep debug-mode simulation fast
        model
    }

    fn small_cluster() -> Cluster {
        ClusterSpec::a100(2, 4).build()
    }

    fn run(opts: &EngineOpts) -> IterationReport {
        simulate_iteration(small_cluster(), small_model(), opts).expect("simulation failed")
    }

    #[test]
    fn all_engine_variants_complete() {
        for opts in [
            EngineOpts::tutel(),
            EngineOpts::janus_expert_centric(),
            EngineOpts::data_centric(false, false),
            EngineOpts::data_centric(false, true),
            EngineOpts::data_centric(true, false),
            EngineOpts::data_centric(true, true),
            EngineOpts::default(),
        ] {
            let report = run(&opts);
            assert!(report.iter_time > 0.0, "{}", opts.describe());
            assert!(report.fwd_time > 0.0 && report.fwd_time <= report.iter_time);
        }
    }

    #[test]
    fn single_credit_also_completes() {
        let mut opts = EngineOpts::data_centric(true, true);
        opts.dc.credits = 1;
        let report = run(&opts);
        assert!(report.iter_time > 0.0);
    }

    #[test]
    fn dc_cross_node_traffic_matches_analytic_formula() {
        let mut opts = EngineOpts::data_centric(true, true);
        opts.imbalance = Imbalance::Balanced;
        let report = run(&opts);
        let analytic = iteration_traffic_dc(&small_model(), 2, 4);
        let rel = (report.cross_node_bytes_per_machine - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "sim {} vs analytic {analytic}",
            report.cross_node_bytes_per_machine
        );
    }

    #[test]
    fn ec_cross_node_traffic_matches_analytic_lower_bound() {
        let mut opts = EngineOpts::janus_expert_centric();
        opts.imbalance = Imbalance::Balanced;
        let report = run(&opts);
        let analytic = iteration_traffic_ec(&small_model(), 2, 4);
        let rel = (report.cross_node_bytes_per_machine - analytic).abs() / analytic;
        assert!(
            rel < 0.01,
            "sim {} vs analytic {analytic}",
            report.cross_node_bytes_per_machine
        );
    }

    #[test]
    fn tutel_hierarchical_matches_flat_on_volume() {
        let mut flat = EngineOpts::janus_expert_centric();
        flat.imbalance = Imbalance::Balanced;
        let mut hier = EngineOpts::janus_expert_centric();
        hier.hierarchical_a2a = true;
        hier.imbalance = Imbalance::Balanced;
        let f = run(&flat).cross_node_bytes_per_machine;
        let h = run(&hier).cross_node_bytes_per_machine;
        assert!((f - h).abs() / f < 0.01, "flat {f} vs hierarchical {h}");
    }

    #[test]
    fn dc_moves_less_traffic_and_is_faster_when_r_gt_1() {
        // MoE-GPT/8e on 2×4: R = BSk/(4nHE) with B=8, S=64, k=4 → R =
        // 8·64·4/(4·2·768·1) = 0.33 < 1 — so grow the batch to make
        // data-centric favourable.
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 128; // R = 5.33
        let dc = simulate_iteration(
            small_cluster(),
            model.clone(),
            &EngineOpts::data_centric(true, true),
        )
        .unwrap();
        let ec = simulate_iteration(small_cluster(), model, &EngineOpts::janus_expert_centric())
            .unwrap();
        assert!(dc.cross_node_bytes_per_machine < ec.cross_node_bytes_per_machine);
        assert!(
            dc.iter_time < ec.iter_time,
            "dc {} vs ec {}",
            dc.iter_time,
            ec.iter_time
        );
    }

    #[test]
    fn ablations_improve_monotonically() {
        // Figure 12's staircase: DC < DC+topo < DC+topo+prefetch in
        // iteration time (allowing tiny numerical slack).
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 128;
        let time = |topo: bool, pf: bool| {
            simulate_iteration(
                small_cluster(),
                model.clone(),
                &EngineOpts::data_centric(topo, pf),
            )
            .unwrap()
            .iter_time
        };
        let plain = time(false, false);
        let topo = time(true, false);
        let full = time(true, true);
        assert!(topo <= plain * 1.001, "topo {topo} vs plain {plain}");
        assert!(full <= topo * 1.001, "prefetch {full} vs topo {topo}");
        assert!(
            full <= plain * 1.001,
            "full stack must not lose to plain DC"
        );
    }

    #[test]
    fn prefetch_starts_fetches_at_iteration_start() {
        let with = run(&EngineOpts::data_centric(true, true));
        let without = run(&EngineOpts::data_centric(true, false));
        let first_fetch = |r: &IterationReport| {
            r.sim
                .records
                .iter()
                .filter(|t| t.label.contains("/fetch-ext"))
                .map(|t| t.start)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(first_fetch(&with) < 1e-9);
        let gate = without.sim.finish_of("w0/b11/fwd-shared");
        assert!(first_fetch(&without) >= gate - 1e-9);
        assert!(with.iter_time <= without.iter_time + 1e-9);
    }

    #[test]
    fn expert_compute_waits_for_gate_even_with_prefetch() {
        let report = run(&EngineOpts::data_centric(true, true));
        let gate = report.sim.finish_of("w0/b11/fwd-shared");
        for r in &report.sim.records {
            if r.label.starts_with("w0/b11/ep") && r.label.ends_with("/fwd") {
                assert!(
                    r.start >= gate - 1e-9,
                    "{} started before the gate",
                    r.label
                );
            }
        }
    }

    #[test]
    fn each_machine_fetches_each_external_expert_once() {
        let report = run(&EngineOpts::data_centric(true, true));
        let fetches = report
            .sim
            .records
            .iter()
            .filter(|r| r.label.contains("/fetch-ext"))
            .count();
        // 8 experts, 4 per machine → 4 external per machine, 1 MoE block.
        assert_eq!(fetches, 2 * 4);
    }

    #[test]
    fn gradients_are_pre_reduced_per_machine() {
        let report = run(&EngineOpts::data_centric(true, true));
        let ext = report
            .sim
            .records
            .iter()
            .filter(|r| r.label.contains("/grad-ext"))
            .count();
        assert_eq!(ext, 2 * 4);
        let acc = report
            .sim
            .records
            .iter()
            .filter(|r| r.label.contains("/grad-acc"))
            .count();
        assert_eq!(acc, 2 * 4 * 4);
    }

    #[test]
    fn ec_expert_compute_waits_for_dispatch_join() {
        let report = run(&EngineOpts::janus_expert_centric());
        let join_finish = report.sim.finish_of("a2a/b11/fd/join");
        for r in &report.sim.records {
            if r.label.starts_with("w0/b11/ep") && r.label.ends_with("/fwd") && r.kind == "compute"
            {
                assert!(r.start >= join_finish - 1e-9, "{} started early", r.label);
            }
        }
        assert!(report.comm_time > 0.0, "EC must report A2A time");
    }

    #[test]
    fn unified_pr_moe_mixes_paradigms() {
        let model = pr_moe_transformer_xl(16);
        let cluster = ClusterSpec::a100(2, 8).build();
        let setup = SimSetup::new(cluster, model, Imbalance::Balanced, 0);
        // The paper's conservative threshold keeps the deep blocks
        // (R = 2) expert-centric (§7.5).
        let opts = EngineOpts {
            r_threshold: 2.0,
            ..EngineOpts::default()
        };
        let paradigms = block_paradigms(&setup, &opts);
        let moe = setup.model.moe_blocks();
        assert_eq!(paradigms[moe[0]], Paradigm::DataCentric);
        assert_eq!(paradigms[moe[3]], Paradigm::ExpertCentric);
        let report = simulate_iteration_on(&setup, &opts).unwrap();
        assert!(report.iter_time > 0.0);
        // Unified runs both kinds of machinery in one graph.
        assert!(report
            .sim
            .records
            .iter()
            .any(|r| r.label.contains("/fetch-ext")));
        assert!(report
            .sim
            .records
            .iter()
            .any(|r| r.label.starts_with("a2a/")));
    }

    #[test]
    fn staggered_order_beats_naive_on_first_internal_arrival() {
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 64;
        let cluster = ClusterSpec::a100(1, 8).build();
        let first_arrival = |topo: bool| {
            let mut opts = EngineOpts::data_centric(topo, true);
            opts.dc.credits = 8;
            opts.include_backward = false;
            opts.imbalance = Imbalance::Balanced;
            let report = simulate_iteration(cluster.clone(), model.clone(), &opts).unwrap();
            report
                .sim
                .records
                .iter()
                .filter(|t| t.label.starts_with("w1/") && t.label.contains("/pull-int"))
                .map(|t| t.finish)
                .fold(f64::INFINITY, f64::min)
        };
        let naive = first_arrival(false);
        let staggered = first_arrival(true);
        assert!(
            staggered < naive - 1e-9,
            "staggered {staggered} vs naive {naive}"
        );
    }

    #[test]
    fn imbalance_slows_expert_centric_more_than_data_centric() {
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 128;
        let time = |policy: EngineOpts, imb: Imbalance| {
            let mut o = policy;
            o.imbalance = imb;
            simulate_iteration(small_cluster(), model.clone(), &o)
                .unwrap()
                .iter_time
        };
        let ec_b = time(EngineOpts::janus_expert_centric(), Imbalance::Balanced);
        let ec_s = time(EngineOpts::janus_expert_centric(), Imbalance::Zipf(1.0));
        let dc_b = time(EngineOpts::data_centric(true, true), Imbalance::Balanced);
        let dc_s = time(EngineOpts::data_centric(true, true), Imbalance::Zipf(1.0));
        assert!(ec_s > ec_b);
        // DC is insensitive: expert transfer volumes don't depend on the
        // assignment, and compute per worker stays T tokens.
        assert!((dc_s / dc_b - 1.0).abs() < (ec_s / ec_b - 1.0).abs());
    }

    #[test]
    fn single_machine_runs_have_zero_nic_traffic() {
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = 8;
        let cluster = ClusterSpec::a100(1, 8).build();
        for opts in [
            EngineOpts::janus_expert_centric(),
            EngineOpts::data_centric(true, true),
        ] {
            let report = simulate_iteration(cluster.clone(), model.clone(), &opts).unwrap();
            assert_eq!(
                report.cross_node_bytes_per_machine,
                0.0,
                "{}",
                opts.describe()
            );
        }
    }

    #[test]
    fn forward_only_is_faster() {
        let opts = EngineOpts {
            include_backward: false,
            ..EngineOpts::default()
        };
        let fwd = run(&opts);
        let full = run(&EngineOpts::default());
        assert!(fwd.iter_time < full.iter_time);
    }

    #[test]
    fn block_timeline_is_monotone() {
        let report = run(&EngineOpts::data_centric(true, true));
        for pair in report.block_finish_w0.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{:?}", report.block_finish_w0);
        }
        assert_eq!(report.block_finish_w0.len(), 12);
    }
}
