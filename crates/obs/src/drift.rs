//! Sim-vs-real drift calibration: align `janus-netsim` transfer/compute
//! segments against real-engine spans and score how far the cost model
//! drifts from reality.
//!
//! Both sides are reduced to `(scope, block, category) → µs` segments —
//! the **alignment key**. Scope is `r{rank}` for per-worker work and
//! `M{machine}` for machine-level work (external prefetch); block is the
//! model block index (`-1` when not applicable); category is one of
//! `compute`, `a2a`, `pull`, `prefetch`, `grad`, `copy`, `other`.
//!
//! The sim and the real engine run at different absolute scales (the sim
//! models FLOPs and link bytes in seconds; the real engine runs tiny
//! tensors under a FakeClock), so the report first normalizes predicted
//! totals onto the actual total (`scale`) and then scores each matched
//! segment by `accuracy = min/max(scaled predicted, actual) ∈ (0, 1]`
//! and by share error (segment share of predicted total vs share of
//! actual total — scale-free). The aggregate `calibration` is the
//! geometric mean of per-segment accuracies: 1.0 means the cost model
//! apportions time across segments exactly as reality does.

use crate::trace::TraceEvent;
use serde::Serialize;
use std::collections::BTreeMap;

/// Alignment key of one drift segment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct SegKey {
    /// `r{rank}` or `M{machine}`.
    pub scope: String,
    /// Model block index, `-1` when not block-scoped.
    pub block: i64,
    /// `compute` | `a2a` | `pull` | `prefetch` | `grad` | `copy` | `other`.
    pub category: String,
}

impl SegKey {
    pub fn new(scope: impl Into<String>, block: i64, category: impl Into<String>) -> SegKey {
        SegKey {
            scope: scope.into(),
            block,
            category: category.into(),
        }
    }

    /// Render as `scope/b{block}/category` (block omitted when `-1`).
    pub fn label(&self) -> String {
        if self.block < 0 {
            format!("{}/{}", self.scope, self.category)
        } else {
            format!("{}/b{}/{}", self.scope, self.block, self.category)
        }
    }
}

/// One matched predicted-vs-actual segment. `key`, `scope`, `block`,
/// `category`, `predicted_us`, and `share_pred` are deterministic (the
/// sim is bitwise stable); the actual-side fields are wall-clock and
/// listed in the analyze task's masked keys.
#[derive(Debug, Clone, Serialize)]
pub struct DriftSegment {
    pub key: String,
    pub scope: String,
    pub block: i64,
    pub category: String,
    /// Sim-predicted duration, µs (deterministic).
    pub predicted_us: f64,
    /// Real measured duration, µs (masked).
    pub actual_us: f64,
    /// `(scale × predicted − actual) / actual` (masked).
    pub rel_err: f64,
    /// `min/max(scale × predicted, actual)` ∈ (0, 1] (masked).
    pub accuracy: f64,
    /// Segment share of the predicted total (deterministic).
    pub share_pred: f64,
    /// Segment share of the actual total (masked).
    pub share_act: f64,
    /// `share_pred − share_act` (masked).
    pub share_err: f64,
}

/// The full drift calibration report.
#[derive(Debug, Clone, Serialize)]
pub struct DriftReport {
    /// Matched segments, sorted by key.
    pub segments: Vec<DriftSegment>,
    pub matched: usize,
    /// Sim segments with no real counterpart (work the cost model
    /// represents but the trace does not expose), sorted.
    pub unmatched_sim: Vec<String>,
    /// Real segments with no sim counterpart, sorted.
    pub unmatched_real: Vec<String>,
    /// `actual total / predicted total` over matched segments (masked).
    pub scale: f64,
    /// Geometric mean of per-segment `accuracy` (masked).
    pub calibration: f64,
}

/// Align predicted and actual `(key, µs)` lists (duplicates are summed)
/// and score the drift.
pub fn drift_report(sim: &[(SegKey, f64)], real: &[(SegKey, f64)]) -> DriftReport {
    let fold = |xs: &[(SegKey, f64)]| {
        let mut m: BTreeMap<SegKey, f64> = BTreeMap::new();
        for (k, v) in xs {
            if *v > 0.0 {
                *m.entry(k.clone()).or_default() += v;
            }
        }
        m
    };
    let sim = fold(sim);
    let real = fold(real);

    let tot_pred: f64 = sim
        .iter()
        .filter(|(k, _)| real.contains_key(k))
        .map(|(_, v)| v)
        .sum();
    let tot_act: f64 = real
        .iter()
        .filter(|(k, _)| sim.contains_key(k))
        .map(|(_, v)| v)
        .sum();
    let scale = if tot_pred > 0.0 {
        tot_act / tot_pred
    } else {
        0.0
    };

    let mut segments = Vec::new();
    let mut log_acc = 0.0f64;
    for (k, &p) in &sim {
        let Some(&a) = real.get(k) else { continue };
        let scaled = p * scale;
        let accuracy = if scaled > 0.0 && a > 0.0 {
            (scaled.min(a) / scaled.max(a)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        log_acc += accuracy.max(1e-12).ln();
        segments.push(DriftSegment {
            key: k.label(),
            scope: k.scope.clone(),
            block: k.block,
            category: k.category.clone(),
            predicted_us: p,
            actual_us: a,
            rel_err: if a > 0.0 { (scaled - a) / a } else { 0.0 },
            accuracy,
            share_pred: if tot_pred > 0.0 { p / tot_pred } else { 0.0 },
            share_act: if tot_act > 0.0 { a / tot_act } else { 0.0 },
            share_err: if tot_pred > 0.0 && tot_act > 0.0 {
                p / tot_pred - a / tot_act
            } else {
                0.0
            },
        });
    }
    let matched = segments.len();
    DriftReport {
        unmatched_sim: sim
            .keys()
            .filter(|k| !real.contains_key(*k))
            .map(SegKey::label)
            .collect(),
        unmatched_real: real
            .keys()
            .filter(|k| !sim.contains_key(*k))
            .map(SegKey::label)
            .collect(),
        scale,
        calibration: if matched > 0 {
            (log_acc / matched as f64).exp()
        } else {
            0.0
        },
        matched,
        segments,
    }
}

/// Reduce a real-engine trace to drift segments. `machine_of` maps a
/// rank (trace `pid`) to its machine index, used to scope prefetch
/// spans the way the sim does (external fetches are machine-level).
///
/// Only span families the cost model predicts are included: expert
/// compute (`fwd`/`bwd`), `pull`, `prefetch`, gradient routing
/// (`grad_push` at rank scope, `grad_ext` at machine scope), and
/// `a2a_*`. Wait spans (`cache_wait`, `credit_wait`, `grad_wait`,
/// `barrier`) measure scheduling, not modelled work, and are left to the
/// blame report. A `pull` nested inside a `prefetch` on the same rank is
/// skipped: the prefetch span already accounts for that wire time at
/// machine scope, and counting both would double-bill it.
pub fn real_segments<F: Fn(u32) -> usize>(
    events: &[TraceEvent],
    machine_of: F,
) -> Vec<(SegKey, f64)> {
    let mut prefetch_windows: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
    for e in events {
        if e.name.starts_with("prefetch/") {
            prefetch_windows
                .entry(e.pid)
                .or_default()
                .push((e.ts_us, e.end_us()));
        }
    }
    let nested_in_prefetch = |e: &TraceEvent| {
        prefetch_windows
            .get(&e.pid)
            .is_some_and(|ws| ws.iter().any(|&(s, f)| e.ts_us >= s && e.end_us() <= f))
    };
    let mut out = Vec::new();
    for e in events {
        let mut parts = e.name.split('/');
        let head = parts.next().unwrap_or("");
        let block = parts
            .find_map(|p| p.strip_prefix('b').and_then(|s| s.parse::<i64>().ok()))
            .unwrap_or(-1);
        let key = match head {
            "fwd" | "bwd" if e.cat == "compute" => {
                SegKey::new(format!("r{}", e.pid), block, "compute")
            }
            "pull" if !nested_in_prefetch(e) => SegKey::new(format!("r{}", e.pid), block, "pull"),
            "pull" => continue,
            "prefetch" => SegKey::new(format!("M{}", machine_of(e.pid)), block, "prefetch"),
            "grad_push" => SegKey::new(format!("r{}", e.pid), block, "grad"),
            "grad_ext" => SegKey::new(format!("M{}", machine_of(e.pid)), block, "grad"),
            h if h.starts_with("a2a_") => SegKey::new(format!("r{}", e.pid), block, "a2a"),
            _ => continue,
        };
        out.push((key, e.dur_us));
    }
    out
}

impl DriftReport {
    /// Human-readable drift summary (used by `repro analyze`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sim-vs-real drift: {} matched segments, calibration {:.3}, scale {:.3e}\n",
            self.matched, self.calibration, self.scale
        ));
        out.push_str(&format!(
            "  {:<20} {:>12} {:>12} {:>8} {:>8}\n",
            "segment", "pred_us", "actual_us", "rel_err", "acc"
        ));
        for s in &self.segments {
            out.push_str(&format!(
                "  {:<20} {:>12.1} {:>12.1} {:>+7.1}% {:>8.3}\n",
                s.key,
                s.predicted_us,
                s.actual_us,
                100.0 * s.rel_err,
                s.accuracy
            ));
        }
        if !self.unmatched_sim.is_empty() {
            out.push_str(&format!(
                "  sim-only segments ({}): {}\n",
                self.unmatched_sim.len(),
                self.unmatched_sim.join(", ")
            ));
        }
        if !self.unmatched_real.is_empty() {
            out.push_str(&format!(
                "  real-only segments ({}): {}\n",
                self.unmatched_real.len(),
                self.unmatched_real.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(scope: &str, block: i64, cat: &str) -> SegKey {
        SegKey::new(scope, block, cat)
    }

    #[test]
    fn perfect_prediction_calibrates_to_one() {
        // Predicted is exactly 2× actual everywhere: after scale
        // normalization the model is perfect.
        let sim = vec![
            (k("r0", 0, "pull"), 20.0),
            (k("r1", 0, "pull"), 40.0),
            (k("r0", 1, "a2a"), 60.0),
        ];
        let real = vec![
            (k("r0", 0, "pull"), 10.0),
            (k("r1", 0, "pull"), 20.0),
            (k("r0", 1, "a2a"), 30.0),
        ];
        let r = drift_report(&sim, &real);
        assert_eq!(r.matched, 3);
        assert!((r.scale - 0.5).abs() < 1e-9);
        assert!((r.calibration - 1.0).abs() < 1e-9);
        for s in &r.segments {
            assert!(s.rel_err.abs() < 1e-9);
            assert!(s.share_err.abs() < 1e-9);
        }
        assert!(r.unmatched_sim.is_empty());
        assert!(r.unmatched_real.is_empty());
    }

    #[test]
    fn misprediction_lowers_calibration_and_reports_rel_err() {
        // Shares: sim 50/50, real 80/20.
        let sim = vec![(k("r0", 0, "pull"), 10.0), (k("r0", 0, "a2a"), 10.0)];
        let real = vec![(k("r0", 0, "pull"), 80.0), (k("r0", 0, "a2a"), 20.0)];
        let r = drift_report(&sim, &real);
        assert_eq!(r.matched, 2);
        assert!((r.scale - 5.0).abs() < 1e-9);
        assert!(r.calibration < 1.0);
        let a2a = r.segments.iter().find(|s| s.category == "a2a").unwrap();
        // Scaled prediction 50 vs actual 20 → rel_err +150%.
        assert!((a2a.rel_err - 1.5).abs() < 1e-9);
        assert!((a2a.accuracy - 0.4).abs() < 1e-9);
        let pull = r.segments.iter().find(|s| s.category == "pull").unwrap();
        assert!((pull.rel_err - (-0.375)).abs() < 1e-9);
    }

    #[test]
    fn unmatched_segments_are_listed_not_scored() {
        let sim = vec![(k("r0", 0, "pull"), 10.0), (k("r0", 0, "grad"), 5.0)];
        let real = vec![(k("r0", 0, "pull"), 10.0), (k("r1", 2, "a2a"), 3.0)];
        let r = drift_report(&sim, &real);
        assert_eq!(r.matched, 1);
        assert_eq!(r.unmatched_sim, vec!["r0/b0/grad".to_string()]);
        assert_eq!(r.unmatched_real, vec!["r1/b2/a2a".to_string()]);
        // Scale uses matched totals only.
        assert!((r.scale - 1.0).abs() < 1e-9);
        assert!((r.calibration - 1.0).abs() < 1e-9);
    }

    #[test]
    fn real_segment_extraction_maps_span_families() {
        let ev = |name: &str, cat: &str, pid: u32, dur: f64| TraceEvent {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid: "t".into(),
            ts_us: 0.0,
            dur_us: dur,
        };
        let events = vec![
            ev("fwd/b0/e1", "compute", 0, 5.0),
            ev("bwd/b0/e1", "compute", 0, 7.0),
            ev("pull/b1/e2", "comm", 1, 3.0),
            ev("prefetch/b1/e6", "comm", 2, 4.0),
            ev("a2a_dispatch/b2", "comm", 3, 9.0),
            ev("grad_push/b0/e2", "comm", 1, 2.0),
            ev("grad_ext/b0/e3", "comm", 2, 6.0),
            ev("cache_wait/b1/e2", "comm", 1, 100.0), // excluded
            ev("barrier/0", "sync", 0, 100.0),        // excluded
        ];
        let segs = real_segments(&events, |pid| (pid / 2) as usize);
        let mut m: BTreeMap<SegKey, f64> = BTreeMap::new();
        for (key, v) in segs {
            *m.entry(key).or_default() += v;
        }
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(&k("r0", 0, "compute")), Some(&12.0));
        assert_eq!(m.get(&k("r1", 1, "pull")), Some(&3.0));
        assert_eq!(m.get(&k("M1", 1, "prefetch")), Some(&4.0));
        assert_eq!(m.get(&k("r3", 2, "a2a")), Some(&9.0));
        assert_eq!(m.get(&k("r1", 0, "grad")), Some(&2.0));
        assert_eq!(m.get(&k("M1", 0, "grad")), Some(&6.0));
    }

    #[test]
    fn pull_nested_in_prefetch_is_not_double_billed() {
        let span = |name: &str, pid: u32, ts: f64, dur: f64| TraceEvent {
            name: name.into(),
            cat: "comm".into(),
            pid,
            tid: "b0".into(),
            ts_us: ts,
            dur_us: dur,
        };
        let events = vec![
            // Designated rank 0: prefetch wraps the wire pull.
            span("prefetch/b0/e2", 0, 0.0, 10.0),
            span("pull/b0/e2", 0, 1.0, 8.0),
            // A free-standing internal pull on the same rank still counts.
            span("pull/b0/e1", 0, 20.0, 3.0),
            // Same window on another rank: not nested there.
            span("pull/b0/e3", 1, 1.0, 8.0),
        ];
        let segs = real_segments(&events, |_| 0);
        let mut m: BTreeMap<SegKey, f64> = BTreeMap::new();
        for (key, v) in segs {
            *m.entry(key).or_default() += v;
        }
        assert_eq!(m.get(&k("M0", 0, "prefetch")), Some(&10.0));
        assert_eq!(m.get(&k("r0", 0, "pull")), Some(&3.0));
        assert_eq!(m.get(&k("r1", 0, "pull")), Some(&8.0));
    }
}
