//! Worker-side model state for the numerical engines.
//!
//! The numerical engines exist to demonstrate the paper's §3.2
//! equivalence claim end to end, so the model is a stack of pure MoE
//! blocks (`y = x + Σ_k wₖ·expertₖ(x)`, top-k gated). Attention layers
//! add identical local compute to both paradigms and are omitted; the
//! simulation engines model their cost instead.

use crate::placement::Placement;
use crate::plan::{IterationPlan, PlanOpts};
use crate::queue::CacheStats;
use janus_comm::TransportStats;
use janus_moe::config::{BlockKind, ModelConfig};
use janus_moe::expert::{ExpertFfn, ExpertGrads, ExpertScratch};
use janus_moe::gate::TopKGate;
use janus_tensor::Matrix;
use janus_topology::{Cluster, ClusterSpec};
use parking_lot::{Condvar, Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The buffered contributions for one owned expert: `(sender, grad,
/// contribution count)` tuples.
pub type GradParts = Vec<(usize, ExpertGrads, u32)>;

/// Gradient contributions addressed to this worker's owned experts,
/// keyed by `(block, expert)`, buffered until all of the world's
/// contributions arrived.
///
/// Lives on [`WorkerState`] (not inside one iteration's runtime) because
/// a fast peer may pass the end-of-iteration barriers and push its
/// next-iteration gradient while this worker is still draining the
/// current iteration's barrier — the contribution must survive into the
/// next iteration instead of being dropped with the old runtime.
#[derive(Default)]
pub struct GradInbox {
    inner: Mutex<HashMap<(usize, usize), GradParts>>,
    changed: Condvar,
}

impl GradInbox {
    /// Empty inbox.
    pub fn new() -> Self {
        GradInbox::default()
    }

    /// Buffer one contribution and wake any waiter.
    pub fn push(&self, key: (usize, usize), sender: usize, grad: ExpertGrads, contributions: u32) {
        self.inner
            .lock()
            .entry(key)
            .or_default()
            .push((sender, grad, contributions));
        self.changed.notify_all();
    }

    /// Lock the underlying map (used by the update fold).
    pub fn lock(&self) -> MutexGuard<'_, HashMap<(usize, usize), GradParts>> {
        self.inner.lock()
    }

    /// Block until a contribution lands or `timeout` elapses — the
    /// event-driven half of the engines' update wait; remote arrivals
    /// still need the caller's bounded-backoff service loop. Returns
    /// `true` when woken by a push, `false` on timeout, so callers can
    /// track how long nothing has arrived and fail loudly instead of
    /// waiting forever.
    pub fn wait_changed(&self, timeout: Duration) -> bool {
        let mut guard = self.inner.lock();
        !self
            .changed
            .wait_until(&mut guard, Instant::now() + timeout)
            .timed_out()
    }
}

/// Deadline/retry policy for data-centric expert pulls. Lives on
/// [`WorkerState`] rather than [`ExecConfig`] so existing configs stay
/// source-compatible; override the field after `init` to tighten it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullRetryPolicy {
    /// How long one pull attempt may wait for its payload before the
    /// request is re-issued (with a fresh nonce).
    pub deadline: Duration,
    /// Total attempts before the iteration fails loudly with a
    /// diagnostic naming the block, expert, and peer.
    pub max_attempts: u32,
}

impl Default for PullRetryPolicy {
    fn default() -> Self {
        // Generous for an in-process mesh: a healthy peer answers in
        // microseconds, so a missed deadline means real trouble (lossy
        // link, wedged peer), and the re-request is cheap.
        PullRetryPolicy {
            deadline: Duration::from_secs(5),
            max_attempts: 6,
        }
    }
}

/// Communication reliability counters accumulated by one worker across
/// its training run: protocol-level pull retries/timeouts plus the
/// transport stack's own delivery counters. Shared (`Arc`) between
/// [`WorkerState`] and the per-iteration runtimes.
#[derive(Default)]
pub struct CommCounters {
    pull_retries: AtomicU64,
    pull_timeouts: AtomicU64,
    /// Monotone source of pull nonces: every pull attempt gets a fresh
    /// one, so a re-request can never be satisfied by a stale payload.
    next_nonce: AtomicU32,
    transport: Mutex<TransportStats>,
    /// Latest cache-effectiveness snapshot (machine-level cache stats +
    /// gradient prefolds), recorded by the data-centric paths.
    cache: Mutex<(CacheStats, u64)>,
    /// Payload bytes this worker addressed to ranks on *other* machines
    /// (dispatch chunks, expert pulls, gradient pushes). Deterministic
    /// for a given seed and placement, so migration experiments can
    /// assert cross-machine traffic dropped, bit for bit.
    remote_bytes: AtomicU64,
    /// Committed expert migrations this worker took part in (as sender,
    /// receiver, or orphan adopter).
    migrations: AtomicU64,
    /// Expert-state bytes moved by those migrations.
    migration_bytes: AtomicU64,
    /// Placement epochs committed past the one the run started from.
    epoch_bumps: AtomicU64,
    /// 1 once the worker runs under a placement with dead ranks.
    degraded: AtomicU64,
}

impl CommCounters {
    /// A pull attempt missed its deadline and was re-issued.
    pub fn record_pull_retry(&self) {
        self.pull_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A pull exhausted its attempt budget.
    pub fn record_pull_timeout(&self) {
        self.pull_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A fresh, worker-unique nonce for the next pull attempt.
    pub fn next_nonce(&self) -> u32 {
        self.next_nonce.fetch_add(1, Ordering::Relaxed)
    }

    /// Replace the transport-stack snapshot ([`janus_comm::Transport::stats`]
    /// is cumulative, so the latest snapshot supersedes earlier ones).
    pub fn record_transport(&self, stats: TransportStats) {
        *self.transport.lock() = stats;
    }

    /// Replace the cache-effectiveness snapshot ([`CacheManager::stats`]
    /// and [`crate::queue::GradAccumulator::prefolds`] are cumulative,
    /// like transport stats). The cache is shared per machine, so every
    /// local worker reports its machine's totals.
    ///
    /// [`CacheManager::stats`]: crate::queue::CacheManager::stats
    pub fn record_cache(&self, stats: CacheStats, grad_prefolds: u64) {
        *self.cache.lock() = (stats, grad_prefolds);
    }

    /// Count payload bytes addressed to a rank on another machine.
    pub fn add_remote_bytes(&self, n: u64) {
        self.remote_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// A committed expert migration moved `bytes` of expert state
    /// through (or into) this worker.
    pub fn record_migration(&self, bytes: u64) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
        self.migration_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A new placement epoch was committed.
    pub fn record_epoch_bump(&self) {
        self.epoch_bumps.fetch_add(1, Ordering::Relaxed);
    }

    /// The worker is running degraded (at least one rank permanently
    /// dead in its placement).
    pub fn set_degraded(&self) {
        self.degraded.store(1, Ordering::Relaxed);
    }

    /// Copy out everything for reporting.
    pub fn snapshot(&self) -> CommSnapshot {
        let t = *self.transport.lock();
        let (c, prefolds) = *self.cache.lock();
        CommSnapshot {
            pull_retries: self.pull_retries.load(Ordering::Relaxed),
            pull_timeouts: self.pull_timeouts.load(Ordering::Relaxed),
            retransmits: t.retransmits,
            duplicates_dropped: t.duplicates_dropped,
            acks_sent: t.acks_sent,
            out_of_order_held: t.out_of_order_held,
            faults_dropped: t.faults_dropped,
            faults_delayed: t.faults_delayed,
            faults_duplicated: t.faults_duplicated,
            jittered_backoffs: t.jittered_backoffs,
            cache_fetches: c.fetches,
            cache_hits: c.hits,
            cache_misses: c.misses,
            grad_prefolds: prefolds,
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            migration_bytes: self.migration_bytes.load(Ordering::Relaxed),
            epoch_bumps: self.epoch_bumps.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of [`CommCounters`] for reporting (the `repro` tool's
/// fault table, test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommSnapshot {
    /// Pull attempts re-issued after a missed deadline.
    pub pull_retries: u64,
    /// Pulls that exhausted their attempt budget.
    pub pull_timeouts: u64,
    /// Frames retransmitted by the reliability layer.
    pub retransmits: u64,
    /// Duplicate frames discarded by sequence-number dedup.
    pub duplicates_dropped: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Frames held for sequence reordering.
    pub out_of_order_held: u64,
    /// Messages dropped by fault injection (including partitions).
    pub faults_dropped: u64,
    /// Messages delayed by fault injection.
    pub faults_delayed: u64,
    /// Messages duplicated by fault injection.
    pub faults_duplicated: u64,
    /// Backoff sleeps shortened by deterministic seeded jitter.
    pub jittered_backoffs: u64,
    /// Expert fetches performed by this worker's machine cache (§5.1.2).
    pub cache_fetches: u64,
    /// Cache lookups served without a cross-machine pull.
    pub cache_hits: u64,
    /// Cache lookups that found nothing ready.
    pub cache_misses: u64,
    /// Gradient contributions folded away by pre-reduction.
    pub grad_prefolds: u64,
    /// Payload bytes addressed to ranks on other machines.
    pub remote_bytes: u64,
    /// Committed expert migrations this worker took part in.
    pub migrations: u64,
    /// Expert-state bytes moved by migrations.
    pub migration_bytes: u64,
    /// Placement epochs committed past the starting one.
    pub epoch_bumps: u64,
    /// 1 when the worker ran degraded (a rank permanently dead).
    pub degraded: u64,
}

impl CommSnapshot {
    /// Field-wise accumulate (used by `TrainRun::comm_totals`).
    pub fn accumulate(&mut self, other: &CommSnapshot) {
        self.pull_retries += other.pull_retries;
        self.pull_timeouts += other.pull_timeouts;
        self.retransmits += other.retransmits;
        self.duplicates_dropped += other.duplicates_dropped;
        self.acks_sent += other.acks_sent;
        self.out_of_order_held += other.out_of_order_held;
        self.faults_dropped += other.faults_dropped;
        self.faults_delayed += other.faults_delayed;
        self.faults_duplicated += other.faults_duplicated;
        self.jittered_backoffs += other.jittered_backoffs;
        self.cache_fetches += other.cache_fetches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.grad_prefolds += other.grad_prefolds;
        self.remote_bytes += other.remote_bytes;
        self.migrations += other.migrations;
        self.migration_bytes += other.migration_bytes;
        self.epoch_bumps += other.epoch_bumps;
        self.degraded = self.degraded.max(other.degraded);
    }
}

/// Configuration of a numerical training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Number of machines.
    pub machines: usize,
    /// Workers (GPUs) per machine.
    pub gpus_per_machine: usize,
    /// Token dimension `H`.
    pub hidden_dim: usize,
    /// Number of (MoE) blocks.
    pub blocks: usize,
    /// Experts per block (divisible by the world size).
    pub experts: usize,
    /// Optional per-block expert counts (length `blocks`); empty means
    /// every block has `experts` experts. Uneven counts give blocks
    /// different `R` values, so a unified plan can mix paradigms.
    pub experts_per_block: Vec<usize>,
    /// Gate fan-out.
    pub top_k: usize,
    /// Tokens per worker per iteration.
    pub tokens: usize,
    /// Base RNG seed; every worker derives the same weights from it.
    pub seed: u64,
    /// SGD learning rate.
    pub lr: f32,
}

impl ExecConfig {
    /// A small default configuration for tests and examples.
    pub fn small() -> Self {
        ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            experts_per_block: Vec::new(),
            top_k: 2,
            tokens: 16,
            seed: 7,
            lr: 0.05,
        }
    }

    /// A configuration whose compiled plan mixes paradigms: the first
    /// block's `R` exceeds 1 (data-centric) while the second's does not
    /// (expert-centric). Used by the unified-engine equivalence tests.
    pub fn mixed_paradigms() -> Self {
        ExecConfig {
            machines: 2,
            gpus_per_machine: 2,
            hidden_dim: 8,
            blocks: 2,
            experts: 8,
            // R(b) = tokens·k / (4·n·H·E_per_worker): 64·2/(4·2·8·1) = 2
            // for the 4-expert block, 1 for the 8-expert block.
            experts_per_block: vec![4, 8],
            top_k: 2,
            tokens: 64,
            seed: 7,
            // 0.05 diverges on this shape within ~5 iterations; 0.01
            // trains stably for the longer equivalence runs.
            lr: 0.01,
        }
    }

    /// Total workers.
    pub fn world(&self) -> usize {
        self.machines * self.gpus_per_machine
    }

    /// Experts per worker.
    pub fn experts_per_worker(&self) -> usize {
        assert_eq!(
            self.experts % self.world(),
            0,
            "experts must divide the world size"
        );
        self.experts / self.world()
    }

    /// Owner rank of global expert `e`.
    pub fn owner_of(&self, e: usize) -> usize {
        e / self.experts_per_worker()
    }

    /// Machine index of a rank.
    pub fn machine_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_machine
    }

    /// The local rank designated to fetch external expert `e` for its
    /// machine (round-robin over local workers), and to aggregate its
    /// gradient pre-reduction.
    pub fn designated_local(&self, machine: usize, e: usize) -> usize {
        machine * self.gpus_per_machine + e % self.gpus_per_machine
    }

    /// Global expert ids owned by `rank`.
    pub fn owned_experts(&self, rank: usize) -> std::ops::Range<usize> {
        let per = self.experts_per_worker();
        rank * per..(rank + 1) * per
    }

    /// Experts in block `b`.
    pub fn experts_in(&self, b: usize) -> usize {
        if self.experts_per_block.is_empty() {
            self.experts
        } else {
            self.experts_per_block[b]
        }
    }

    /// Experts per worker in block `b`.
    pub fn experts_per_worker_in(&self, b: usize) -> usize {
        let experts = self.experts_in(b);
        assert_eq!(
            experts % self.world(),
            0,
            "block {b}: experts must divide the world size"
        );
        experts / self.world()
    }

    /// Owner rank of global expert `e` of block `b`.
    pub fn owner_of_in(&self, b: usize, e: usize) -> usize {
        e / self.experts_per_worker_in(b)
    }

    /// Global expert ids of block `b` owned by `rank`.
    pub fn owned_experts_in(&self, b: usize, rank: usize) -> std::ops::Range<usize> {
        let per = self.experts_per_worker_in(b);
        rank * per..(rank + 1) * per
    }

    /// Scratch-slot index of `(block, global expert)`: blocks may differ
    /// in expert count, so slots are laid out by prefix sum.
    pub fn scratch_index(&self, b: usize, e: usize) -> usize {
        debug_assert!(e < self.experts_in(b));
        (0..b).map(|p| self.experts_in(p)).sum::<usize>() + e
    }

    /// Total scratch slots across all blocks.
    pub fn scratch_slots(&self) -> usize {
        (0..self.blocks).map(|b| self.experts_in(b)).sum()
    }

    /// The equivalent [`ModelConfig`]: a stack of pure MoE blocks with
    /// `B·S = tokens` per worker, in f32 — the analytic-model view of
    /// this numerical run, used to compile its [`IterationPlan`].
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig {
            name: "exec".to_string(),
            blocks: (0..self.blocks)
                .map(|b| BlockKind::Moe {
                    experts: self.experts_in(b),
                })
                .collect(),
            hidden_dim: self.hidden_dim,
            batch: self.tokens,
            seq_len: 1,
            top_k: self.top_k,
            dtype_bytes: 4,
            vocab: 0,
        }
    }

    /// The cluster this run models.
    pub fn cluster(&self) -> Cluster {
        ClusterSpec::a100(self.machines, self.gpus_per_machine).build()
    }

    /// Compile the iteration plan for this run — the same single
    /// compilation site the simulator uses.
    pub fn compile_plan(&self, opts: &PlanOpts) -> IterationPlan {
        IterationPlan::compile(&self.model_config(), &self.cluster(), opts)
    }
}

/// One worker's model replica + expert shard.
pub struct WorkerState {
    /// Configuration.
    pub cfg: ExecConfig,
    /// This worker's rank.
    pub rank: usize,
    /// Elastic expert placement this worker is executing under. Epoch 0
    /// balanced by default; the elastic driver installs migrated tables.
    /// Shared so the per-iteration runtimes can consult it cheaply.
    pub placement: Arc<Placement>,
    /// Cached `placement.owned_in(b, rank)` per block: `owned[b][i]` is
    /// the global id of `experts[b][i]`.
    pub owned_ids: Vec<Vec<usize>>,
    /// Replicated gates, one per block (identical on every worker).
    pub gates: Vec<TopKGate>,
    /// Owned experts: `experts[block][local_index]`.
    pub experts: Vec<Vec<ExpertFfn>>,
    /// This worker's token batch.
    pub inputs: Matrix,
    /// Cross-iteration inbox of gradient contributions for owned experts
    /// (shared with the iteration runtimes, hence the `Arc`).
    pub grads_inbox: Arc<GradInbox>,
    /// Reusable compute buffers, one slot per `(block, global expert)`
    /// (index `block · experts + expert`). A slot doubles as the
    /// activation tape of its expert between forward and backward, and
    /// its allocations persist across iterations, so steady-state expert
    /// passes are allocation-free. Slots are independent, so the engines
    /// run per-expert compute as parallel tasks, each locking only its
    /// own slot.
    pub scratch: Vec<Mutex<ExpertScratch>>,
    /// Deadline/retry policy for data-centric pulls.
    pub pull_retry: PullRetryPolicy,
    /// Ceiling on any single blocking wait in the engines (cache waits,
    /// gradient-inbox waits): when it elapses the iteration fails with a
    /// diagnostic naming what never arrived instead of hanging forever.
    pub wait_budget: Duration,
    /// Reliability counters for this worker's run (shared with the
    /// iteration runtimes; the `repro` tool prints the snapshot).
    pub comm: Arc<CommCounters>,
}

impl WorkerState {
    /// Deterministic initialization: gates and experts depend only on
    /// `(seed, block, expert)` — *not* on which worker materializes them —
    /// so every engine builds bit-identical weights.
    pub fn init(cfg: &ExecConfig, rank: usize) -> Self {
        Self::init_placed(cfg, rank, Self::balanced_placement(cfg))
    }

    /// The epoch-0 balanced placement for `cfg` (the static layout).
    pub fn balanced_placement(cfg: &ExecConfig) -> Placement {
        let counts: Vec<usize> = (0..cfg.blocks).map(|b| cfg.experts_in(b)).collect();
        Placement::balanced(&counts, cfg.world())
    }

    /// [`init`](Self::init) under an explicit placement: the worker
    /// materializes exactly the experts the table assigns it, in
    /// ascending global-id order. Because expert weights are seeded by
    /// `(seed, block, expert)` alone, a fresh worker can be launched
    /// from *any* placement with bit-identical initial weights — the
    /// reference runs of the migration chaos tests rely on this.
    pub fn init_placed(cfg: &ExecConfig, rank: usize, placement: Placement) -> Self {
        placement.assert_valid();
        assert_eq!(placement.world(), cfg.world(), "placement world mismatch");
        let gates = (0..cfg.blocks)
            .map(|b| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xA11CE << 8) ^ b as u64);
                TopKGate::new(cfg.hidden_dim, cfg.experts_in(b), cfg.top_k, &mut rng)
            })
            .collect();
        let owned_ids: Vec<Vec<usize>> = (0..cfg.blocks)
            .map(|b| placement.owned_in(b, rank))
            .collect();
        let experts = owned_ids
            .iter()
            .enumerate()
            .map(|(b, ids)| {
                ids.iter()
                    .map(|&e| expert_weights(cfg, b, e))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xDA7A << 16) ^ rank as u64);
        let inputs = Matrix::uniform(cfg.tokens, cfg.hidden_dim, 1.0, &mut rng);
        let scratch = (0..cfg.scratch_slots())
            .map(|_| Mutex::new(ExpertScratch::new()))
            .collect();
        WorkerState {
            cfg: cfg.clone(),
            rank,
            placement: Arc::new(placement),
            owned_ids,
            gates,
            experts,
            inputs,
            grads_inbox: Arc::new(GradInbox::new()),
            scratch,
            pull_retry: PullRetryPolicy::default(),
            // Generous: a healthy mesh resolves any wait in microseconds,
            // so a blown budget means a peer is gone, not slow.
            wait_budget: Duration::from_secs(60),
            comm: Arc::new(CommCounters::default()),
        }
    }

    /// The scratch slot of `(block, global expert)`.
    pub fn scratch_slot(&self, block: usize, e: usize) -> &Mutex<ExpertScratch> {
        &self.scratch[self.cfg.scratch_index(block, e)]
    }

    /// The canonical initial weights of global expert `e` in block `b`.
    pub fn reference_expert(cfg: &ExecConfig, b: usize, e: usize) -> ExpertFfn {
        expert_weights(cfg, b, e)
    }

    /// Local shard index of an owned expert, panicking with the expert
    /// named when the placement does not assign it here.
    pub fn local_index(&self, block: usize, e: usize) -> usize {
        match self.owned_ids[block].binary_search(&e) {
            Ok(i) => i,
            Err(_) => panic!(
                "expert {e} (block {block}) not owned by rank {} under placement epoch {}",
                self.rank, self.placement.epoch
            ),
        }
    }

    /// Mutable access to an owned expert by global id.
    pub fn owned_mut(&mut self, block: usize, e: usize) -> &mut ExpertFfn {
        let i = self.local_index(block, e);
        &mut self.experts[block][i]
    }

    /// Shared access to an owned expert by global id.
    pub fn owned(&self, block: usize, e: usize) -> &ExpertFfn {
        let i = self.local_index(block, e);
        &self.experts[block][i]
    }

    /// Re-shard the worker onto `next`: experts owned under both tables
    /// are carried over bitwise, experts gained are requested from
    /// `provide` (the migration protocol hands over the sender's blob,
    /// or a checkpointed orphan), experts lost are dropped. The swap is
    /// atomic from the engines' point of view — it happens between
    /// iterations, after the commit barrier.
    pub fn remap_experts(
        &mut self,
        next: Placement,
        mut provide: impl FnMut(usize, usize) -> ExpertFfn,
    ) {
        next.assert_valid();
        assert_eq!(next.world(), self.cfg.world(), "placement world mismatch");
        let mut new_experts = Vec::with_capacity(self.cfg.blocks);
        let mut new_owned = Vec::with_capacity(self.cfg.blocks);
        for b in 0..self.cfg.blocks {
            let ids = next.owned_in(b, self.rank);
            let shard = ids
                .iter()
                .map(|&e| match self.owned_ids[b].binary_search(&e) {
                    Ok(i) => self.experts[b][i].clone(),
                    Err(_) => provide(b, e),
                })
                .collect();
            new_experts.push(shard);
            new_owned.push(ids);
        }
        self.experts = new_experts;
        self.owned_ids = new_owned;
        self.placement = Arc::new(next);
    }
}

fn expert_weights(cfg: &ExecConfig, b: usize, e: usize) -> ExpertFfn {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0_0000 ^ ((b as u64) << 32) ^ e as u64);
    ExpertFfn::new(cfg.hidden_dim, &mut rng)
}

/// Apply an accumulated gradient (sum over all `W` workers' token slots)
/// to an owned expert with plain SGD.
pub fn apply_gradient(expert: &mut ExpertFfn, grad: &ExpertGrads, lr: f32) {
    expert.apply(grad, lr);
}

/// The loss used by both engines: `L = ½‖y‖²` over the worker's final
/// output, whose gradient is simply `y`.
pub fn loss_and_grad(y: &Matrix) -> (f32, Matrix) {
    let loss = 0.5 * y.data().iter().map(|v| v * v).sum::<f32>();
    (loss, y.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_helpers() {
        let cfg = ExecConfig::small();
        assert_eq!(cfg.world(), 4);
        assert_eq!(cfg.experts_per_worker(), 2);
        assert_eq!(cfg.owner_of(0), 0);
        assert_eq!(cfg.owner_of(7), 3);
        assert_eq!(cfg.machine_of(3), 1);
        assert_eq!(cfg.owned_experts(2), 4..6);
        assert_eq!(cfg.designated_local(1, 5), 3);
    }

    #[test]
    fn per_block_layout_helpers() {
        let cfg = ExecConfig::mixed_paradigms();
        assert_eq!(cfg.experts_in(0), 4);
        assert_eq!(cfg.experts_in(1), 8);
        assert_eq!(cfg.experts_per_worker_in(0), 1);
        assert_eq!(cfg.experts_per_worker_in(1), 2);
        assert_eq!(cfg.owner_of_in(0, 3), 3);
        assert_eq!(cfg.owner_of_in(1, 3), 1);
        assert_eq!(cfg.owned_experts_in(1, 2), 4..6);
        assert_eq!(cfg.scratch_index(0, 3), 3);
        assert_eq!(cfg.scratch_index(1, 0), 4);
        assert_eq!(cfg.scratch_slots(), 12);
        // Uniform configs keep the legacy layout.
        let small = ExecConfig::small();
        assert_eq!(small.experts_in(1), small.experts);
        assert_eq!(small.scratch_index(1, 0), small.experts);
    }

    #[test]
    fn exec_bridge_compiles_a_mixed_plan() {
        use crate::paradigm::Paradigm;
        let cfg = ExecConfig::mixed_paradigms();
        let plan = cfg.compile_plan(&PlanOpts::default());
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].paradigm, Paradigm::DataCentric);
        assert_eq!(plan.blocks[1].paradigm, Paradigm::ExpertCentric);
        assert_eq!(plan.blocks[0].r, Some(2.0));
        assert_eq!(plan.blocks[1].r, Some(1.0));
    }

    #[test]
    fn init_is_rank_consistent() {
        let cfg = ExecConfig::small();
        let w0 = WorkerState::init(&cfg, 0);
        let w1 = WorkerState::init(&cfg, 1);
        // Same gates everywhere.
        assert_eq!(w0.gates[0], w1.gates[0]);
        // Different input tokens per worker.
        assert_ne!(w0.inputs, w1.inputs);
        // Expert weights depend only on (block, expert id).
        assert_eq!(w1.experts[0][0], WorkerState::reference_expert(&cfg, 0, 2));
    }

    #[test]
    fn owned_accessors_check_ownership() {
        let cfg = ExecConfig::small();
        let mut w1 = WorkerState::init(&cfg, 1);
        let _ = w1.owned(0, 2);
        let _ = w1.owned_mut(1, 3);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_expert_access_panics() {
        let cfg = ExecConfig::small();
        let w1 = WorkerState::init(&cfg, 1);
        let _ = w1.owned(0, 0);
    }

    #[test]
    fn loss_gradient_is_identity() {
        let y = Matrix::from_rows(&[&[3.0, 4.0]]);
        let (l, g) = loss_and_grad(&y);
        assert!((l - 12.5).abs() < 1e-6);
        assert_eq!(g, y);
    }

    /// Counters accumulate, nonces never repeat, and the transport
    /// snapshot is a replacement (transport stats are cumulative), not a
    /// running sum.
    #[test]
    fn comm_counters_snapshot_roundtrip() {
        let c = CommCounters::default();
        assert_eq!(c.snapshot(), CommSnapshot::default());
        assert_ne!(c.next_nonce(), c.next_nonce(), "nonces must be unique");
        c.record_pull_retry();
        c.record_pull_retry();
        c.record_pull_timeout();
        c.record_transport(TransportStats {
            retransmits: 5,
            faults_dropped: 2,
            ..TransportStats::default()
        });
        c.record_transport(TransportStats {
            retransmits: 7,
            faults_dropped: 3,
            acks_sent: 1,
            ..TransportStats::default()
        });
        let snap = c.snapshot();
        assert_eq!(snap.pull_retries, 2);
        assert_eq!(snap.pull_timeouts, 1);
        assert_eq!(snap.retransmits, 7, "latest snapshot supersedes");
        assert_eq!(snap.faults_dropped, 3);
        assert_eq!(snap.acks_sent, 1);
    }
}
