//! Cross-crate integration tests for the paper's headline claims, at
//! debug-friendly scale.

use janus::core::sim::engine::{simulate_iteration, EngineOpts, ParadigmPolicy};
use janus::moe::config::{BlockKind, ModelConfig, ModelPreset};
use janus::moe::traffic::{iteration_traffic_dc, iteration_traffic_ec, r_for_block};
use janus::moe::workload::Imbalance;
use janus::topology::ClusterSpec;

fn gpt(batch: usize) -> ModelConfig {
    let mut model = ModelPreset::MoeGpt.config(8);
    model.batch = batch;
    model
}

/// The core claim: per-block paradigm choice by `R` picks the faster
/// paradigm on both sides of the crossover.
#[test]
fn r_metric_predicts_the_faster_paradigm() {
    let cluster = || ClusterSpec::a100(2, 4).build();
    // R = 2·64·4/(4·2·768·1) = 0.08 → expert-centric should win clearly.
    // R = 128·64·4/(4·2·768·1) = 5.33 → data-centric should win clearly.
    // (Near R ≈ 1 the two paradigms tie, which is the point of the rule.)
    for (batch, dc_should_win) in [(2usize, false), (128, true)] {
        let model = gpt(batch);
        let r = r_for_block(&model, 11, 2, 4);
        assert_eq!(r > 1.0, dc_should_win, "test setup: R = {r}");
        let ec = simulate_iteration(
            cluster(),
            model.clone(),
            &EngineOpts::janus_expert_centric(),
        )
        .expect("ec run");
        let dc = simulate_iteration(cluster(), model, &EngineOpts::data_centric(true, true))
            .expect("dc run");
        assert_eq!(
            dc.iter_time < ec.iter_time,
            dc_should_win,
            "batch {batch}: dc {} vs ec {}",
            dc.iter_time,
            ec.iter_time
        );
    }
}

/// The unified engine never loses (meaningfully) to either pure paradigm.
#[test]
fn unified_is_never_worse_than_either_pure_paradigm() {
    let cluster = || ClusterSpec::a100(2, 4).build();
    for batch in [8usize, 32, 128] {
        let model = gpt(batch);
        let ec = simulate_iteration(
            cluster(),
            model.clone(),
            &EngineOpts::janus_expert_centric(),
        )
        .expect("ec run")
        .iter_time;
        let dc = simulate_iteration(
            cluster(),
            model.clone(),
            &EngineOpts::data_centric(true, true),
        )
        .expect("dc run")
        .iter_time;
        let unified = simulate_iteration(cluster(), model, &EngineOpts::default())
            .expect("unified run")
            .iter_time;
        let best = ec.min(dc);
        assert!(
            unified <= best * 1.02,
            "batch {batch}: unified {unified} vs best pure {best}"
        );
    }
}

/// Simulated cross-node traffic equals the paper's closed forms for both
/// paradigms under a balanced workload.
#[test]
fn simulated_traffic_matches_closed_forms() {
    for (n, m) in [(2usize, 2usize), (2, 4), (4, 2)] {
        let mut model = ModelPreset::MoeGpt.config(n * m);
        model.batch = 16;
        let mut ec_opts = EngineOpts::janus_expert_centric();
        ec_opts.imbalance = Imbalance::Balanced;
        let mut dc_opts = EngineOpts::data_centric(true, true);
        dc_opts.imbalance = Imbalance::Balanced;
        let ec = simulate_iteration(ClusterSpec::a100(n, m).build(), model.clone(), &ec_opts)
            .expect("ec run");
        let dc = simulate_iteration(ClusterSpec::a100(n, m).build(), model.clone(), &dc_opts)
            .expect("dc run");
        let ec_pred = iteration_traffic_ec(&model, n, m);
        let dc_pred = iteration_traffic_dc(&model, n, m);
        assert!(
            (ec.cross_node_bytes_per_machine - ec_pred).abs() / ec_pred < 0.01,
            "{n}x{m} EC: {} vs {}",
            ec.cross_node_bytes_per_machine,
            ec_pred
        );
        assert!(
            (dc.cross_node_bytes_per_machine - dc_pred).abs() / dc_pred < 0.02,
            "{n}x{m} DC: {} vs {}",
            dc.cross_node_bytes_per_machine,
            dc_pred
        );
    }
}

/// Data-centric traffic is invariant to workload skew; expert-centric
/// traffic and time are not (the paper's balance argument).
#[test]
fn dc_traffic_is_skew_invariant() {
    let cluster = || ClusterSpec::a100(2, 4).build();
    let model = gpt(32);
    let dc_time = |imb: Imbalance| {
        let mut opts = EngineOpts::data_centric(true, true);
        opts.imbalance = imb;
        simulate_iteration(cluster(), model.clone(), &opts).expect("dc run")
    };
    let balanced = dc_time(Imbalance::Balanced);
    let skewed = dc_time(Imbalance::Zipf(1.0));
    assert!(
        (balanced.cross_node_bytes_per_machine - skewed.cross_node_bytes_per_machine).abs() < 1.0,
        "expert transfers do not depend on the token assignment"
    );
}

/// The Figure 16 memory story at full scale (the estimate is analytic, so
/// it is cheap even in debug mode).
#[test]
fn tutel_oom_at_s512_janus_fits() {
    let mut model = ModelPreset::MoeBert.config(32);
    model.top_k = 4;
    model.seq_len = 512;
    let cluster = ClusterSpec::a100(4, 8).build();
    let mut small = model.clone();
    small.batch = 4; // keep the *simulation* small; memory model uses B from config
                     // Use the full-size config for the memory estimate path by running
                     // the analytic estimator directly.
    use janus::core::paradigm::Paradigm;
    use janus::core::sim::memory::estimate;
    use janus::moe::workload::AssignmentMatrix;
    let assignments: Vec<Option<AssignmentMatrix>> = model
        .blocks
        .iter()
        .map(|k| {
            k.is_moe().then(|| {
                AssignmentMatrix::generate(
                    32,
                    k.experts(),
                    model.tokens_per_worker(),
                    Imbalance::Zipf(0.3),
                    3,
                )
            })
        })
        .collect();
    let cap = cluster.spec().gpu_memory_bytes;
    let ec = estimate(&model, &assignments, 32, cap, Paradigm::ExpertCentric, 16);
    let dc = estimate(&model, &assignments, 32, cap, Paradigm::DataCentric, 16);
    assert!(ec.oom, "expert-centric must exceed 80 GB: {ec:?}");
    assert!(!dc.oom, "data-centric must fit: {dc:?}");
}

/// A model mixing dense and MoE blocks with different expert counts (the
/// PR-MoE structure) simulates cleanly under every policy.
#[test]
fn mixed_block_models_run_under_every_policy() {
    let model = ModelConfig {
        name: "mini-pr-moe".into(),
        blocks: vec![
            BlockKind::Transformer,
            BlockKind::Moe { experts: 8 },
            BlockKind::Transformer,
            BlockKind::Moe { experts: 16 },
        ],
        hidden_dim: 128,
        batch: 16,
        seq_len: 64,
        top_k: 2,
        dtype_bytes: 2,
        vocab: 1000,
    };
    for policy in [
        ParadigmPolicy::ExpertCentric,
        ParadigmPolicy::DataCentric,
        ParadigmPolicy::Unified,
    ] {
        let opts = EngineOpts {
            policy,
            ..EngineOpts::default()
        };
        let report = simulate_iteration(ClusterSpec::a100(2, 4).build(), model.clone(), &opts)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert!(report.iter_time > 0.0);
    }
}

/// Forward-only simulation (the paper's §9 inference direction) is
/// cheaper than training and still picks data-centric wins.
#[test]
fn forward_only_mode_works() {
    let model = gpt(128);
    let mut opts = EngineOpts::data_centric(true, true);
    opts.include_backward = false;
    let fwd = simulate_iteration(ClusterSpec::a100(2, 4).build(), model.clone(), &opts)
        .expect("forward-only run");
    let full = simulate_iteration(
        ClusterSpec::a100(2, 4).build(),
        model,
        &EngineOpts::data_centric(true, true),
    )
    .expect("full run");
    assert!(fwd.iter_time < full.iter_time);
    assert!(fwd.iter_time > 0.0);
}
