//! Elastic expert migration: survive permanent rank loss and hot-expert
//! skew via live re-placement at iteration boundaries.
//!
//! The driver slices training into rounds of `ckpt_every` iterations
//! (the [`supervisor`](crate::exec::supervisor) round model) and, at a
//! round boundary, may install a new [`Placement`] epoch:
//!
//! * **Skew migration.** A deterministic routing probe ([`expert_loads`])
//!   prices every expert's load offline; when the max/mean live-rank
//!   load ratio crosses `skew_ratio`, the round starts with
//!   [`Placement::rebalance`] and the affected experts are shipped live
//!   — bitwise, via the checkpoint wire encoding of expert state
//!   ([`expert_to_bytes`]) — over the reliable transport to their new
//!   owners.
//! * **Graceful degradation.** When a rank dies permanently (a
//!   [`PermanentDeath`] in the schedule, standing in for the liveness
//!   monitor's unrecoverable-death verdict), the failed round is
//!   replayed from the last committed cut under [`Placement::drain`]:
//!   the dead rank's experts are re-apportioned across survivors, their
//!   weights recovered from the dead rank's last committed checkpoint
//!   (or the deterministic init at iteration 0), and training completes
//!   without the dead rank's tokens.
//!
//! Every placement change commits through a barrier tagged with the new
//! epoch before any iteration runs under it, and a round's results are
//! only committed when **all** live ranks finish — so a death during
//! the migration exchange tears down the attempt with the mesh, the
//! placement is *not* installed, and the retry at the same boundary
//! (now draining the new corpse) starts again from the committed cut.
//! Routing can therefore never observe a torn placement.
//!
//! Determinism: placements are pure functions of (config, death/skew
//! evidence), expert blobs are bitwise snapshots, and the post-migration
//! cut each rank captures right after the commit barrier is returned to
//! the caller — the chaos tests restart reference runs from those cuts
//! and assert the continuation is bitwise identical.

use crate::ckpt::{Checkpoint, CkptStore};
use crate::exec::data_centric::MachineShared;
use crate::exec::model::{CommSnapshot, ExecConfig, WorkerState};
use crate::exec::supervisor::{disarm, INJECTED_CRASH_MARKER};
use crate::exec::trainer::{collect, TrainRun};
use crate::exec::unified;
use crate::exec::weights::{expert_from_bytes, expert_to_bytes};
use crate::placement::{Move, Placement};
use crate::plan::{IterationPlan, PlanOpts};
use bytes::Bytes;
use janus_comm::collectives::barrier_among;
use janus_comm::liveness::monitor_mesh;
use janus_comm::local::local_mesh;
use janus_comm::runtime::{run_on, run_on_result};
use janus_comm::{
    Comm, CrashAt, FaultPlan, FaultyTransport, LivenessConfig, Message, ReliableTransport,
    RetransmitPolicy, Transport,
};
use janus_moe::expert::ExpertFfn;
use janus_tensor::Matrix;
use std::collections::HashMap;

/// Deterministic gate bias: adds `boost` to the gate weight column of
/// one expert on every rank, making it run hot. The skew chaos tests use
/// this to provoke a rebalance without touching the token stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSkew {
    /// Block whose gate is biased.
    pub block: usize,
    /// Expert to overload.
    pub expert: usize,
    /// Added to every row of the expert's gate column.
    pub boost: f32,
}

/// One scheduled unrecoverable rank death.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermanentDeath {
    /// Rank that dies.
    pub rank: usize,
    /// Iteration whose round the death lands in; the rank panics before
    /// executing this iteration.
    pub at_iter: u64,
    /// Die *inside the migration exchange* of the round instead of at
    /// the iteration — exercises the abort-and-retry path.
    pub during_migration: bool,
}

/// Elastic driver knobs.
#[derive(Debug, Clone)]
pub struct ElasticOpts {
    /// Round length: placement changes and checkpoint cuts happen every
    /// `ckpt_every` completed iterations.
    pub ckpt_every: u64,
    /// Failed rounds tolerated before giving up.
    pub max_recoveries: u32,
    /// Reliability policy for the per-round transport stack.
    pub retransmit: RetransmitPolicy,
    /// Liveness policy (heartbeats detect silent deaths; panics are
    /// detected by the runtime either way).
    pub liveness: LivenessConfig,
    /// Skew trigger: rebalance when max/mean live-rank probe load
    /// exceeds this ratio. `INFINITY` disables skew migration.
    pub skew_ratio: f64,
    /// Cap on experts moved by one rebalance.
    pub max_moves: usize,
    /// Optional deterministic gate bias (applied on every rank after
    /// every init/restore, so it is part of the run's definition).
    pub skew: Option<GateSkew>,
    /// Scheduled permanent deaths.
    pub deaths: Vec<PermanentDeath>,
}

impl Default for ElasticOpts {
    fn default() -> Self {
        ElasticOpts {
            ckpt_every: 1,
            max_recoveries: 8,
            retransmit: RetransmitPolicy::default(),
            liveness: LivenessConfig::default(),
            skew_ratio: f64::INFINITY,
            max_moves: 4,
            skew: None,
            deaths: Vec::new(),
        }
    }
}

/// One committed placement epoch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EpochCommit {
    /// The epoch installed.
    pub epoch: u64,
    /// Iteration boundary it was installed at.
    pub at_iter: u64,
    /// Digest of the placement table.
    pub placement_digest: u64,
    /// Digest of the iteration plan carrying this placement.
    pub plan_digest: u64,
    /// Experts that changed owner.
    pub moves: usize,
    /// Why: `"skew rebalance …"` or `"drain rank N"`.
    pub reason: String,
}

/// What elasticity cost (and saved) an elastic run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ElasticReport {
    /// Placement epochs committed, in order.
    pub epochs: Vec<EpochCommit>,
    /// Ranks declared permanently dead.
    pub dead_ranks: Vec<usize>,
    /// True when the run finished without its full world.
    pub degraded: bool,
    /// Expert blobs that changed owner (cluster-wide).
    pub migrations: u64,
    /// Bytes of expert state shipped by migrations.
    pub migration_bytes: u64,
    /// Failed rounds replayed.
    pub recoveries: u64,
    /// Iterations re-executed by replays.
    pub replayed_iterations: u64,
    /// Migration exchanges torn down by a death mid-exchange (the
    /// placement was not installed; the retry re-planned it).
    pub aborted_migrations: u64,
    /// Digest of the placement the run finished under.
    pub final_placement_digest: u64,
}

/// A committed post-migration checkpoint cut: every live rank's state at
/// `at_iter`, captured immediately after the epoch's commit barrier.
/// Reference runs restart from here via [`resume_from_cut`].
pub struct MigratedCut {
    /// Iteration boundary the placement was installed at.
    pub at_iter: u64,
    /// The installed placement.
    pub placement: Placement,
    /// Per-rank checkpoint bytes (`None` for dead ranks).
    pub ckpts: Vec<Option<Bytes>>,
}

/// Everything an elastic run produces.
pub struct ElasticOutcome {
    /// The compiled plan (placement-free base; per-epoch plan digests
    /// are in the report).
    pub plan: IterationPlan,
    /// The finished training run (dead ranks contribute their committed
    /// prefix and empty final output/experts).
    pub run: TrainRun,
    /// The migration ledger.
    pub report: ElasticReport,
    /// Post-migration cuts, one per committed epoch.
    pub cuts: Vec<MigratedCut>,
}

/// Deterministic offline load probe: `loads[b][e]` is the number of
/// token slots block `b`'s gate routes to expert `e` across every
/// rank's iteration-0 token embeddings (with `skew` applied). Gates and
/// inputs are pure functions of the config, so every rank — and the
/// driver — computes the identical histogram without touching the mesh.
/// (Deeper blocks route transformed activations at run time; the probe
/// is an estimate there, which is all a load balancer needs.)
pub fn expert_loads(cfg: &ExecConfig, skew: Option<&GateSkew>) -> Vec<Vec<f64>> {
    let mut loads: Vec<Vec<f64>> = (0..cfg.blocks)
        .map(|b| vec![0.0; cfg.experts_in(b)])
        .collect();
    for rank in 0..cfg.world() {
        let mut state = WorkerState::init(cfg, rank);
        if let Some(s) = skew {
            apply_gate_skew(&mut state, s);
        }
        for (b, row) in loads.iter_mut().enumerate() {
            let hist = state.gates[b].route(&state.inputs).histogram();
            for (l, h) in row.iter_mut().zip(hist) {
                *l += h as f64;
            }
        }
    }
    loads
}

/// Max/mean live-rank load under `p` — the skew trigger's input.
pub fn skew_ratio(p: &Placement, loads: &[Vec<f64>]) -> f64 {
    let per_rank: Vec<f64> = (0..p.world())
        .filter(|&r| p.is_live(r))
        .map(|r| {
            loads
                .iter()
                .enumerate()
                .map(|(b, row)| p.owned_in(b, r).iter().map(|&e| row[e]).sum::<f64>())
                .sum()
        })
        .collect();
    let max = per_rank.iter().cloned().fold(0.0, f64::max);
    let mean = per_rank.iter().sum::<f64>() / per_rank.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Bias one expert's gate column on every replica of its block gate.
pub fn apply_gate_skew(state: &mut WorkerState, skew: &GateSkew) {
    let w = &mut state.gates[skew.block].weight;
    for r in 0..w.rows() {
        w[(r, skew.expert)] += skew.boost;
    }
}

/// The owner changes between two placements, ascending by `(block,
/// expert)` — the migration exchange's deterministic shipping list.
pub fn placement_moves(prev: &Placement, next: &Placement) -> Vec<Move> {
    let mut moves = Vec::new();
    for (b, (po, no)) in prev.owners.iter().zip(&next.owners).enumerate() {
        for (e, (&pf, &nt)) in po.iter().zip(no).enumerate() {
            if pf != nt {
                moves.push(Move {
                    block: b,
                    expert: e,
                    from: pf as usize,
                    to: nt as usize,
                });
            }
        }
    }
    moves
}

/// Collective sequence tag of one migrating expert blob. Bit 63 keeps
/// the tag clear of every training-collective sequence.
fn mig_seq(b: usize, e: usize) -> u64 {
    (1u64 << 63) | ((b as u64) << 32) | e as u64
}

/// Train `iters` iterations elastically: skew rebalances and permanent
/// deaths re-place experts at round boundaries, transient injected
/// `faults` are recovered supervisor-style, and the returned outcome
/// carries the post-migration cuts for bitwise reference runs.
pub fn train_elastic(
    cfg: &ExecConfig,
    opts: &PlanOpts,
    el: &ElasticOpts,
    iters: u64,
    faults: FaultPlan,
) -> Result<ElasticOutcome, String> {
    assert!(iters > 0, "elastic training needs at least one iteration");
    let plan = cfg.compile_plan(opts);
    let digest = plan.digest();
    let world = cfg.world();
    let round_len = el.ckpt_every.max(1);
    let loads = expert_loads(cfg, el.skew.as_ref());

    let store = CkptStore::new();
    let mut pending_faults = faults;
    let mut deaths = el.deaths.clone();
    let mut placement = WorkerState::balanced_placement(cfg);
    // (table, reason, moves) of a placement change waiting to commit;
    // survives failed attempts so a drain is never lost.
    let mut pending_target: Option<(Placement, String, usize)> = None;
    let mut report = ElasticReport::default();
    let mut cuts: Vec<MigratedCut> = Vec::new();
    let mut losses: Vec<Vec<f32>> = vec![Vec::new(); world];
    let mut comm_totals: Vec<CommSnapshot> = vec![CommSnapshot::default(); world];
    let mut last_round: Vec<Option<(Matrix, Vec<Vec<ExpertFfn>>)>> =
        (0..world).map(|_| None).collect();
    let mut recoveries_left = el.max_recoveries;
    let mut start: u64 = 0;

    while start < iters {
        let end = (start + round_len).min(iters);
        // Plan this round's placement: a pending drain (from a death in
        // the previous attempt) wins; otherwise consult the skew trigger.
        if pending_target.is_none() && el.skew_ratio.is_finite() {
            let ratio = skew_ratio(&placement, &loads);
            if ratio > el.skew_ratio {
                let (next, moves) = placement.rebalance(&loads, el.max_moves);
                if !moves.is_empty() {
                    pending_target = Some((
                        next,
                        format!("skew rebalance (load ratio {ratio:.2})"),
                        moves.len(),
                    ));
                }
            }
        }
        let (target, reason, n_moves) = match &pending_target {
            Some((t, r, m)) => (t.clone(), r.clone(), *m),
            None => (placement.clone(), String::new(), 0),
        };

        // Orphan blobs: experts whose previous owner is dead in the
        // target. Recovered from the corpse's last committed checkpoint,
        // or from the deterministic init when nothing was committed yet.
        let moves = placement_moves(&placement, &target);
        let mut orphans: HashMap<(usize, usize), Bytes> = HashMap::new();
        for mv in moves.iter().filter(|m| !target.is_live(m.from)) {
            let expert = if start == 0 {
                WorkerState::reference_expert(cfg, mv.block, mv.expert)
            } else {
                let bytes = store
                    .get(mv.from, start)
                    .expect("dead rank's cut was committed before it died");
                let ckpt = Checkpoint::from_bytes(&bytes)
                    .map_err(|e| format!("recovering rank {} cut {start}: {e}", mv.from))?;
                let local = ckpt.effective_placement().local_index(mv.block, mv.expert);
                ckpt.experts[mv.block][local].clone()
            };
            orphans.insert((mv.block, mv.expert), expert_to_bytes(&expert));
        }

        let round_deaths: Vec<PermanentDeath> = deaths
            .iter()
            .filter(|d| target.is_live(d.rank) && d.at_iter >= start && d.at_iter < end)
            .copied()
            .collect();
        let migrating = target != placement;
        let results = run_elastic_round(RoundSpec {
            cfg,
            plan: &plan,
            el,
            store: &store,
            faults: &pending_faults,
            digest,
            start,
            end,
            prev: &placement,
            target: &target,
            orphans: &orphans,
            deaths: &round_deaths,
        });

        let failed: Vec<(usize, String)> = results
            .iter()
            .enumerate()
            .filter(|(rank, _)| target.is_live(*rank))
            .filter_map(|(rank, r)| match r {
                Err(msg) => Some((rank, msg.clone())),
                Ok(_) => None,
            })
            .collect();

        if failed.is_empty() {
            let mut cut_ckpts: Vec<Option<Bytes>> = vec![None; world];
            for (rank, r) in results.into_iter().enumerate() {
                let Ok(Some(out)) = r else { continue };
                losses[rank].extend(out.losses);
                comm_totals[rank].accumulate(&out.comm);
                store.put(rank, end, out.ckpt);
                last_round[rank] = Some((out.output, out.experts));
                cut_ckpts[rank] = out.migrated_cut;
            }
            if migrating {
                report.epochs.push(EpochCommit {
                    epoch: target.epoch,
                    at_iter: start,
                    placement_digest: target.digest(),
                    plan_digest: plan.clone().with_placement(target.clone()).digest(),
                    moves: n_moves,
                    reason,
                });
                cuts.push(MigratedCut {
                    at_iter: start,
                    placement: target.clone(),
                    ckpts: cut_ckpts,
                });
                placement = target;
                pending_target = None;
            }
            start = end;
            continue;
        }

        // A rank died. Permanent deaths drain the corpse from the
        // *committed* placement (a torn migration was never installed);
        // transient injected crashes are disarmed; either way the round
        // replays from the committed cut and the retry re-plans the
        // placement change.
        if migrating {
            report.aborted_migrations += 1;
        }
        let mut drained = placement.clone();
        let mut drain_reasons = Vec::new();
        for (rank, msg) in &failed {
            if let Some(pos) = deaths.iter().position(|d| d.rank == *rank) {
                deaths.remove(pos);
                report.dead_ranks.push(*rank);
                drained = drained.drain(*rank);
                drain_reasons.push(format!("drain rank {rank}"));
            } else if msg.contains(INJECTED_CRASH_MARKER) {
                disarm(&mut pending_faults, *rank, msg);
            }
        }
        if !drain_reasons.is_empty() {
            let n = placement_moves(&placement, &drained).len();
            pending_target = Some((drained, drain_reasons.join(", "), n));
        }
        // else: keep any pending skew migration — the crash was
        // transient and the retry installs the same table.
        if recoveries_left == 0 {
            let detail: Vec<String> = failed
                .iter()
                .map(|(rank, msg)| format!("rank {rank}: {msg}"))
                .collect();
            return Err(format!(
                "elastic driver gave up after {} recoveries; last failures: {}",
                el.max_recoveries,
                detail.join("; ")
            ));
        }
        recoveries_left -= 1;
        report.recoveries += 1;
        report.replayed_iterations += end - start;
        janus_obs::global().count("janus_migration_aborts_total", u64::from(migrating));
    }

    report.degraded = placement.live_count() < world;
    report.final_placement_digest = placement.digest();
    let totals = comm_totals
        .iter()
        .fold(CommSnapshot::default(), |mut t, c| {
            t.accumulate(c);
            t
        });
    report.migrations = totals.migrations;
    report.migration_bytes = totals.migration_bytes;
    report.dead_ranks.sort_unstable();
    let results = last_round
        .into_iter()
        .zip(losses)
        .zip(comm_totals)
        .map(|((round, l), comm)| {
            let (output, experts) = round.unwrap_or((Matrix::zeros(0, 0), Vec::new()));
            (l, output, experts, comm)
        })
        .collect();
    Ok(ElasticOutcome {
        plan,
        run: collect(results),
        report,
        cuts,
    })
}

/// Restart training from a committed post-migration cut on a fresh,
/// fault-free mesh and run it to `iters`. The chaos tests assert this
/// reference continuation is bitwise identical to the elastic run past
/// the cut: a run *started from* the migrated placement and a run
/// *migrated onto* it are the same computation.
pub fn resume_from_cut(
    cfg: &ExecConfig,
    opts: &PlanOpts,
    skew: Option<&GateSkew>,
    cut: &MigratedCut,
    iters: u64,
) -> TrainRun {
    let plan = cfg.compile_plan(opts);
    let shared = MachineShared::for_cluster_placed(cfg, &cut.placement);
    let results = run_on(local_mesh(cfg.world()), |comm| {
        let rank = comm.rank();
        if !cut.placement.is_live(rank) {
            return (
                Vec::new(),
                Matrix::zeros(0, 0),
                Vec::new(),
                CommSnapshot::default(),
            );
        }
        let mut state = WorkerState::init_placed(cfg, rank, cut.placement.clone());
        if let Some(s) = skew {
            apply_gate_skew(&mut state, s);
        }
        let bytes = cut.ckpts[rank].as_ref().expect("live ranks have cut bytes");
        let ckpt = Checkpoint::from_bytes(bytes)
            .unwrap_or_else(|e| panic!("rank {rank} reading cut {}: {e}", cut.at_iter));
        ckpt.restore(&mut state)
            .unwrap_or_else(|e| panic!("rank {rank} restoring cut {}: {e}", cut.at_iter));
        let sh = &shared[cfg.machine_of(rank)];
        let mut losses = Vec::new();
        let mut output = None;
        for i in cut.at_iter..iters {
            let out = unified::run_iteration(&comm, &mut state, sh, &plan, i)
                .unwrap_or_else(|e| panic!("rank {rank} at iteration {i}: {e}"));
            losses.push(out.loss);
            output = Some(out.output);
        }
        (
            losses,
            output.expect("reference runs are non-empty"),
            state.experts,
            state.comm.snapshot(),
        )
    });
    collect(results)
}

/// One live rank's take from one elastic round (`None`: the rank is
/// dead in the round's target placement and did not participate).
struct ElasticRoundOut {
    losses: Vec<f32>,
    output: Matrix,
    experts: Vec<Vec<ExpertFfn>>,
    comm: CommSnapshot,
    ckpt: Bytes,
    /// Post-migration checkpoint at the round's start iteration,
    /// captured right after the epoch commit barrier (only when this
    /// round installed a new placement).
    migrated_cut: Option<Bytes>,
}

struct RoundSpec<'a> {
    cfg: &'a ExecConfig,
    plan: &'a IterationPlan,
    el: &'a ElasticOpts,
    store: &'a CkptStore,
    faults: &'a FaultPlan,
    digest: u64,
    start: u64,
    end: u64,
    prev: &'a Placement,
    target: &'a Placement,
    orphans: &'a HashMap<(usize, usize), Bytes>,
    deaths: &'a [PermanentDeath],
}

fn run_elastic_round(spec: RoundSpec<'_>) -> Vec<Result<Option<ElasticRoundOut>, String>> {
    let RoundSpec {
        cfg,
        plan,
        el,
        store,
        faults,
        digest,
        start,
        end,
        prev,
        target,
        orphans,
        deaths,
    } = spec;
    let world = cfg.world();
    let mesh: Vec<_> = monitor_mesh(local_mesh(world), el.liveness)
        .into_iter()
        .map(|t| {
            ReliableTransport::with_policy(FaultyTransport::new(t, faults.clone()), el.retransmit)
        })
        .collect();
    let shared = MachineShared::for_cluster_placed(cfg, target);
    run_on_result(mesh, |comm| -> Option<ElasticRoundOut> {
        let rank = comm.rank();
        if !target.is_live(rank) {
            // Permanently dead: contribute nothing. Live peers never
            // address dead ranks, so the early exit is silent.
            return None;
        }
        let mut state = WorkerState::init_placed(cfg, rank, prev.clone());
        if let Some(s) = &el.skew {
            apply_gate_skew(&mut state, s);
        }
        if start > 0 {
            let bytes = store
                .get(rank, start)
                .expect("restore point was committed by the driver");
            let ckpt = Checkpoint::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("rank {rank} restoring cut {start}: {e}"));
            assert_eq!(
                ckpt.plan_digest, digest,
                "rank {rank}: checkpoint belongs to a different plan"
            );
            ckpt.restore(&mut state)
                .unwrap_or_else(|e| panic!("rank {rank} restoring cut {start}: {e}"));
        }
        let my_death = deaths.iter().find(|d| d.rank == rank).copied();
        let migrated_cut = if target != prev {
            let die_mid = my_death.is_some_and(|d| d.during_migration);
            migrate(&comm, &mut state, prev, target, orphans, die_mid, start);
            state.comm.record_epoch_bump();
            janus_obs::global().count("janus_migration_epochs_total", 1);
            Some(Checkpoint::capture(&state, start, digest).to_bytes())
        } else {
            None
        };
        if target.live_count() < world {
            state.comm.set_degraded();
        }
        let my_iter_crashes: Vec<u64> = faults
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .filter_map(|c| match c.at {
                CrashAt::Iteration(i) => Some(i),
                CrashAt::SendOp(_) => None,
            })
            .collect();
        let sh = &shared[cfg.machine_of(rank)];
        let mut losses = Vec::new();
        let mut output = None;
        for i in start..end {
            if my_iter_crashes.contains(&i) {
                janus_obs::global().count("janus_crashes_injected_total", 1);
                panic!("{INJECTED_CRASH_MARKER}: rank {rank} at iteration {i}");
            }
            if my_death.is_some_and(|d| !d.during_migration && d.at_iter == i) {
                janus_obs::global().count("janus_permanent_deaths_total", 1);
                panic!("{INJECTED_CRASH_MARKER}: rank {rank} permanently dead at iteration {i}");
            }
            let out = unified::run_iteration(&comm, &mut state, sh, plan, i)
                .unwrap_or_else(|e| panic!("rank {rank} at iteration {i}: {e}"));
            losses.push(out.loss);
            output = Some(out.output);
        }
        let _ = comm.transport().flush();
        state.comm.record_transport(comm.transport().stats());
        let ckpt = Checkpoint::capture(&state, end, digest).to_bytes();
        Some(ElasticRoundOut {
            losses,
            output: output.expect("rounds are non-empty"),
            experts: state.experts,
            comm: state.comm.snapshot(),
            ckpt,
            migrated_cut,
        })
    })
}

/// The live migration exchange, run by every rank live in `target`:
/// ship departing experts bitwise (checkpoint wire encoding) over the
/// reliable transport, collect arriving ones (from the wire, or from
/// `orphans` when the previous owner is dead), re-shard the local state
/// onto `target`, and commit the epoch through a barrier so no rank can
/// start an iteration under the new table before every rank holds it.
fn migrate<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    prev: &Placement,
    target: &Placement,
    orphans: &HashMap<(usize, usize), Bytes>,
    die_mid: bool,
    iter: u64,
) {
    let rank = comm.rank();
    let moves = placement_moves(prev, target);
    let mut sent = 0u64;
    for mv in moves.iter().filter(|m| m.from == rank) {
        let local = state.local_index(mv.block, mv.expert);
        let blob = expert_to_bytes(&state.experts[mv.block][local]);
        comm.send(
            mv.to,
            Message::Collective {
                seq: mig_seq(mv.block, mv.expert),
                data: blob,
            },
        )
        .unwrap_or_else(|e| panic!("rank {rank} shipping expert {mv:?}: {e}"));
        sent += 1;
        if die_mid {
            janus_obs::global().count("janus_permanent_deaths_total", 1);
            panic!(
                "{INJECTED_CRASH_MARKER}: rank {rank} permanently dead during migration at iteration {iter}"
            );
        }
    }
    if die_mid && sent == 0 {
        janus_obs::global().count("janus_permanent_deaths_total", 1);
        panic!(
            "{INJECTED_CRASH_MARKER}: rank {rank} permanently dead during migration at iteration {iter}"
        );
    }
    let mut blobs: HashMap<(usize, usize), Bytes> = HashMap::new();
    for mv in moves.iter().filter(|m| m.to == rank) {
        let key = (mv.block, mv.expert);
        let data = if target.is_live(mv.from) {
            let seq = mig_seq(mv.block, mv.expert);
            let (_, msg) = comm
                .recv_match(|from, m| {
                    from == mv.from && matches!(m, Message::Collective { seq: s, .. } if *s == seq)
                })
                .unwrap_or_else(|e| panic!("rank {rank} awaiting expert {mv:?}: {e}"));
            match msg {
                Message::Collective { data, .. } => data,
                _ => unreachable!("predicate admits only Collective"),
            }
        } else {
            orphans
                .get(&key)
                .unwrap_or_else(|| panic!("rank {rank}: no orphan blob for {mv:?}"))
                .clone()
        };
        state.comm.record_migration(data.len() as u64);
        janus_obs::global().count("janus_migration_bytes_total", data.len() as u64);
        blobs.insert(key, data);
    }
    state.remap_experts(target.clone(), |b, e| {
        let blob = blobs
            .remove(&(b, e))
            .unwrap_or_else(|| panic!("rank {rank}: gained expert ({b},{e}) without a blob"));
        expert_from_bytes(blob).unwrap_or_else(|e| panic!("rank {rank}: corrupt expert blob: {e}"))
    });
    // The commit barrier: after it, every live rank holds the new table,
    // so the first iteration under the epoch can never race a straggler
    // still executing the old one (a torn placement).
    barrier_among(comm, (1 << 62) | target.epoch, &target.live)
        .unwrap_or_else(|e| panic!("rank {rank} committing epoch {}: {e}", target.epoch));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::trainer::{diff_runs, train_unified};

    fn small() -> ExecConfig {
        ExecConfig {
            tokens: 8,
            ..ExecConfig::small()
        }
    }

    #[test]
    fn fault_free_elastic_run_matches_train_unified_bitwise() {
        let cfg = small();
        let out = train_elastic(
            &cfg,
            &PlanOpts::default(),
            &ElasticOpts::default(),
            3,
            FaultPlan::default(),
        )
        .unwrap();
        let baseline = train_unified(&cfg, 3);
        let diff = diff_runs(&out.run, &baseline);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
        assert!(out.report.epochs.is_empty());
        assert!(!out.report.degraded);
        assert_eq!(out.report.migrations, 0);
    }

    #[test]
    fn permanent_death_drains_and_completes_degraded() {
        let cfg = small();
        let el = ElasticOpts {
            ckpt_every: 2,
            deaths: vec![PermanentDeath {
                rank: 3,
                at_iter: 2,
                during_migration: false,
            }],
            ..ElasticOpts::default()
        };
        let out = train_elastic(&cfg, &PlanOpts::default(), &el, 4, FaultPlan::default()).unwrap();
        assert!(out.report.degraded);
        assert_eq!(out.report.dead_ranks, vec![3]);
        assert_eq!(out.report.epochs.len(), 1, "{:?}", out.report.epochs);
        assert_eq!(out.report.epochs[0].at_iter, 2);
        assert!(out.report.epochs[0].reason.contains("drain rank 3"));
        assert!(out.report.migrations > 0, "{:?}", out.report);
        assert!(out.report.migration_bytes > 0);
        // The dead rank's loss history stops at the committed cut; the
        // survivors trained to the end.
        assert_eq!(out.run.losses[3].len(), 2);
        for r in 0..3 {
            assert_eq!(out.run.losses[r].len(), 4, "rank {r}");
        }
        // Orphans landed on survivors: every expert live-owned.
        assert_eq!(out.cuts.len(), 1);
        out.cuts[0].placement.assert_valid();
        assert!(!out.cuts[0].placement.is_live(3));
        let totals = out.run.comm_totals();
        assert_eq!(totals.degraded, 1);
        assert!(totals.epoch_bumps > 0);
    }

    #[test]
    fn degraded_run_is_bitwise_identical_to_resume_from_the_migrated_cut() {
        let cfg = small();
        let el = ElasticOpts {
            ckpt_every: 2,
            deaths: vec![PermanentDeath {
                rank: 1,
                at_iter: 3,
                during_migration: false,
            }],
            ..ElasticOpts::default()
        };
        let out = train_elastic(&cfg, &PlanOpts::default(), &el, 6, FaultPlan::default()).unwrap();
        assert!(out.report.degraded);
        let cut = &out.cuts[0];
        let reference = resume_from_cut(&cfg, &PlanOpts::default(), None, cut, 6);
        for rank in 0..cfg.world() {
            if !cut.placement.is_live(rank) {
                continue;
            }
            let since_cut = &out.run.losses[rank][cut.at_iter as usize..];
            assert_eq!(
                since_cut,
                &reference.losses[rank][..],
                "rank {rank} losses diverged from the reference continuation"
            );
            assert_eq!(
                out.run.outputs[rank].data(),
                reference.outputs[rank].data(),
                "rank {rank} final output not bitwise identical"
            );
            for (a, b) in out.run.experts[rank].iter().zip(&reference.experts[rank]) {
                for (ea, eb) in a.iter().zip(b) {
                    assert_eq!(ea.w1.data(), eb.w1.data(), "rank {rank} weights diverged");
                    assert_eq!(ea.w2.data(), eb.w2.data(), "rank {rank} weights diverged");
                }
            }
        }
    }

    #[test]
    fn gate_skew_triggers_a_rebalance_that_commits_bitwise() {
        let cfg = small();
        let skew = GateSkew {
            block: 0,
            expert: 0,
            boost: 8.0,
        };
        let loads = expert_loads(&cfg, Some(&skew));
        let balanced = WorkerState::balanced_placement(&cfg);
        let ratio = skew_ratio(&balanced, &loads);
        assert!(
            ratio > 1.2,
            "the bias must actually skew the probe: {ratio}"
        );
        let el = ElasticOpts {
            ckpt_every: 2,
            skew_ratio: 1.2,
            skew: Some(skew),
            ..ElasticOpts::default()
        };
        let out = train_elastic(&cfg, &PlanOpts::default(), &el, 4, FaultPlan::default()).unwrap();
        assert!(!out.report.degraded);
        assert!(!out.report.epochs.is_empty(), "skew never triggered");
        assert!(out.report.epochs[0].reason.contains("skew rebalance"));
        assert!(out.report.migrations > 0);
        // The rebalance spreads the probe load strictly better.
        let after = &out.cuts[0].placement;
        assert!(skew_ratio(after, &loads) < ratio, "rebalance did not help");
        // And the migrated run continues bitwise from its own cut.
        let cut = &out.cuts[0];
        let reference = resume_from_cut(&cfg, &PlanOpts::default(), Some(&skew), cut, 4);
        for rank in 0..cfg.world() {
            let since_cut = &out.run.losses[rank][cut.at_iter as usize..];
            assert_eq!(since_cut, &reference.losses[rank][..], "rank {rank}");
            assert_eq!(
                out.run.outputs[rank].data(),
                reference.outputs[rank].data(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn death_during_migration_aborts_cleanly_and_retries() {
        let cfg = small();
        let skew = GateSkew {
            block: 0,
            expert: 0,
            boost: 8.0,
        };
        // Rank 0 owns the skew-shedding experts of block 0 under the
        // balanced table, so it has blobs to ship — and dies mid-ship.
        let el = ElasticOpts {
            ckpt_every: 2,
            skew_ratio: 1.2,
            skew: Some(skew),
            deaths: vec![PermanentDeath {
                rank: 0,
                at_iter: 0,
                during_migration: true,
            }],
            ..ElasticOpts::default()
        };
        let out = train_elastic(&cfg, &PlanOpts::default(), &el, 4, FaultPlan::default()).unwrap();
        assert!(out.report.aborted_migrations >= 1, "{:?}", out.report);
        assert!(out.report.degraded);
        assert_eq!(out.report.dead_ranks, vec![0]);
        // The torn attempt was never installed: every committed epoch is
        // valid and the final placement excludes the corpse.
        for cut in &out.cuts {
            cut.placement.assert_valid();
        }
        let last = out.cuts.last().unwrap();
        assert!(!last.placement.is_live(0));
        // Survivors trained every iteration.
        for r in 1..cfg.world() {
            assert_eq!(out.run.losses[r].len(), 4, "rank {r}");
        }
    }

    #[test]
    fn placement_moves_lists_exactly_the_owner_changes() {
        let p = Placement::balanced(&[8], 4);
        let d = p.drain(2);
        let moves = placement_moves(&p, &d);
        assert_eq!(moves.len(), 2);
        assert!(moves.iter().all(|m| m.from == 2));
        assert!(moves.iter().all(|m| d.owner_of(m.block, m.expert) == m.to));
        assert!(placement_moves(&p, &p).is_empty());
    }
}
