//! Observability integration tests: golden Chrome-trace exports, a
//! fake-clock instrumented training run, and the bitwise-equivalence
//! guarantee that recording never perturbs numerics.
//!
//! Every test touching the process-global recorder serializes on [`LOCK`]
//! (the recorder is shared across this binary's test threads).

use janus::core::exec::model::ExecConfig;
use janus::core::exec::trainer::{diff_runs, train_data_centric, train_unified};
use janus::netsim::graph::TaskId;
use janus::netsim::trace::{SimResult, TaskRecord};
use janus::obs::{chrome_trace, validate_chrome_trace, FakeClock, Recorder, SpanMeta};
use janus::tensor::pool;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Compare `got` against the checked-in golden file, or rewrite it when
/// `UPDATE_GOLDEN=1` (then re-run without the variable).
fn assert_golden(got: &str, name: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(got, want, "golden mismatch for {name}");
}

fn sim_record(label: &str, kind: &'static str, start: f64, finish: f64) -> TaskRecord {
    TaskRecord {
        id: TaskId(0),
        label: label.into(),
        kind,
        ready: start,
        start,
        finish,
    }
}

/// The `SimResult` → trace-event converter and the shared exporter are
/// pinned byte for byte: transfers map to cat `comm`, the label's leading
/// component becomes the track, unlabeled records are skipped, and events
/// sort deterministically.
#[test]
fn sim_chrome_trace_matches_golden() {
    let result = SimResult {
        makespan: 2.5,
        records: vec![
            sim_record("w0/b0/fwd", "compute", 0.0, 1.0),
            sim_record("a2a/b0/w0-w1", "transfer", 0.5, 1.5),
            sim_record("w1/b0/fwd", "compute", 0.25, 1.25),
            sim_record("", "noop", 0.0, 0.0),
            sim_record("w0/b1/fwd", "compute", 1.5, 2.5),
        ],
        link_bytes: vec![1024.0],
        link_busy: vec![1.0],
        mem_peak: vec![],
        mem_final: vec![],
    };
    let json = result.to_chrome_trace();
    assert_eq!(validate_chrome_trace(&json).expect("schema"), 4);
    assert_golden(&json, "sim_trace.json");
}

/// A two-rank span sequence recorded against a fake clock exports
/// deterministically: same spans, same ticks, byte-identical JSON.
#[test]
fn fake_clock_recorder_trace_matches_golden() {
    let rec = Recorder::new();
    rec.enable_with_clock(Arc::new(FakeClock::ticking(100)));
    for rank in 0..2u32 {
        let span = rec
            .span(|| SpanMeta::new(format!("pull/b0/e{rank}"), "comm", rank, "b0"))
            .expect("recording enabled");
        span.end();
        let span = rec
            .span(|| SpanMeta::new("fwd/b0/e0", "compute", rank, "b0"))
            .expect("recording enabled");
        span.end();
        rec.instant(|| SpanMeta::new("retransmit/to1/s3", "transport", rank, "comm"));
    }
    let json = chrome_trace(&rec.drain_events());
    assert_eq!(validate_chrome_trace(&json).expect("schema"), 6);
    assert_golden(&json, "fake_clock_trace.json");
}

/// An instrumented two-rank training run under a fake clock produces a
/// schema-valid trace whose spans cover every layer: iteration, pulls,
/// compute, barriers at the engine level, sends at the transport level.
#[test]
fn two_rank_training_run_traces_all_layers() {
    let _guard = lock();
    let rec = janus::obs::global();
    rec.enable_with_clock(Arc::new(FakeClock::ticking(1)));
    let cfg = ExecConfig {
        machines: 1,
        gpus_per_machine: 2,
        ..ExecConfig::small()
    };
    let run = train_data_centric(&cfg, 1);
    rec.disable();

    assert!(!run.trace.is_empty());
    let json = run.chrome_trace();
    validate_chrome_trace(&json).expect("schema-valid trace");
    for needle in ["iter/0", "pull/b0/", "fwd/b0/", "barrier/", "send/to"] {
        assert!(
            run.trace.iter().any(|e| e.name.starts_with(needle)),
            "no span named {needle}* in the trace"
        );
    }
    assert!(run.trace.iter().all(|e| e.pid < cfg.world() as u32));
    for rank in 0..cfg.world() {
        assert!(!run.trace_for_rank(rank).is_empty(), "rank {rank} silent");
    }
    let report = run.overlap_report();
    assert_eq!(report.ranks.len(), cfg.world());
    assert!(report.pull_samples > 0, "pull latencies must be sampled");
}

/// The core guarantee: with recording enabled, training output is bitwise
/// identical to a recording-disabled run — at one worker thread and four.
#[test]
fn recording_on_off_is_bitwise_identical_across_thread_counts() {
    let _guard = lock();
    let cfg = ExecConfig::mixed_paradigms();
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        assert!(!janus::obs::global().enabled());
        let off = train_unified(&cfg, 2);
        assert!(off.trace.is_empty(), "disabled run must record nothing");

        janus::obs::global().enable();
        let on = train_unified(&cfg, 2);
        janus::obs::global().disable();
        assert!(!on.trace.is_empty(), "enabled run must record spans");

        let d = diff_runs(&off, &on);
        assert_eq!(d.max_output_diff, 0.0, "threads={threads}: {d:?}");
        assert_eq!(d.max_weight_diff, 0.0, "threads={threads}: {d:?}");
        assert_eq!(d.max_loss_diff, 0.0, "threads={threads}: {d:?}");
    }
    pool::set_threads(0);
}

/// Disabled recording leaves no trace state behind: the global recorder
/// holds zero events after an uninstrumented training run.
#[test]
fn disabled_recording_stores_no_events() {
    let _guard = lock();
    let rec = janus::obs::global();
    assert!(!rec.enabled());
    let before = rec.event_count();
    let cfg = ExecConfig::small();
    let run = train_unified(&cfg, 1);
    assert!(run.trace.is_empty());
    assert_eq!(rec.event_count(), before);
}
