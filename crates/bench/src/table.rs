//! Plain-text table rendering for experiment output.

/// Render a table with a header row; columns auto-size to the widest
/// cell. Numeric-looking cells are right-aligned.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep = |c: char| -> String {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&c.to_string().repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            if looks_numeric(cell) {
                s.push_str(&format!(" {cell:>w$} |", w = w));
            } else {
                s.push_str(&format!(" {cell:<w$} |", w = w));
            }
        }
        s.push('\n');
        s
    };
    let mut out = sep('-');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep('='));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&sep('-'));
    out
}

fn looks_numeric(cell: &str) -> bool {
    let c = cell.trim_end_matches(['×', '%', 's']).trim();
    !c.is_empty()
        && c.chars()
            .all(|ch| ch.is_ascii_digit() || ".-+e".contains(ch))
}

/// Format seconds as milliseconds with 1 decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

/// Format a speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}×")
}

/// Format bytes as GiB.
pub fn gib(bytes: f64) -> String {
    format!("{:.2}", bytes / (1024.0 * 1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            &["model", "time"],
            &[
                vec!["MoE-BERT".into(), "12.5".into()],
                vec!["MoE-GPT".into(), "3.1".into()],
            ],
        );
        assert!(out.contains("MoE-BERT"));
        assert!(out.contains("| model"));
        // Numeric column right-aligned.
        assert!(out.contains(" 12.5 |"));
        assert!(out.contains("  3.1 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.2104), "210.4");
        assert_eq!(speedup(2.061), "2.06×");
        assert_eq!(gib(1.69 * 1024.0 * 1024.0 * 1024.0), "1.69");
    }
}
