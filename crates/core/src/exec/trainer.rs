//! Multi-iteration training drivers and the paradigm-equivalence harness.
//!
//! The paper's correctness claim (§3.2): "the computation result in
//! expert-centric paradigm is strictly equivalent to the results in
//! data-centric paradigm … data-centric paradigm does not affect the
//! convergence of training and model accuracy." [`compare_paradigms`]
//! runs the same model, same tokens, same seeds through both numerical
//! engines and reports the differences — which tests assert to be
//! exactly zero: both engines compute per-source-worker gradients and
//! fold them in the same order, so the equivalence is bitwise, not
//! merely statistical. [`train_unified`] drives the per-block
//! mixed-paradigm engine off a compiled [`IterationPlan`] and is held to
//! the same bitwise standard against both pure engines.

use crate::ckpt::{Checkpoint, CheckpointPolicy, CkptStore};
use crate::exec::data_centric::{self, MachineShared};
use crate::exec::expert_centric;
use crate::exec::model::{CommSnapshot, ExecConfig, WorkerState};
use crate::exec::unified;
use crate::plan::{IterationPlan, PlanOpts};
use janus_comm::runtime::{run_on, run_workers};
use janus_comm::Transport;
use janus_moe::expert::ExpertFfn;
use janus_obs::{OverlapReport, TraceEvent};
use janus_tensor::Matrix;

/// Result of one multi-iteration training run.
pub struct TrainRun {
    /// Per-worker loss history.
    pub losses: Vec<Vec<f32>>,
    /// Per-worker final outputs.
    pub outputs: Vec<Matrix>,
    /// Per-worker final expert weights (`[rank][block][local]`).
    pub experts: Vec<Vec<Vec<ExpertFfn>>>,
    /// Per-worker communication reliability counters (all zero on a
    /// fault-free plain-transport run).
    pub comm: Vec<CommSnapshot>,
    /// Span events drained from the global recorder, empty unless
    /// recording was enabled (`janus_obs::global().enable*()`) before the
    /// run. Events carry the worker rank as `pid`.
    pub trace: Vec<TraceEvent>,
}

impl TrainRun {
    /// Sum of every worker's communication counters — the cluster-wide
    /// totals the `repro` tables print.
    pub fn comm_totals(&self) -> CommSnapshot {
        let mut total = CommSnapshot::default();
        for snap in &self.comm {
            total.accumulate(snap);
        }
        total
    }

    /// Compute/communication overlap, per-link utilization, and pull
    /// latency percentiles derived from the run's trace. Empty (all
    /// zeros) unless recording was enabled for the run.
    pub fn overlap_report(&self) -> OverlapReport {
        OverlapReport::from_events(&self.trace)
    }

    /// The run's trace as Chrome trace-event JSON (load in Perfetto or
    /// `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        janus_obs::chrome_trace(&self.trace)
    }

    /// The slice of the run's trace belonging to worker `rank`.
    pub fn trace_for_rank(&self, rank: usize) -> Vec<TraceEvent> {
        self.trace
            .iter()
            .filter(|e| e.pid == rank as u32)
            .cloned()
            .collect()
    }
}

/// Train `iters` iterations with the expert-centric engine over an
/// in-process mesh.
pub fn train_expert_centric(cfg: &ExecConfig, iters: u64) -> TrainRun {
    let results = run_workers(cfg.world(), |comm| {
        let mut state = WorkerState::init(cfg, comm.rank());
        let mut losses = Vec::new();
        let mut output = None;
        for i in 0..iters {
            let out = expert_centric::run_iteration(&comm, &mut state, i)
                .expect("expert-centric iteration");
            losses.push(out.loss);
            output = Some(out.output);
        }
        (
            losses,
            output.expect("at least one iteration"),
            state.experts,
            state.comm.snapshot(),
        )
    });
    collect(results)
}

/// Train `iters` iterations with the data-centric engine over an
/// in-process mesh.
pub fn train_data_centric(cfg: &ExecConfig, iters: u64) -> TrainRun {
    let shared = MachineShared::for_cluster(cfg);
    let results = run_workers(cfg.world(), |comm| {
        let mut state = WorkerState::init(cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        let mut losses = Vec::new();
        let mut output = None;
        for i in 0..iters {
            let out = data_centric::run_iteration(&comm, &mut state, sh, i)
                .expect("data-centric iteration");
            losses.push(out.loss);
            output = Some(out.output);
        }
        (
            losses,
            output.expect("at least one iteration"),
            state.experts,
            state.comm.snapshot(),
        )
    });
    collect(results)
}

/// Train `iters` iterations with the unified engine over an in-process
/// mesh, following the default-compiled [`IterationPlan`] (the R-rule
/// picks each block's paradigm).
pub fn train_unified(cfg: &ExecConfig, iters: u64) -> TrainRun {
    train_unified_with(cfg, &PlanOpts::default(), iters).1
}

/// [`train_unified`] with explicit plan options; also returns the
/// compiled plan so callers can inspect paradigms or the digest.
pub fn train_unified_with(
    cfg: &ExecConfig,
    opts: &PlanOpts,
    iters: u64,
) -> (IterationPlan, TrainRun) {
    train_unified_checkpointed(cfg, opts, iters, CheckpointPolicy::Never, &CkptStore::new())
}

/// [`train_unified_with`] plus periodic checkpointing: after every
/// iteration the `policy` selects, each rank encodes a [`Checkpoint`]
/// (iteration counter, plan digest, RNG cursor, expert shard) and
/// commits it to `store` keyed by `(rank, completed iterations)`.
/// Checkpointing never perturbs the trajectory — it only reads state at
/// iteration boundaries — so a checkpointed run stays bitwise identical
/// to an unpoliced one.
pub fn train_unified_checkpointed(
    cfg: &ExecConfig,
    opts: &PlanOpts,
    iters: u64,
    policy: CheckpointPolicy,
    store: &CkptStore,
) -> (IterationPlan, TrainRun) {
    let plan = cfg.compile_plan(opts);
    let digest = plan.digest();
    let shared = MachineShared::for_cluster(cfg);
    let results = run_workers(cfg.world(), |comm| {
        let mut state = WorkerState::init(cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        let mut losses = Vec::new();
        let mut output = None;
        for i in 0..iters {
            let out =
                unified::run_iteration(&comm, &mut state, sh, &plan, i).expect("unified iteration");
            losses.push(out.loss);
            output = Some(out.output);
            if policy.should_save(i + 1) {
                let bytes = Checkpoint::capture(&state, i + 1, digest).to_bytes();
                store.put(state.rank, i + 1, bytes);
            }
        }
        (
            losses,
            output.expect("at least one iteration"),
            state.experts,
            state.comm.snapshot(),
        )
    });
    (plan, collect(results))
}

/// [`train_unified`] over caller-supplied transport endpoints (one per
/// rank), e.g. a `ReliableTransport<FaultyTransport<LocalTransport>>`
/// stack from a chaos test. Endpoints are flushed before teardown so
/// in-flight reliability traffic (retransmits awaiting their final acks)
/// is not lost with the mesh; the plan is compiled with default options.
pub fn train_unified_on<T: Transport + 'static>(
    endpoints: Vec<T>,
    cfg: &ExecConfig,
    iters: u64,
) -> TrainRun {
    assert_eq!(endpoints.len(), cfg.world(), "one endpoint per rank");
    let plan = cfg.compile_plan(&PlanOpts::default());
    let shared = MachineShared::for_cluster(cfg);
    let results = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        let mut losses = Vec::new();
        let mut output = None;
        for i in 0..iters {
            let out =
                unified::run_iteration(&comm, &mut state, sh, &plan, i).expect("unified iteration");
            losses.push(out.loss);
            output = Some(out.output);
        }
        comm.transport().flush().expect("flushing the transport");
        state.comm.record_transport(comm.transport().stats());
        (
            losses,
            output.expect("at least one iteration"),
            state.experts,
            state.comm.snapshot(),
        )
    });
    collect(results)
}

pub(crate) type WorkerResult = (Vec<f32>, Matrix, Vec<Vec<ExpertFfn>>, CommSnapshot);

pub(crate) fn collect(results: Vec<WorkerResult>) -> TrainRun {
    let mut run = TrainRun {
        losses: Vec::new(),
        outputs: Vec::new(),
        experts: Vec::new(),
        comm: Vec::new(),
        trace: Vec::new(),
    };
    for (losses, output, experts, comm) in results {
        run.losses.push(losses);
        run.outputs.push(output);
        run.experts.push(experts);
        run.comm.push(comm);
    }
    // Claim whatever the run recorded (nothing unless the caller enabled
    // recording). Drained here so back-to-back runs don't bleed spans
    // into each other's traces.
    if janus_obs::global().enabled() {
        run.trace = janus_obs::global().drain_events();
    }
    run
}

/// Divergence between the two paradigms after identical training runs.
#[derive(Debug, Clone)]
pub struct ParadigmDiff {
    /// Largest |Δ| across all workers' final outputs.
    pub max_output_diff: f32,
    /// Largest |Δ| across all final expert weights.
    pub max_weight_diff: f32,
    /// Largest |Δ| across the loss histories.
    pub max_loss_diff: f32,
}

/// Run both pure engines on identical inputs and measure their
/// divergence.
pub fn compare_paradigms(cfg: &ExecConfig, iters: u64) -> ParadigmDiff {
    let ec = train_expert_centric(cfg, iters);
    let dc = train_data_centric(cfg, iters);
    diff_runs(&ec, &dc)
}

/// Largest divergence between two training runs across outputs, weights,
/// and loss histories.
pub fn diff_runs(a: &TrainRun, b: &TrainRun) -> ParadigmDiff {
    let mut max_output_diff = 0.0f32;
    let mut max_weight_diff = 0.0f32;
    let mut max_loss_diff = 0.0f32;
    for (oa, ob) in a.outputs.iter().zip(&b.outputs) {
        max_output_diff = max_output_diff.max(oa.max_abs_diff(ob));
    }
    for (wa, wb) in a.experts.iter().zip(&b.experts) {
        for (ba, bb) in wa.iter().zip(wb) {
            for (ea, eb) in ba.iter().zip(bb) {
                max_weight_diff = max_weight_diff
                    .max(ea.w1.max_abs_diff(&eb.w1))
                    .max(ea.w2.max_abs_diff(&eb.w2));
            }
        }
    }
    for (la, lb) in a.losses.iter().zip(&b.losses) {
        for (x, y) in la.iter().zip(lb) {
            max_loss_diff = max_loss_diff.max((x - y).abs());
        }
    }
    ParadigmDiff {
        max_output_diff,
        max_weight_diff,
        max_loss_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Within one iteration (before any weight update) the two paradigms
    /// produce bitwise-identical forward outputs: every token's expert
    /// computation and combine happen in the same order on the same bits.
    #[test]
    fn single_iteration_outputs_are_bitwise_identical() {
        let cfg = ExecConfig::small();
        let diff = compare_paradigms(&cfg, 1);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }

    /// The headline equivalence result over multiple updates: both
    /// engines compute per-source-worker gradients and fold them in the
    /// same pre-reduction order, so trained weights — and therefore all
    /// subsequent outputs and losses — are bitwise identical.
    #[test]
    fn paradigms_are_bitwise_equivalent_over_updates() {
        let cfg = ExecConfig::small();
        let diff = compare_paradigms(&cfg, 3);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_loss_diff, 0.0, "{diff:?}");
    }

    #[test]
    fn equivalence_holds_for_top1_gate() {
        let cfg = ExecConfig {
            top_k: 1,
            ..ExecConfig::small()
        };
        let diff = compare_paradigms(&cfg, 2);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
    }

    #[test]
    fn equivalence_holds_for_multi_expert_shards() {
        // 16 experts over 4 workers → 4 experts per worker.
        let cfg = ExecConfig {
            experts: 16,
            ..ExecConfig::small()
        };
        let diff = compare_paradigms(&cfg, 2);
        assert_eq!(diff.max_output_diff, 0.0, "{diff:?}");
        assert_eq!(diff.max_weight_diff, 0.0, "{diff:?}");
    }

    /// The acceptance bar for the unified engine: on a config whose
    /// compiled plan mixes paradigms across blocks, `train_unified`
    /// produces bitwise the outputs, losses, and final weights of both
    /// pure engines on identical inputs.
    #[test]
    fn unified_matches_both_pure_engines_bitwise_on_mixed_plan() {
        let cfg = ExecConfig::mixed_paradigms();
        let (plan, un) = train_unified_with(&cfg, &PlanOpts::default(), 2);
        let paradigms = plan.paradigms();
        assert!(
            paradigms.contains(&crate::paradigm::Paradigm::ExpertCentric)
                && paradigms.contains(&crate::paradigm::Paradigm::DataCentric),
            "plan must mix paradigms, got {paradigms:?}"
        );
        let ec = train_expert_centric(&cfg, 2);
        let dc = train_data_centric(&cfg, 2);
        for (name, pure) in [("expert-centric", &ec), ("data-centric", &dc)] {
            let diff = diff_runs(&un, pure);
            assert_eq!(diff.max_output_diff, 0.0, "vs {name}: {diff:?}");
            assert_eq!(diff.max_weight_diff, 0.0, "vs {name}: {diff:?}");
            assert_eq!(diff.max_loss_diff, 0.0, "vs {name}: {diff:?}");
        }
    }

    #[test]
    fn all_engines_converge() {
        let cfg = ExecConfig::small();
        let ec = train_expert_centric(&cfg, 5);
        let dc = train_data_centric(&cfg, 5);
        let un = train_unified(&cfg, 5);
        for run in [&ec, &dc, &un] {
            for losses in &run.losses {
                assert!(
                    losses.last().unwrap() < losses.first().unwrap(),
                    "{losses:?}"
                );
            }
        }
    }
}
