//! The lab task registry: every `repro` subcommand as a declarative
//! [`TaskSpec`] node in the experiment DAG.
//!
//! `repro lab` executes this graph (independent nodes in parallel),
//! emitting `artifacts/<task>/manifest.json` + `diagnostics.json` next
//! to each node's output files. The legacy `repro <name>` verbs are thin
//! aliases that run the matching node serially. Node conventions:
//!
//! - Pure-simulator tasks (tables, figures, plan, ablations) are fully
//!   deterministic: their artifacts verify bitwise.
//! - Chaos tasks (`faults`, `crash`) mask their wall-clock-dependent
//!   JSON fields (retransmit counters, recovery latencies) so the
//!   determinism claims — zero loss/weight divergence, plan digests,
//!   checkpoint ledgers — still verify bitwise.
//! - Timing tasks (`compute`, `transport`, `benchgate`) and the span
//!   recorder task (`trace`) run [`exclusive`](TaskSpec::exclusive):
//!   they mutate process globals (pool width, forced SIMD, the global
//!   recorder) or need a quiet machine. Their wall-clock artifacts are
//!   volatile; `trace`'s simulator-derived timelines still verify.

use crate::experiments::*;
use janus_lab::{Dag, OutFile, TaskReport, TaskSpec};
use serde::Serialize;
use serde_json::Value;

/// Pretty-rendered JSON bytes with a trailing newline.
fn json_bytes<T: Serialize>(v: &T) -> Vec<u8> {
    let mut s = serde_json::to_string_pretty(v).expect("experiment rows serialize");
    s.push('\n');
    s.into_bytes()
}

/// A JSON object literal from key/value pairs.
fn obj(fields: &[(&str, Value)]) -> Value {
    Value::Obj(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

fn sval(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

fn nval(n: f64) -> Value {
    Value::Num(n)
}

/// A deterministic simulator task: run, print its table under the
/// stdout lock, and emit `<name>.json`.
fn sim_task<T: Serialize + 'static>(
    name: &'static str,
    run: impl Fn() -> T + Send + Sync + 'static,
    print: impl Fn(&T) + Send + Sync + 'static,
) -> TaskSpec {
    TaskSpec::new(name, move |_ctx| {
        let rows = run();
        {
            let _g = janus_lab::stdout_lock();
            print(&rows);
        }
        Ok(TaskReport {
            files: vec![OutFile::new(format!("{name}.json"), json_bytes(&rows))],
            config: obj(&[("experiment", sval(name)), ("machines", nval(4.0))]),
            plan_digests: Vec::new(),
        })
    })
}

/// Build the full experiment graph. Construction cannot fail: the
/// registry is static and covered by tests, so a bad edge is a bug.
pub fn registry() -> Dag {
    // plan's artifact carries the per-model IterationPlan digests, so
    // its report surfaces them into the manifest's `plan_digests`.
    let plan_task = TaskSpec::new("plan", |_ctx| {
        let rows = plan::run();
        {
            let _g = janus_lab::stdout_lock();
            plan::print(&rows);
        }
        let mut digests: Vec<String> = rows.iter().map(|r| r.digest.clone()).collect();
        digests.dedup();
        Ok(TaskReport {
            files: vec![OutFile::new("plan.json", json_bytes(&rows))],
            config: obj(&[("experiment", sval("plan")), ("machines", nval(4.0))]),
            plan_digests: digests,
        })
    });

    let mut tasks = vec![
        plan_task,
        sim_task("rmetric", rmetric::run, |rows| rmetric::print(rows)),
        sim_task("table1", table1::run, |rows| table1::print(rows)),
        sim_task("goodput", goodput::run, |rows| goodput::print(rows)),
        sim_task("fig3", fig3::run, |rows| fig3::print(rows)),
        sim_task("fig12", fig12::run, |rows| fig12::print(rows)),
        sim_task("fig13", fig13::run, fig13::print),
        sim_task("fig14", fig14::run, |rows| fig14::print(rows)),
        sim_task("fig15", sensitivity::run_fig15, |rows| {
            sensitivity::print("Figure 15 — batch-size sensitivity (Janus vs Tutel)", rows)
        }),
        sim_task("fig16", sensitivity::run_fig16, |rows| {
            sensitivity::print(
                "Figure 16 — sequence-length sensitivity (OOM = exceeds 80 GB)",
                rows,
            )
        }),
        sim_task("fig17", fig17::run, |rows| fig17::print(rows)),
    ];

    tasks.push(TaskSpec::new("ablations", |_ctx| {
        let credits = ablations::credit_sweep();
        let latency = ablations::latency_sweep();
        let a2a = ablations::a2a_style();
        {
            let _g = janus_lab::stdout_lock();
            ablations::print(&credits, &latency, &a2a);
        }
        Ok(TaskReport {
            files: vec![
                OutFile::new("ablation_credits.json", json_bytes(&credits)),
                OutFile::new("ablation_latency.json", json_bytes(&latency)),
                OutFile::new("ablation_a2a.json", json_bytes(&a2a)),
            ],
            config: obj(&[("experiment", sval("ablations")), ("machines", nval(4.0))]),
            plan_digests: Vec::new(),
        })
    }));

    // Chaos under the reliability layer. Retransmit/ack/delay counters
    // depend on real timing, so `counters`/`totals` are masked; the
    // divergence bounds and the plan digest still verify bitwise.
    tasks.push(
        TaskSpec::new("faults", |_ctx| {
            let report = faults::run();
            {
                let _g = janus_lab::stdout_lock();
                faults::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::new("faults.json", json_bytes(&report))],
                config: obj(&[
                    ("experiment", sval("faults")),
                    ("seed", nval(report.seed as f64)),
                    ("iters", nval(report.iters as f64)),
                ]),
                plan_digests: vec![report.plan_digest.clone()],
            })
        })
        .tag("ci")
        .mask(&["counters", "totals"]),
    );

    // Elastic migration: skew-triggered re-placement and permanent-death
    // drains, priced in the simulator and trained for real (threads +
    // localhost TCP). Everything is deterministic except the measured
    // TCP wall times, which live under the masked `timing` key. Binds
    // localhost sockets and times a real mesh → exclusive.
    tasks.push(
        TaskSpec::new("migrate", |_ctx| {
            let report = migrate::run();
            {
                let _g = janus_lab::stdout_lock();
                migrate::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::new("migrate_report.json", json_bytes(&report))],
                config: obj(&[
                    ("experiment", sval("migrate")),
                    ("seed", nval(report.seed as f64)),
                    ("iters", nval(report.iters as f64)),
                ]),
                plan_digests: vec![report.plan_digest.clone()],
            })
        })
        .tag("ci")
        .exclusive()
        .mask(migrate::MASKED_KEYS),
    );

    // The serving-plane SLO sweep. The simulated half (latency vs
    // replica budget) is deterministic and verifies bitwise; the real
    // TCP half's measured latencies are wall-clock → masked, while its
    // structural fields (completions, failovers, replica plans) still
    // verify. Enables the global recorder for the request-latency
    // histogram it prints → exclusive.
    tasks.push(
        TaskSpec::new("serve", |_ctx| {
            let report = serve::run();
            {
                let _g = janus_lab::stdout_lock();
                serve::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::new("serve_slo.json", json_bytes(&report.slo))],
                config: obj(&[
                    ("experiment", sval("serve")),
                    ("seed", nval(report.slo.seed as f64)),
                    ("requests", nval(report.slo.requests as f64)),
                    ("zipf", nval(report.slo.zipf)),
                ]),
                plan_digests: Vec::new(),
            })
        })
        .tag("ci")
        .exclusive()
        .mask(janus_serve::report::MASKED_KEYS),
    );

    // Trace analytics: critical-path blame, skew detection, and
    // sim-vs-real drift calibration over one instrumented FakeClock run
    // and the same plan simulated. Mutates the global recorder →
    // exclusive. The blame/drift/skew *structure* (segment keys,
    // deterministic gate-skew flags, sim predictions, the plan digest)
    // verifies bitwise; every tick-derived value is masked.
    tasks.push(
        TaskSpec::new("analyze", |_ctx| {
            let report = analyze::run()?;
            {
                let _g = janus_lab::stdout_lock();
                analyze::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::new("analysis.json", json_bytes(&report))],
                config: obj(&[
                    ("experiment", sval("analyze")),
                    ("preset", sval(report.preset.clone())),
                    ("iters", nval(report.iters as f64)),
                ]),
                plan_digests: vec![report.plan_digest.clone()],
            })
        })
        .tag("ci")
        .exclusive()
        .mask(analyze::MASKED_KEYS),
    );

    // Crash recovery enables the global span recorder → exclusive.
    // Recovery latency percentiles are wall-clock → masked.
    tasks.push(
        TaskSpec::new("crash", |_ctx| {
            let report = crash::run();
            {
                let _g = janus_lab::stdout_lock();
                crash::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::new("crash.json", json_bytes(&report))],
                config: obj(&[
                    ("experiment", sval("crash")),
                    ("seed", nval(report.seed as f64)),
                    ("iters", nval(report.iters as f64)),
                ]),
                plan_digests: vec![report.plan_digest.clone()],
            })
        })
        .tag("ci")
        .exclusive()
        .mask(&["recover_p50_us", "recover_p99_us"]),
    );

    // Instrumented training + trace export. Per-rank traces and the
    // metrics dump carry real timestamps (volatile); the two
    // simulator-derived timelines are deterministic and verify.
    tasks.push(
        TaskSpec::new("trace", |ctx| {
            let dir = ctx.dir.to_str().ok_or("artifact dir is not UTF-8")?;
            let report = trace_run::run_in(dir).map_err(|e| e.to_string())?;
            let timeline = ctx.dir.join("fig13_timeline.json");
            trace_export::write(timeline.to_str().ok_or("artifact dir is not UTF-8")?)
                .map_err(|e| e.to_string())?;
            {
                let _g = janus_lab::stdout_lock();
                trace_run::print(&report);
                println!(
                    "wrote {} (open in chrome://tracing or Perfetto)",
                    timeline.display()
                );
            }
            let mut files = vec![OutFile::on_disk("fig13_timeline.json", false)];
            for (path, _events) in &report.traces {
                let name = std::path::Path::new(path)
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or_else(|| format!("bad trace path {path}"))?;
                // Only the simulator timeline is clock-free.
                files.push(OutFile::on_disk(name, name != "trace_sim.json"));
            }
            files.push(OutFile::on_disk("METRICS.txt", true));
            files.push(OutFile::volatile("trace.json", json_bytes(&report)));
            Ok(TaskReport {
                files,
                config: obj(&[("experiment", sval("trace")), ("iters", nval(2.0))]),
                plan_digests: Vec::new(),
            })
        })
        .tag("ci")
        .exclusive(),
    );

    // Perf suites: wall-clock measurements, exclusive for quiet timing.
    // Artifacts land under artifacts/; the repo-root BENCH_*.json
    // baselines are only rewritten by the legacy `repro bench` verbs.
    tasks.push(
        TaskSpec::new("compute", |_ctx| {
            let report = compute::run();
            {
                let _g = janus_lab::stdout_lock();
                compute::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::volatile("BENCH_compute.json", json_bytes(&report))],
                config: obj(&[("experiment", sval("compute"))]),
                plan_digests: Vec::new(),
            })
        })
        .exclusive(),
    );
    tasks.push(
        TaskSpec::new("transport", |_ctx| {
            let report = transport::run();
            {
                let _g = janus_lab::stdout_lock();
                transport::print(&report);
            }
            Ok(TaskReport {
                files: vec![OutFile::volatile(
                    "BENCH_transport.json",
                    json_bytes(&report),
                )],
                config: obj(&[("experiment", sval("transport"))]),
                plan_digests: Vec::new(),
            })
        })
        .exclusive()
        .non_default(),
    );

    // The CI perf gate: consumes the compute/transport artifacts as the
    // fresh measurements and compares their within-run ratios against
    // the committed baselines. On failure it re-measures once and keeps
    // each metric's best attempt before giving up.
    tasks.push(
        TaskSpec::new("benchgate", |ctx| {
            let fresh_c = std::fs::read_to_string(
                ctx.dir
                    .parent()
                    .expect("task dir has parent")
                    .join("compute/BENCH_compute.json"),
            )
            .map_err(|e| format!("compute artifact missing: {e}"))?;
            let fresh_t = std::fs::read_to_string(
                ctx.dir
                    .parent()
                    .expect("task dir has parent")
                    .join("transport/BENCH_transport.json"),
            )
            .map_err(|e| format!("transport artifact missing: {e}"))?;
            let gates =
                benchgate::retry_if_failed(benchgate::gates_against_baselines(&fresh_c, &fresh_t));
            let passed = {
                let _g = janus_lab::stdout_lock();
                benchgate::print(&gates)
            };
            let report = TaskReport {
                files: vec![OutFile::volatile("gates.json", json_bytes(&gates))],
                config: obj(&[
                    ("experiment", sval("benchgate")),
                    ("tolerance", nval(benchgate::TOLERANCE)),
                ]),
                plan_digests: Vec::new(),
            };
            if passed {
                Ok(report)
            } else {
                Err(format!(
                    "perf gate failed: a gated ratio regressed more than {:.0}% below its \
                     committed baseline (UPDATE_BENCH=1 with `repro bench` refreshes baselines \
                     after an intentional change)",
                    benchgate::TOLERANCE * 100.0
                ))
            }
        })
        .dep("compute")
        .dep("transport")
        .tag("ci")
        .exclusive()
        .non_default(),
    );

    Dag::new(tasks).expect("static registry is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_valid_and_complete() {
        let dag = registry();
        let names: Vec<&str> = dag.tasks().iter().map(|t| t.name.as_str()).collect();
        for expected in [
            "plan",
            "rmetric",
            "table1",
            "goodput",
            "fig3",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablations",
            "faults",
            "migrate",
            "serve",
            "analyze",
            "crash",
            "trace",
            "compute",
            "transport",
            "benchgate",
        ] {
            assert!(names.contains(&expected), "missing task `{expected}`");
        }
    }

    #[test]
    fn ci_selection_is_dep_closed() {
        let dag = registry();
        let sel = dag.select(&["ci/*".to_string()]).unwrap();
        let names: Vec<&str> = sel.iter().map(|&i| dag.tasks()[i].name.as_str()).collect();
        for expected in [
            "faults",
            "migrate",
            "serve",
            "analyze",
            "crash",
            "trace",
            "benchgate",
            "compute",
            "transport",
        ] {
            assert!(names.contains(&expected), "ci/* must pull in `{expected}`");
        }
        assert!(!names.contains(&"fig3"), "ci/* must not select figures");
    }

    #[test]
    fn default_set_excludes_gate_and_transport() {
        let dag = registry();
        let sel = dag.default_set();
        let names: Vec<&str> = sel.iter().map(|&i| dag.tasks()[i].name.as_str()).collect();
        assert!(names.contains(&"fig12"));
        assert!(names.contains(&"compute"));
        assert!(!names.contains(&"benchgate"));
        assert!(!names.contains(&"transport"));
    }
}
