//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given a set of flows, each traversing a list of links, and per-link
//! capacities, compute the max-min fair rate vector: repeatedly find the
//! most contended link (smallest equal share among its unfrozen flows),
//! freeze every unfrozen flow crossing it at that share, subtract the
//! frozen bandwidth, and continue until every flow is frozen.
//!
//! This is the classic water-filling algorithm; it terminates in at most
//! `min(#flows, #links)` rounds and produces the unique max-min fair
//! allocation.

use janus_topology::LinkId;

/// Compute max-min fair rates for `flows` over links with `capacities`.
///
/// Each entry of `flows` is the route (link list) of one flow. A flow with
/// an empty route is unconstrained and gets `f64::INFINITY` — callers
/// treat such transfers as instantaneous (both endpoints in the same
/// memory domain).
///
/// Links that appear multiple times in one route are counted once (a flow
/// cannot consume the same link twice in the fluid model).
pub fn max_min_rates(flows: &[Vec<LinkId>], capacities: &[f64]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![f64::INFINITY; n];
    if n == 0 {
        return rates;
    }

    // Deduplicated routes so repeated links don't double-count.
    let dedup: Vec<Vec<usize>> = flows
        .iter()
        .map(|route| {
            let mut ls: Vec<usize> = route.iter().map(|l| l.index()).collect();
            ls.sort_unstable();
            ls.dedup();
            ls
        })
        .collect();

    let mut remaining = capacities.to_vec();
    let mut flows_on_link = vec![0usize; capacities.len()];
    for ls in &dedup {
        for &l in ls {
            flows_on_link[l] += 1;
        }
    }
    let mut frozen = vec![false; n];
    // Flows with empty routes are frozen at infinity from the start.
    let mut unfrozen = 0usize;
    for (i, ls) in dedup.iter().enumerate() {
        if ls.is_empty() {
            frozen[i] = true;
        } else {
            unfrozen += 1;
        }
    }

    while unfrozen > 0 {
        // Bottleneck link: smallest fair share among links with unfrozen flows.
        let mut best_share = f64::INFINITY;
        let mut best_link = usize::MAX;
        for (l, &cnt) in flows_on_link.iter().enumerate() {
            if cnt > 0 {
                let share = (remaining[l] / cnt as f64).max(0.0);
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX {
            // No contended links left; remaining flows are unconstrained.
            break;
        }
        // Freeze every unfrozen flow crossing the bottleneck.
        for i in 0..n {
            if frozen[i] || !dedup[i].contains(&best_link) {
                continue;
            }
            frozen[i] = true;
            unfrozen -= 1;
            rates[i] = best_share;
            for &l in &dedup[i] {
                remaining[l] = (remaining[l] - best_share).max(0.0);
                flows_on_link[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(ids: &[usize]) -> Vec<LinkId> {
        ids.iter().copied().map(LinkId).collect()
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[links(&[0])], &[10.0]);
        assert_eq!(rates, vec![10.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = max_min_rates(&[links(&[0]), links(&[0]), links(&[0])], &[9.0]);
        assert_eq!(rates, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn bottleneck_releases_bandwidth_elsewhere() {
        // Flow 0: links 0,1. Flow 1: link 0. Flow 2: link 1.
        // Capacities: link0 = 10, link1 = 4.
        // Link 1 is the first bottleneck: flows 0 and 2 get 2 each.
        // Flow 1 then gets the rest of link 0: 10 - 2 = 8.
        let rates = max_min_rates(&[links(&[0, 1]), links(&[0]), links(&[1])], &[10.0, 4.0]);
        assert_eq!(rates, vec![2.0, 8.0, 2.0]);
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let rates = max_min_rates(&[links(&[]), links(&[0])], &[5.0]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], 5.0);
    }

    #[test]
    fn duplicate_links_counted_once() {
        let rates = max_min_rates(&[links(&[0, 0])], &[6.0]);
        assert_eq!(rates, vec![6.0]);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn zero_capacity_link_gives_zero_rate() {
        let rates = max_min_rates(&[links(&[0])], &[0.0]);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    fn classic_water_filling_example() {
        // Three links in a line (cap 1 each); flows: A over all three,
        // B over link 0, C over link 1, D over link 2.
        // A is bottlenecked at 1/2 on every link; B, C, D get 1/2 too.
        let flows = vec![links(&[0, 1, 2]), links(&[0]), links(&[1]), links(&[2])];
        let rates = max_min_rates(&flows, &[1.0, 1.0, 1.0]);
        for r in rates {
            assert!((r - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn allocation_respects_capacities() {
        // Random-ish structured case, verified against link budgets.
        let flows = vec![
            links(&[0, 2]),
            links(&[1, 2]),
            links(&[0, 1]),
            links(&[2]),
            links(&[0]),
        ];
        let caps = [7.0, 5.0, 3.0];
        let rates = max_min_rates(&flows, &caps);
        let mut used = [0.0f64; 3];
        for (f, rate) in flows.iter().zip(&rates) {
            for l in f {
                used[l.index()] += rate;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-9, "link over capacity: {u} > {c}");
        }
    }
}
