//! Task nodes and the validated dependency graph.

use crate::manifest::Manifest;
use janus_core::Fnv64;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// One artifact file a task produced.
#[derive(Debug, Clone)]
pub struct OutFile {
    /// File name inside the task's artifact directory.
    pub name: String,
    /// Content to write, or `None` when the task already wrote the file
    /// into [`TaskCtx::dir`] itself (trace exporters do).
    pub bytes: Option<Vec<u8>>,
    /// Volatile files embed wall-clock measurements: their digest is
    /// recorded in the manifest for provenance but never verified.
    pub volatile: bool,
}

impl OutFile {
    /// A deterministic file with in-memory content.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        OutFile {
            name: name.into(),
            bytes: Some(bytes),
            volatile: false,
        }
    }

    /// A wall-clock-dependent file with in-memory content.
    pub fn volatile(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        OutFile {
            name: name.into(),
            bytes: Some(bytes),
            volatile: true,
        }
    }

    /// A file the task wrote to [`TaskCtx::dir`] itself.
    pub fn on_disk(name: impl Into<String>, volatile: bool) -> Self {
        OutFile {
            name: name.into(),
            bytes: None,
            volatile,
        }
    }
}

/// What a task run hands back to the executor.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Artifact files (the executor writes, hashes, and manifests them).
    pub files: Vec<OutFile>,
    /// The configuration that produced the artifact, as a JSON object;
    /// its canonical digest becomes the manifest's `config_digest`.
    pub config: Value,
    /// `IterationPlan` digests consumed by this artifact (hex), when the
    /// task compiles plans.
    pub plan_digests: Vec<String>,
}

impl Default for TaskReport {
    fn default() -> Self {
        TaskReport {
            files: Vec::new(),
            config: Value::Null,
            plan_digests: Vec::new(),
        }
    }
}

/// Execution context the executor passes to a task's run closure.
pub struct TaskCtx<'a> {
    /// The task's artifact directory (created, emptied of stale files).
    pub dir: PathBuf,
    /// The lab seed (scheduling + anything a task wants to derive).
    pub seed: u64,
    /// Manifests of this task's dependencies, in declaration order.
    pub deps: &'a [(String, Manifest)],
}

/// The run closure: produce artifact files, or a failure message.
pub type TaskFn = Box<dyn Fn(&TaskCtx) -> Result<TaskReport, String> + Send + Sync>;

/// One node of the experiment graph.
pub struct TaskSpec {
    /// Unique name; also the artifact directory name, so it is
    /// restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// Names of tasks whose artifacts this one consumes.
    pub deps: Vec<String>,
    /// Namespace tags: a task named `faults` with tag `ci` is selected
    /// by the glob `ci/*` as `ci/faults`.
    pub tags: Vec<String>,
    /// Resource hint: run alone (no concurrent tasks), for bench nodes
    /// whose timings must stay clean and for tasks that mutate process
    /// globals (forced SIMD, pool width, the global recorder).
    pub exclusive: bool,
    /// Whether the task is part of the default `repro lab` graph.
    pub default_set: bool,
    /// JSON keys nulled out before hashing this task's `.json` artifacts
    /// — the timing-only fields excluded from bitwise verification.
    pub masked_keys: Vec<String>,
    /// The work.
    pub run: TaskFn,
}

impl TaskSpec {
    /// A default-set, non-exclusive task with no dependencies.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(&TaskCtx) -> Result<TaskReport, String> + Send + Sync + 'static,
    ) -> Self {
        TaskSpec {
            name: name.into(),
            deps: Vec::new(),
            tags: Vec::new(),
            exclusive: false,
            default_set: true,
            masked_keys: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Add a dependency edge.
    pub fn dep(mut self, name: impl Into<String>) -> Self {
        self.deps.push(name.into());
        self
    }

    /// Add a namespace tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.push(tag.into());
        self
    }

    /// Mark the task exclusive (runs alone).
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Exclude the task from the default `repro lab` graph.
    pub fn non_default(mut self) -> Self {
        self.default_set = false;
        self
    }

    /// Null these JSON keys before hashing/verifying artifacts.
    pub fn mask(mut self, keys: &[&str]) -> Self {
        self.masked_keys.extend(keys.iter().map(|k| k.to_string()));
        self
    }
}

/// Graph construction / selection errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two tasks share a name.
    DuplicateName(String),
    /// A task name contains characters unsafe for an artifact directory.
    BadName(String),
    /// `task` depends on `dep`, which is not registered.
    MissingDep { task: String, dep: String },
    /// The graph has a cycle through these tasks.
    Cycle(Vec<String>),
    /// A `--only` glob matched no task.
    NoMatch(String),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::DuplicateName(n) => write!(f, "duplicate task name `{n}`"),
            DagError::BadName(n) => write!(
                f,
                "task name `{n}` is not a safe artifact directory name \
                 (use only letters, digits, `.`, `_`, `-`)"
            ),
            DagError::MissingDep { task, dep } => {
                write!(f, "task `{task}` depends on unregistered task `{dep}`")
            }
            DagError::Cycle(names) => {
                write!(f, "dependency cycle through: {}", names.join(" → "))
            }
            DagError::NoMatch(glob) => write!(f, "`--only {glob}` matched no task"),
        }
    }
}

impl std::error::Error for DagError {}

/// The validated experiment graph.
pub struct Dag {
    tasks: Vec<TaskSpec>,
    index: BTreeMap<String, usize>,
}

impl Dag {
    /// Validate and index a task list: names must be unique and
    /// path-safe, every dependency registered, and the edge relation
    /// acyclic.
    pub fn new(tasks: Vec<TaskSpec>) -> Result<Self, DagError> {
        let mut index = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            if t.name.is_empty()
                || !t
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            {
                return Err(DagError::BadName(t.name.clone()));
            }
            if index.insert(t.name.clone(), i).is_some() {
                return Err(DagError::DuplicateName(t.name.clone()));
            }
        }
        for t in &tasks {
            for d in &t.deps {
                if !index.contains_key(d) {
                    return Err(DagError::MissingDep {
                        task: t.name.clone(),
                        dep: d.clone(),
                    });
                }
            }
        }
        let dag = Dag { tasks, index };
        // Kahn's algorithm purely to detect cycles: whatever cannot be
        // scheduled is on (or downstream of) a cycle.
        let order = dag.topo_order(0);
        if order.len() != dag.tasks.len() {
            let scheduled: BTreeSet<usize> = order.into_iter().collect();
            let stuck: Vec<String> = dag
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| !scheduled.contains(i))
                .map(|(_, t)| t.name.clone())
                .collect();
            return Err(DagError::Cycle(stuck));
        }
        Ok(dag)
    }

    /// All tasks, in registration order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Look up a task index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// A topological order of the whole graph, deterministic per `seed`:
    /// among simultaneously-ready tasks the next is the one with the
    /// smallest seeded name hash, so two runs with the same seed
    /// schedule identically while different seeds explore different
    /// (still valid) interleavings. Returns fewer than `tasks.len()`
    /// entries iff the graph has a cycle.
    pub fn topo_order(&self, seed: u64) -> Vec<usize> {
        let key = |i: usize| {
            let mut h = Fnv64::new();
            h.word(seed);
            h.bytes(self.tasks[i].name.as_bytes());
            (h.finish(), i)
        };
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                // Self-edges are cycles; count them but add no dependent,
                // so the node simply never becomes ready.
                if let Some(&j) = self.index.get(d) {
                    if j != i {
                        dependents[j].push(i);
                    }
                }
            }
        }
        let mut ready: BTreeSet<(u64, usize)> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| key(i))
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(&(k, i)) = ready.iter().next() {
            ready.remove(&(k, i));
            order.push(i);
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.insert(key(j));
                }
            }
        }
        order
    }

    /// Resolve `--only` globs to a dependency-closed task set. A glob
    /// matches a task's name, or `tag/name` for each of its tags (so
    /// `ci/*` selects every `ci`-tagged task). Errors if any glob
    /// matches nothing.
    pub fn select(&self, globs: &[String]) -> Result<BTreeSet<usize>, DagError> {
        let mut selected = BTreeSet::new();
        for g in globs {
            let mut hit = false;
            for (i, t) in self.tasks.iter().enumerate() {
                let matches = glob_match(g, &t.name)
                    || t.tags
                        .iter()
                        .any(|tag| glob_match(g, &format!("{tag}/{}", t.name)));
                if matches {
                    selected.insert(i);
                    hit = true;
                }
            }
            if !hit {
                return Err(DagError::NoMatch(g.clone()));
            }
        }
        Ok(self.close_over_deps(selected))
    }

    /// The default graph: every task not marked
    /// [`non_default`](TaskSpec::non_default), closed over dependencies.
    pub fn default_set(&self) -> BTreeSet<usize> {
        let seed: BTreeSet<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.default_set)
            .map(|(i, _)| i)
            .collect();
        self.close_over_deps(seed)
    }

    fn close_over_deps(&self, mut set: BTreeSet<usize>) -> BTreeSet<usize> {
        let mut frontier: Vec<usize> = set.iter().copied().collect();
        while let Some(i) = frontier.pop() {
            for d in &self.tasks[i].deps {
                let j = self.index[d];
                if set.insert(j) {
                    frontier.push(j);
                }
            }
        }
        set
    }
}

/// `*`-wildcard match (no character classes; `*` spans any run of
/// characters including `/`).
pub fn glob_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    // Iterative backtracking matcher.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs_match_names_and_namespaces() {
        assert!(glob_match("fig*", "fig13"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("ci/*", "ci/faults"));
        assert!(glob_match("fig13", "fig13"));
        assert!(!glob_match("fig13", "fig14"));
        assert!(!glob_match("fig*z", "fig13"));
        assert!(glob_match("*a*b*", "xaxxbx"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("*", ""));
    }
}
