//! Matrix products, including the transposed variants used by backward
//! passes.

use crate::matrix::Matrix;

impl Matrix {
    /// `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: streams over rows of `other`, cache friendly.
        for i in 0..m {
            for p in 0..k {
                let a = self[(i, p)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(p);
                let orow = out.row_mut(i);
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose (weight
    /// gradients: `dW = xᵀ · dy`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let arow = self.row(p);
            let brow = other.row(p);
            for i in 0..m {
                let a = arow[i];
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose (input
    /// gradients: `dx = dy · Wᵀ`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            for j in 0..n {
                let brow = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols()];
        for r in 0..self.rows() {
            for (s, v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::uniform(3, 5, 1.0, &mut rng);
        assert_eq!(a.matmul(&Matrix::eye(5)), a);
        assert_eq!(Matrix::eye(3).matmul(&a), a);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(via_tn.max_abs_diff(&explicit) < 1e-5);

        let c = Matrix::uniform(6, 3, 1.0, &mut rng);
        let d = Matrix::uniform(2, 3, 1.0, &mut rng);
        let via_nt = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transpose());
        assert!(via_nt.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn matmul_is_associative_up_to_float_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(3, 4, 0.5, &mut rng);
        let b = Matrix::uniform(4, 2, 0.5, &mut rng);
        let c = Matrix::uniform(2, 5, 0.5, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn col_sums_match_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }
}
