//! Criterion benches, one group per paper artifact.
//!
//! Each group exercises the exact code path that regenerates the paper's
//! table/figure, at reduced scale so the statistical harness stays fast;
//! `cargo run --release -p janus-bench --bin repro` produces the
//! full-scale numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use janus_core::sim::collectives::a2a_goodput;
use janus_core::sim::engine::{simulate_iteration, EngineOpts, ParadigmPolicy};
use janus_moe::config::{pr_moe_transformer_xl, ModelConfig, ModelPreset};
use janus_moe::traffic::table1_row;
use janus_topology::ClusterSpec;
use std::hint::black_box;

/// Scaled-down MoE-GPT: same structure, smaller batch, 8 GPUs on 2
/// machines.
fn small_gpt() -> ModelConfig {
    let mut model = ModelPreset::MoeGpt.config(8);
    model.batch = 32;
    model
}

fn bench_table1(c: &mut Criterion) {
    let model = ModelPreset::MoeBert.config(32);
    c.bench_function("table1_traffic_analytic", |b| {
        b.iter(|| black_box(table1_row(black_box(&model), 4, 8)))
    });
}

fn bench_goodput(c: &mut Criterion) {
    let intra = ClusterSpec::a100(1, 8).build();
    let inter = ClusterSpec::a100(2, 8).build();
    c.bench_function("goodput_intra_node_a2a", |b| {
        b.iter(|| black_box(a2a_goodput(black_box(&intra), 64e6).unwrap()))
    });
    c.bench_function("goodput_inter_node_a2a", |b| {
        b.iter(|| black_box(a2a_goodput(black_box(&inter), 64e6).unwrap()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 4).build();
    let model = small_gpt();
    c.bench_function("fig3_expert_centric_iteration", |b| {
        b.iter(|| {
            black_box(
                simulate_iteration(
                    cluster.clone(),
                    model.clone(),
                    &EngineOpts::janus_expert_centric(),
                )
                .unwrap(),
            )
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 4).build();
    let model = small_gpt();
    let mut group = c.benchmark_group("fig12_ablation");
    for (name, opts) in [
        ("data_centric", EngineOpts::data_centric(false, false)),
        ("plus_topo", EngineOpts::data_centric(true, false)),
        ("plus_prefetch", EngineOpts::data_centric(true, true)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate_iteration(cluster.clone(), model.clone(), &opts).unwrap()))
        });
    }
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 4).build();
    let model = small_gpt();
    let opts = EngineOpts::data_centric(false, true);
    c.bench_function("fig13_prefetch_timeline", |b| {
        b.iter(|| {
            let report = simulate_iteration(cluster.clone(), model.clone(), &opts).unwrap();
            black_box((report.block_finish_w0.len(), report.expert_arrival_w0.len()))
        })
    });
}

fn bench_fig14(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 4).build();
    let model = small_gpt();
    let mut group = c.benchmark_group("fig14_end_to_end");
    group.bench_function("tutel", |b| {
        b.iter(|| {
            black_box(
                simulate_iteration(cluster.clone(), model.clone(), &EngineOpts::tutel()).unwrap(),
            )
        })
    });
    group.bench_function("janus", |b| {
        b.iter(|| {
            black_box(
                simulate_iteration(cluster.clone(), model.clone(), &EngineOpts::default()).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_fig15_fig16(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 4).build();
    let mut group = c.benchmark_group("fig15_fig16_sweeps");
    for (label, batch, seq) in [("batch_sweep_point", 64, 64), ("seq_sweep_point", 32, 128)] {
        let mut model = ModelPreset::MoeGpt.config(8);
        model.batch = batch;
        model.seq_len = seq;
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    simulate_iteration(cluster.clone(), model.clone(), &EngineOpts::default())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let cluster = ClusterSpec::a100(2, 8).build();
    let model = pr_moe_transformer_xl(16);
    let unified = EngineOpts {
        policy: ParadigmPolicy::Unified,
        r_threshold: 2.0,
        ..EngineOpts::default()
    };
    c.bench_function("fig17_pr_moe_unified", |b| {
        b.iter(|| black_box(simulate_iteration(cluster.clone(), model.clone(), &unified).unwrap()))
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_goodput, bench_fig3, bench_fig12, bench_fig13,
        bench_fig14, bench_fig15_fig16, bench_fig17
}
criterion_main!(paper);
