//! Offline shim for `serde`.
//!
//! Instead of upstream's visitor-based data model, this shim routes all
//! (de)serialization through a single JSON-shaped [`Value`] tree: types
//! implement [`Serialize`] by producing a `Value` and [`Deserialize`] by
//! consuming one. The `serde_json` shim renders/parses that tree. This is
//! ample for the workspace's needs (report dumps, config round-trips)
//! while staying a few hundred lines with zero dependencies.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped dynamic value. Object fields keep insertion order so
/// serialized structs list fields in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is an integer-valued number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Consume a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls for primitives and containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}
ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError::new(format!("expected number, got {v:?}")))?;
                if n.fract() != 0.0 {
                    return Err(DeError::new(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new("expected 2-tuple array"))?;
        if arr.len() != 2 {
            return Err(DeError::new(format!(
                "expected 2 elements, got {}",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new("expected 3-tuple array"))?;
        if arr.len() != 3 {
            return Err(DeError::new(format!(
                "expected 3 elements, got {}",
                arr.len()
            )));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Derive-macro helper: look up a struct field in an object and
/// deserialize it; a missing field deserializes from `Null` (so `Option`
/// fields default to `None` and everything else reports a clear error).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {}", e.0)))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}
