//! Property tests for the tensor algebra the engines rely on.

use janus_tensor::{gelu, relu, softmax_rows, Matrix};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ — exercised through the transposed-matmul variants
    /// the backward passes use.
    #[test]
    fn transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// matmul distributes over addition.
    #[test]
    fn matmul_distributes(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 3),
        c in arb_matrix(4, 3),
    ) {
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// matmul_tn / matmul_nt agree with explicit transposes.
    #[test]
    fn transposed_variants_agree(a in arb_matrix(5, 3), b in arb_matrix(5, 2)) {
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(tn.max_abs_diff(&explicit) < 1e-4);
        let c = a.transpose(); // 3×5
        let nt = c.matmul_nt(&b.transpose()); // (3×5)·(5×2 transposed→2×5)ᵀ
        let explicit = c.matmul(&b);
        prop_assert!(nt.max_abs_diff(&explicit) < 1e-4);
    }

    /// Row-wise matmul independence: computing a row alone gives the same
    /// bits as computing it within a batch — the property that makes the
    /// two paradigms bitwise-equivalent.
    #[test]
    fn matmul_rows_are_independent(a in arb_matrix(6, 4), b in arb_matrix(4, 5)) {
        let full = a.matmul(&b);
        for r in 0..a.rows() {
            let single = a.gather_rows(&[r]).matmul(&b);
            prop_assert_eq!(single.row(0), full.row(r), "row {} diverged", r);
        }
    }

    /// gather → scatter with unit weights restores the selected rows.
    #[test]
    fn gather_scatter_identity(m in arb_matrix(6, 3), picks in prop::collection::vec(0usize..6, 1..6)) {
        let picked = m.gather_rows(&picks);
        let mut out = Matrix::zeros(6, 3);
        let mut expected = Matrix::zeros(6, 3);
        // Build expectation by summing selected rows into slots.
        for (i, &p) in picks.iter().enumerate() {
            out.scatter_add_rows(&[p], &[1.0], &picked.gather_rows(&[i]));
            let src = m.gather_rows(&[p]);
            expected.scatter_add_rows(&[p], &[1.0], &src);
        }
        prop_assert!(out.max_abs_diff(&expected) < 1e-5);
    }

    /// Softmax rows are probability distributions and order-preserving.
    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(4, 6)) {
        let s = softmax_rows(&m);
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            for (i, &v) in s.row(r).iter().enumerate() {
                prop_assert!(v > 0.0 && v < 1.0 + 1e-6);
                for (j, &w) in s.row(r).iter().enumerate() {
                    if m[(r, i)] > m[(r, j)] {
                        prop_assert!(v >= w, "softmax must preserve order");
                    }
                    let _ = j;
                }
            }
        }
    }

    /// ReLU is monotone everywhere; GeLU is monotone on x ≥ -0.75 (it
    /// has a global minimum near -0.7518) and bounded below by ~-0.17
    /// everywhere.
    #[test]
    fn activation_shapes(xs in prop::collection::vec(-4.0f32..4.0, 1..20)) {
        let mut sorted = xs.clone();
        sorted.sort_by(f32::total_cmp);
        let m = Matrix::from_vec(1, sorted.len(), sorted.clone());
        let y = relu(&m);
        for w in y.row(0).windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "relu must be monotone");
        }
        let g = gelu(&m);
        for (pair_x, pair_y) in sorted.windows(2).zip(g.row(0).windows(2)) {
            if pair_x[0] >= -0.75 {
                prop_assert!(pair_y[1] >= pair_y[0] - 1e-6, "gelu monotone above its minimum");
            }
        }
        for &v in g.row(0) {
            prop_assert!(v > -0.2, "gelu lower bound");
        }
        prop_assert_eq!(relu(&Matrix::zeros(1, 1))[(0, 0)], 0.0);
    }
}
