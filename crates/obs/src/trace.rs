//! Chrome trace-event JSON exporter and a pure-rust schema validator.
//!
//! The output is the JSON-array flavour of the trace-event format that
//! `chrome://tracing` and Perfetto accept: one complete event (`ph:"X"`)
//! per span, timestamps and durations in microseconds, `pid` = rank,
//! `tid` = lane (block, comm, update, ...). Both the numerical engines
//! and the simulator (`SimResult`) render through [`chrome_trace`], so
//! simulated and real runs look identical in the viewer.

use serde::Serialize;

/// One complete span, ready for export.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Event name, e.g. `pull/b1/e3`.
    pub name: String,
    /// Category: `compute`, `comm`, `transport`, `reduce`, `iter`, ...
    pub cat: String,
    /// Track id. The numerical engines use the rank; the simulator uses 0.
    pub pid: u32,
    /// Lane within the track, e.g. `b1` (block 1) or `comm`.
    pub tid: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

impl TraceEvent {
    /// End timestamp, microseconds.
    pub fn end_us(&self) -> f64 {
        self.ts_us + self.dur_us
    }
}

/// Serialize spans as a Chrome trace-event JSON array.
///
/// Events are sorted by `(ts, pid, tid, name)` before serialization so
/// the output is deterministic regardless of cross-thread interleaving
/// during recording. Field order inside each event is fixed
/// (`name,cat,ph,ts,dur,pid,tid`) and covered by a golden-file test.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then_with(|| a.pid.cmp(&b.pid))
            .then_with(|| a.tid.cmp(&b.tid))
            .then_with(|| a.name.cmp(&b.name))
    });
    let mut out = String::from("[");
    let mut first = true;
    for e in sorted {
        if e.name.is_empty() || e.ts_us.is_nan() || e.dur_us.is_nan() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            concat!(
                r#"{{"name":{:?},"cat":{:?},"ph":"X","ts":{:.3},"#,
                r#""dur":{:.3},"pid":{},"tid":{:?}}}"#
            ),
            e.name,
            e.cat,
            e.ts_us,
            e.dur_us.max(0.0),
            e.pid,
            e.tid,
        ));
    }
    out.push(']');
    out
}

/// Pure-rust structural check of a Chrome trace-event JSON array.
///
/// Not a general JSON parser: it verifies exactly the shape
/// [`chrome_trace`] emits — a top-level array of objects whose fields
/// appear in the fixed order `name,cat,ph,ts,dur,pid,tid`, with `ph`
/// equal to `"X"`, finite non-negative `ts`/`dur`, and globally
/// non-decreasing `ts`. Two complete events with the same
/// `(pid, tid, name)` must not overlap in time (half-open intervals;
/// touching is fine) — a duplicate that overlaps itself is a recording
/// bug that would corrupt downstream analysis. Distinct names on one
/// lane *may* overlap: the engines legitimately nest spans (prefetch
/// wraps pull) and run expert tasks concurrently on a block lane.
/// Returns the number of events on success.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let body = json.trim();
    let inner = body
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| "trace is not a JSON array".to_string())?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(0);
    }
    let mut count = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    // Max end time seen per (pid, tid, name); events arrive ts-sorted,
    // so an overlap shows as a start before the tracked end.
    let mut open_until: std::collections::HashMap<(u64, String, String), f64> =
        std::collections::HashMap::new();
    // Split on object boundaries. Event strings (names/tids) may contain
    // escaped quotes but never raw braces, so `},{` only occurs between
    // events.
    for obj in inner.split("},{") {
        let obj = obj.trim_start_matches('{').trim_end_matches('}');
        count += 1;
        let ctx = |field: &str| format!("event {count}: {field}");
        let rest = expect_field(obj, "\"name\":\"", &ctx("name"))?;
        let (name, rest) = take_string(rest, &ctx("name"))?;
        let rest = expect_field(rest, ",\"cat\":\"", &ctx("cat"))?;
        let rest = skip_string(rest, &ctx("cat"))?;
        let rest = expect_field(rest, ",\"ph\":\"X\"", &ctx("ph"))?;
        let rest = expect_field(rest, ",\"ts\":", &ctx("ts"))?;
        let (ts, rest) = take_number(rest, &ctx("ts"))?;
        let rest = expect_field(rest, ",\"dur\":", &ctx("dur"))?;
        let (dur, rest) = take_number(rest, &ctx("dur"))?;
        let rest = expect_field(rest, ",\"pid\":", &ctx("pid"))?;
        let (pid, rest) = take_number(rest, &ctx("pid"))?;
        let rest = expect_field(rest, ",\"tid\":\"", &ctx("tid"))?;
        let (tid, rest) = take_string(rest, &ctx("tid"))?;
        if !rest.is_empty() {
            return Err(format!("event {count}: trailing content {rest:?}"));
        }
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {count}: bad ts {ts}"));
        }
        if !dur.is_finite() || dur < 0.0 {
            return Err(format!("event {count}: bad dur {dur}"));
        }
        if ts < last_ts {
            return Err(format!("event {count}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        let key = (pid.to_bits(), tid.to_string(), name.to_string());
        if let Some(&end) = open_until.get(&key) {
            if ts < end {
                return Err(format!(
                    "event {count}: duplicate {name:?} on (pid {pid}, tid {tid:?}) \
                     overlaps: starts at {ts} before previous end {end}"
                ));
            }
        }
        let end = ts + dur;
        let slot = open_until.entry(key).or_insert(end);
        *slot = slot.max(end);
    }
    Ok(count)
}

fn expect_field<'a>(s: &'a str, prefix: &str, what: &str) -> Result<&'a str, String> {
    s.strip_prefix(prefix)
        .ok_or_else(|| format!("{what}: expected {prefix:?} at {:?}", head(s)))
}

/// Consume an escaped JSON string body up to and including its closing quote.
fn skip_string<'a>(s: &'a str, what: &str) -> Result<&'a str, String> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(&s[i + 1..]),
            _ => i += 1,
        }
    }
    Err(format!("{what}: unterminated string"))
}

/// Consume an escaped JSON string body, returning it (still escaped —
/// callers only compare/format it) and the remainder past the quote.
fn take_string<'a>(s: &'a str, what: &str) -> Result<(&'a str, &'a str), String> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok((&s[..i], &s[i + 1..])),
            _ => i += 1,
        }
    }
    Err(format!("{what}: unterminated string"))
}

/// Consume a JSON number, returning its value and the remainder.
fn take_number<'a>(s: &'a str, what: &str) -> Result<(f64, &'a str), String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(s.len());
    let num = &s[..end];
    num.parse::<f64>()
        .map(|v| (v, &s[end..]))
        .map_err(|_| format!("{what}: bad number {num:?}"))
}

fn head(s: &str) -> &str {
    &s[..s.len().min(24)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: &str, pid: u32, tid: &str, ts: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid: tid.into(),
            ts_us: ts,
            dur_us: dur,
        }
    }

    #[test]
    fn export_sorts_and_fixes_field_order() {
        let events = vec![
            ev("late", "compute", 1, "b0", 10.0, 2.0),
            ev("early", "comm", 0, "comm", 1.5, 0.5),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with(r#"[{"name":"early","cat":"comm","ph":"X","ts":1.500"#));
        assert!(json.contains(r#""name":"late""#));
        assert_eq!(validate_chrome_trace(&json).unwrap(), 2);
    }

    #[test]
    fn export_is_parseable_json() {
        let events = vec![ev("a/b\"c", "compute", 0, "w0", 0.0, 1.0)];
        let json = chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 1);
        assert_eq!(parsed[0]["name"], "a/b\"c");
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
    }

    #[test]
    fn empty_and_nan_events_are_skipped() {
        let events = vec![
            ev("", "compute", 0, "w0", 0.0, 1.0),
            ev("ok", "compute", 0, "w0", f64::NAN, 1.0),
        ];
        assert_eq!(chrome_trace(&events), "[]");
        assert_eq!(validate_chrome_trace("[]").unwrap(), 0);
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let json = chrome_trace(&[ev("x", "c", 0, "t", 5.0, -1.0)]);
        assert!(json.contains(r#""dur":0.000"#));
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
    }

    #[test]
    fn validator_rejects_negative_ts_and_dur() {
        // `chrome_trace` clamps negative durations on export, so a trace
        // carrying one was produced by something else — reject it.
        let neg_ts =
            r#"[{"name":"a","cat":"c","ph":"X","ts":-1.000,"dur":2.000,"pid":0,"tid":"t"}]"#;
        let err = validate_chrome_trace(neg_ts).unwrap_err();
        assert!(err.contains("bad ts"), "{err}");
        let neg_dur =
            r#"[{"name":"a","cat":"c","ph":"X","ts":1.000,"dur":-2.000,"pid":0,"tid":"t"}]"#;
        let err = validate_chrome_trace(neg_dur).unwrap_err();
        assert!(err.contains("bad dur"), "{err}");
    }

    #[test]
    fn validator_rejects_overlapping_duplicates_on_one_lane() {
        // Same (pid, tid, name) twice, second starts inside the first.
        let overlap = concat!(
            r#"[{"name":"a","cat":"c","ph":"X","ts":0.000,"dur":10.000,"pid":0,"tid":"t"},"#,
            r#"{"name":"a","cat":"c","ph":"X","ts":5.000,"dur":1.000,"pid":0,"tid":"t"}]"#
        );
        let err = validate_chrome_trace(overlap).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
        // Touching intervals are fine (half-open semantics).
        let touching = concat!(
            r#"[{"name":"a","cat":"c","ph":"X","ts":0.000,"dur":5.000,"pid":0,"tid":"t"},"#,
            r#"{"name":"a","cat":"c","ph":"X","ts":5.000,"dur":1.000,"pid":0,"tid":"t"}]"#
        );
        assert_eq!(validate_chrome_trace(touching).unwrap(), 2);
        // Same name overlapping on a *different* pid is fine.
        let other_pid = concat!(
            r#"[{"name":"a","cat":"c","ph":"X","ts":0.000,"dur":10.000,"pid":0,"tid":"t"},"#,
            r#"{"name":"a","cat":"c","ph":"X","ts":5.000,"dur":1.000,"pid":1,"tid":"t"}]"#
        );
        assert_eq!(validate_chrome_trace(other_pid).unwrap(), 2);
        // Distinct names may nest on one lane (prefetch wraps pull).
        let nested = concat!(
            r#"[{"name":"prefetch/b0/e1","cat":"comm","ph":"X","ts":0.000,"dur":10.000,"pid":0,"tid":"b0"},"#,
            r#"{"name":"pull/b0/e1","cat":"comm","ph":"X","ts":1.000,"dur":8.000,"pid":0,"tid":"b0"}]"#
        );
        assert_eq!(validate_chrome_trace(nested).unwrap(), 2);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(
            r#"[{"name":"a","cat":"c","ph":"B","ts":0.000,"dur":0.000,"pid":0,"tid":"t"}]"#
        )
        .is_err());
        assert!(validate_chrome_trace(
            r#"[{"cat":"c","name":"a","ph":"X","ts":0.000,"dur":0.000,"pid":0,"tid":"t"}]"#
        )
        .is_err());
        // Decreasing ts.
        let json = concat!(
            r#"[{"name":"a","cat":"c","ph":"X","ts":5.000,"dur":0.000,"pid":0,"tid":"t"},"#,
            r#"{"name":"b","cat":"c","ph":"X","ts":1.000,"dur":0.000,"pid":0,"tid":"t"}]"#
        );
        assert!(validate_chrome_trace(json).is_err());
    }
}
