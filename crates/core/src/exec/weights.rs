//! Binary serialization of expert weights and gradients for the data
//! plane.
//!
//! Layout (little-endian `f32`, lengths as `u32`): `w1.rows`, `w1.cols`,
//! `w1.data`, `b1.len`, `b1`, then the same for `w2`/`b2`. The identical
//! layout is used for [`ExpertGrads`], so the same code paths move
//! weights forward and gradients backward — exactly the symmetry the
//! paper exploits ("the size of gradients is the same as the expert
//! model pulled, and the communication direction is opposite", §5.1.3).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use janus_comm::CommError;
use janus_moe::expert::{ExpertFfn, ExpertGrads};
use janus_tensor::Matrix;

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32(m.rows() as u32);
    buf.put_u32(m.cols() as u32);
    for &v in m.data() {
        buf.put_f32_le(v);
    }
}

fn put_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), CommError> {
    if buf.remaining() < n {
        Err(CommError::Decode(format!(
            "weight blob truncated: need {n} more bytes"
        )))
    } else {
        Ok(())
    }
}

fn take_matrix(buf: &mut Bytes) -> Result<Matrix, CommError> {
    need(buf, 8)?;
    let rows = buf.get_u32() as usize;
    let cols = buf.get_u32() as usize;
    need(buf, rows * cols * 4)?;
    let data = (0..rows * cols).map(|_| buf.get_f32_le()).collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

fn take_vec(buf: &mut Bytes) -> Result<Vec<f32>, CommError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len * 4)?;
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Serialize an expert's weights.
pub fn expert_to_bytes(e: &ExpertFfn) -> Bytes {
    let mut buf = BytesMut::with_capacity(e.param_count() * 4 + 16);
    put_matrix(&mut buf, &e.w1);
    put_vec(&mut buf, &e.b1);
    put_matrix(&mut buf, &e.w2);
    put_vec(&mut buf, &e.b2);
    buf.freeze()
}

/// Deserialize an expert's weights.
pub fn expert_from_bytes(mut buf: Bytes) -> Result<ExpertFfn, CommError> {
    let w1 = take_matrix(&mut buf)?;
    let b1 = take_vec(&mut buf)?;
    let w2 = take_matrix(&mut buf)?;
    let b2 = take_vec(&mut buf)?;
    if buf.has_remaining() {
        return Err(CommError::Decode(
            "trailing bytes after expert weights".into(),
        ));
    }
    Ok(ExpertFfn { w1, b1, w2, b2 })
}

/// Serialize an expert gradient (same layout as the weights).
pub fn grads_to_bytes(g: &ExpertGrads) -> Bytes {
    let mut buf = BytesMut::new();
    put_matrix(&mut buf, &g.w1);
    put_vec(&mut buf, &g.b1);
    put_matrix(&mut buf, &g.w2);
    put_vec(&mut buf, &g.b2);
    buf.freeze()
}

/// Deserialize an expert gradient.
pub fn grads_from_bytes(mut buf: Bytes) -> Result<ExpertGrads, CommError> {
    let w1 = take_matrix(&mut buf)?;
    let b1 = take_vec(&mut buf)?;
    let w2 = take_matrix(&mut buf)?;
    let b2 = take_vec(&mut buf)?;
    if buf.has_remaining() {
        return Err(CommError::Decode("trailing bytes after gradient".into()));
    }
    Ok(ExpertGrads { w1, b1, w2, b2 })
}

/// One routed token slot on the wire: the token's index at its origin
/// worker, the target expert, and the gate's combine weight.
pub type Slot = (u32, u32, f32);

/// Serialize a token matrix together with slot metadata
/// `(token_id, expert, weight)` — the expert-centric dispatch payload.
pub fn tokens_to_bytes(slots: &[Slot], rows: &Matrix) -> Bytes {
    assert_eq!(slots.len(), rows.rows(), "one metadata slot per row");
    let mut buf = BytesMut::with_capacity(12 + slots.len() * 12 + rows.data().len() * 4);
    buf.put_u32(slots.len() as u32);
    buf.put_u32(rows.cols() as u32);
    for &(tok, expert, w) in slots {
        buf.put_u32(tok);
        buf.put_u32(expert);
        buf.put_f32_le(w);
    }
    for &v in rows.data() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserialize a token matrix with slot metadata.
pub fn tokens_from_bytes(mut buf: Bytes) -> Result<(Vec<Slot>, Matrix), CommError> {
    need(&buf, 8)?;
    let n = buf.get_u32() as usize;
    let cols = buf.get_u32() as usize;
    need(&buf, n * 12)?;
    let slots: Vec<Slot> = (0..n)
        .map(|_| (buf.get_u32(), buf.get_u32(), buf.get_f32_le()))
        .collect();
    need(&buf, n * cols * 4)?;
    let data = (0..n * cols).map(|_| buf.get_f32_le()).collect();
    if buf.has_remaining() {
        return Err(CommError::Decode("trailing bytes after token batch".into()));
    }
    Ok((slots, Matrix::from_vec(n, cols, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expert_round_trip_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = ExpertFfn::new(6, &mut rng);
        let back = expert_from_bytes(expert_to_bytes(&e)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn grads_round_trip_is_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = ExpertFfn::new(4, &mut rng);
        let x = Matrix::uniform(3, 4, 1.0, &mut rng);
        let (y, cache) = e.forward(&x);
        let (g, _) = e.backward(&cache, &y);
        let back = grads_from_bytes(grads_to_bytes(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn tokens_round_trip_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows = Matrix::uniform(4, 3, 1.0, &mut rng);
        let slots = vec![(7, 1, 0.25), (9, 0, 0.75), (0, 3, 1.0), (3, 2, 0.5)];
        let (s2, r2) = tokens_from_bytes(tokens_to_bytes(&slots, &rows)).unwrap();
        assert_eq!(s2, slots);
        assert_eq!(r2, rows);
    }

    #[test]
    fn empty_token_batch_round_trips() {
        let rows = Matrix::zeros(0, 5);
        let (slots, back) = tokens_from_bytes(tokens_to_bytes(&[], &rows)).unwrap();
        assert!(slots.is_empty());
        assert_eq!(back.shape(), (0, 5));
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let e = ExpertFfn::new(4, &mut rng);
        let full = expert_to_bytes(&e);
        let cut = full.slice(0..full.len() - 3);
        assert!(expert_from_bytes(cut).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = ExpertFfn::new(4, &mut rng);
        let mut v = expert_to_bytes(&e).to_vec();
        v.push(0);
        assert!(expert_from_bytes(Bytes::from(v)).is_err());
    }
}
