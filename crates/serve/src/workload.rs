//! Seeded open-loop serving workloads.
//!
//! A workload is a stream of small requests from a fixed set of clients.
//! Each token carries an *intended* expert drawn from a Zipf popularity
//! distribution (the same sampler shape as
//! `janus_moe::workload::AssignmentMatrix`, without the random rank
//! permutation so expert 0 is always the hottest — which keeps reports
//! readable), embedded so the steering gate of [`crate::model`] actually
//! routes the token there. Generation is a pure function of the config,
//! so the simulator, the chaos matrix, and the real TCP run all see the
//! same stream.

use janus_tensor::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::batcher::RequestId;

/// All knobs of one serving scenario, shared by the netsim model, the
/// in-process engine, and the TCP run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of experts in the MoE layer.
    pub experts: usize,
    /// Token embedding width `H` (must be `>= experts` for the steering
    /// gate).
    pub hidden_dim: usize,
    /// Gate fan-out `k`.
    pub top_k: usize,
    /// Number of request-issuing clients.
    pub clients: usize,
    /// Total requests in the stream.
    pub requests: usize,
    /// Tokens per request.
    pub tokens_per_request: usize,
    /// Zipf exponent of expert popularity (0 = uniform).
    pub zipf: f64,
    /// Requests arriving per admission step (open-loop rate).
    pub arrivals_per_step: usize,
    /// Continuous-batching token budget per engine step.
    pub max_batch_tokens: usize,
    /// RNG seed for model weights and the request stream.
    pub seed: u64,
}

impl ServeConfig {
    /// The scale used by unit tests and the chaos matrix: small enough
    /// for a per-profile run, skewed enough that replica placement
    /// matters.
    pub fn small() -> Self {
        ServeConfig {
            experts: 4,
            hidden_dim: 16,
            top_k: 2,
            clients: 3,
            requests: 12,
            tokens_per_request: 4,
            zipf: 1.1,
            arrivals_per_step: 2,
            max_batch_tokens: 16,
            seed: 0xC0FFEE,
        }
    }
}

/// One request of the stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Who sent it and where it sits in their stream.
    pub id: RequestId,
    /// Admission step at which it arrives (open-loop schedule).
    pub arrival_step: u64,
    /// Intended expert of each token (Zipf-sampled).
    pub targets: Vec<usize>,
    /// Token embeddings, `tokens_per_request × H`.
    pub tokens: Matrix,
}

/// The full request stream of one scenario.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl ServeWorkload {
    /// Generate the stream for `cfg`. Deterministic per config.
    pub fn generate(cfg: &ServeConfig) -> Self {
        assert!(cfg.experts > 0 && cfg.clients > 0 && cfg.arrivals_per_step > 0);
        assert!(
            cfg.hidden_dim >= cfg.experts,
            "steering gate needs hidden_dim >= experts"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE);
        // Zipf popularity over experts, hottest first (no permutation).
        let weights: Vec<f64> = (1..=cfg.experts)
            .map(|rank| 1.0 / (rank as f64).powf(cfg.zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();
        let mut next_seq = vec![0u64; cfg.clients];
        let requests = (0..cfg.requests)
            .map(|i| {
                let client = i % cfg.clients;
                let seq = next_seq[client];
                next_seq[client] += 1;
                let targets: Vec<usize> = (0..cfg.tokens_per_request)
                    .map(|_| {
                        let u: f64 = rng.random();
                        cdf.partition_point(|&c| c < u).min(cfg.experts - 1)
                    })
                    .collect();
                let mut tokens = Matrix::zeros(cfg.tokens_per_request, cfg.hidden_dim);
                for (t, &target) in targets.iter().enumerate() {
                    let row = tokens.row_mut(t);
                    for v in row.iter_mut() {
                        *v = 0.2 * (rng.random::<f32>() - 0.5);
                    }
                    row[target] += 2.0;
                }
                Request {
                    id: RequestId { client, seq },
                    arrival_step: (i / cfg.arrivals_per_step) as u64,
                    targets,
                    tokens,
                }
            })
            .collect();
        ServeWorkload { requests }
    }

    /// Histogram of *intended* experts over the whole stream (top-1
    /// popularity; the gate's observed histogram additionally counts the
    /// noise-chosen secondary choices).
    pub fn intent_histogram(&self, experts: usize) -> Vec<usize> {
        let mut h = vec![0usize; experts];
        for r in &self.requests {
            for &t in &r.targets {
                h[t] += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_zipf_skewed() {
        let cfg = ServeConfig {
            requests: 200,
            ..ServeConfig::small()
        };
        let a = ServeWorkload::generate(&cfg);
        let b = ServeWorkload::generate(&cfg);
        for (ra, rb) in a.requests.iter().zip(&b.requests) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.targets, rb.targets);
            assert_eq!(ra.tokens.data(), rb.tokens.data());
        }
        let h = a.intent_histogram(cfg.experts);
        assert_eq!(h.iter().sum::<usize>(), 200 * cfg.tokens_per_request);
        let max = *h.iter().max().unwrap();
        assert_eq!(h[0], max, "expert 0 is the hottest");
        assert!(
            max * 2 > h.iter().sum::<usize>() / cfg.experts * 3,
            "Zipf 1.1 should be visibly skewed: {h:?}"
        );
    }

    #[test]
    fn client_streams_are_fifo_numbered() {
        let cfg = ServeConfig::small();
        let wl = ServeWorkload::generate(&cfg);
        let mut next = vec![0u64; cfg.clients];
        for r in &wl.requests {
            assert_eq!(r.id.seq, next[r.id.client]);
            next[r.id.client] += 1;
        }
    }
}
