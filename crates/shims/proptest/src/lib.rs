//! Offline shim for `proptest`: the strategy/`proptest!` subset the
//! workspace's property tests use.
//!
//! Differences from upstream, by design:
//! * cases are generated from a deterministic per-(test, case) seed — no
//!   persistence files, no environment configuration;
//! * no shrinking — a failing case panics with the generated inputs
//!   already bound, and determinism makes the failure reproducible;
//! * `prop_assert*` are plain `assert*` wrappers.

use std::marker::PhantomData;
use std::rc::Rc;

/// Deterministic RNG driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive a seed from the test name and case index (FNV-1a over the
    /// name, mixed with the case number).
    pub fn from_name_and_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-count configuration, settable per-block via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exploring a meaningful space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy: Clone {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-process generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- numeric range strategies ----

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
int_strategy!(usize, u8, u16, u32);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
signed_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

// `0..8u64` style u64 ranges.
impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

// ---- tuple strategies ----

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- any::<T>() ----

/// Types with a full-range default strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---- prop_oneof! support ----

/// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// Build from sampler closures.
    pub fn new(arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Uniformly pick one of several strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::Union::new(::std::vec![
            $({
                let __s = $arm;
                ::std::rc::Rc::new(move |__rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&__s, __rng)
                }) as ::std::rc::Rc<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

// ---- collections ----

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generate vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Upstream-style `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Property assertion (plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is bound
/// at repetition depth zero so it can be repeated per test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng =
                        $crate::TestRng::from_name_and_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::seed(7);
        let s = collection::vec(0usize..5, 2..=4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_arms() {
        let mut rng = TestRng::seed(8);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro binds args and runs the body.
        #[test]
        fn macro_generates_cases(a in 0usize..10, b in collection::vec(0u8..=255, 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(b.len() < 4);
        }

        #[test]
        fn map_and_tuple(pair in (0u32..4, 1.0f64..2.0).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!((1.0..2.0).contains(&pair.1));
        }
    }
}
