//! Real distributed MoE training in all three engines, demonstrating the
//! paper's equivalence claim (§3.2) numerically — and bitwise.
//!
//! Spawns one thread per simulated GPU, connected by an in-process
//! message mesh. The data-centric run exercises the full Janus Task
//! Queue: pull requests, the per-machine expert cache, and gradient
//! pre-reduction. The unified run executes a compiled `IterationPlan`
//! that mixes paradigms across blocks. Outputs, losses, and trained
//! weights of all three match the All-to-All baseline bit for bit.
//!
//! ```text
//! cargo run --release --example train_equivalence
//! ```

use janus::core::exec::model::ExecConfig;
use janus::core::exec::trainer::{
    compare_paradigms, diff_runs, train_data_centric, train_unified_with,
};
use janus::core::plan::PlanOpts;
use janus::core::Paradigm;

fn main() {
    let cfg = ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 16,
        blocks: 3,
        experts: 8,
        experts_per_block: vec![],
        top_k: 2,
        tokens: 32,
        seed: 2023,
        lr: 0.02,
    };
    println!(
        "training a {}-block MoE ({} experts, top-{}) on {} simulated GPUs\n",
        cfg.blocks,
        cfg.experts,
        cfg.top_k,
        cfg.world()
    );

    let iters = 8;
    let run = train_data_centric(&cfg, iters);
    println!("data-centric loss curve (worker 0):");
    for (i, loss) in run.losses[0].iter().enumerate() {
        println!("  iter {i}: {loss:.4}");
    }

    // §3.2's claim: moving experts instead of tokens changes nothing
    // numerically. Both engines compute per-source-worker gradients and
    // fold them in the same pre-reduction order, so the equivalence is
    // bitwise across any number of updates — not just statistical.
    let diff = compare_paradigms(&cfg, iters);
    println!("\nexpert-centric vs data-centric after {iters} iterations:");
    println!("  max |Δ output|  = {:.3e}", diff.max_output_diff);
    println!("  max |Δ weights| = {:.3e}", diff.max_weight_diff);
    println!("  max |Δ loss|    = {:.3e}", diff.max_loss_diff);
    assert_eq!(diff.max_output_diff, 0.0);
    assert_eq!(diff.max_weight_diff, 0.0);
    assert_eq!(diff.max_loss_diff, 0.0);

    // The unified engine executes a compiled per-block plan. On the
    // mixed config the R-rule picks data-centric for the small block and
    // expert-centric for the large one — and the run still matches the
    // pure engines exactly.
    let mixed = ExecConfig::mixed_paradigms();
    let (plan, unified) = train_unified_with(&mixed, &PlanOpts::default(), iters);
    println!(
        "\nunified run on a mixed plan (digest {:#018x}):",
        plan.digest()
    );
    for bp in &plan.blocks {
        println!(
            "  block {} ({} experts): R = {:.2} → {}",
            bp.block,
            bp.experts,
            bp.r.unwrap_or(f64::NAN),
            match bp.paradigm {
                Paradigm::DataCentric => "data-centric",
                Paradigm::ExpertCentric => "expert-centric",
            }
        );
    }
    let udiff = diff_runs(&unified, &train_data_centric(&mixed, iters));
    println!(
        "  max |Δ weights| vs pure data-centric = {:.3e}",
        udiff.max_weight_diff
    );
    assert_eq!(udiff.max_output_diff, 0.0);
    assert_eq!(udiff.max_weight_diff, 0.0);

    println!("\nequivalence holds: moving experts instead of tokens changes nothing numerically");
}
