//! Discrete-event execution of a task graph.

use crate::fair::max_min_rates;
use crate::graph::{Graph, LaneId, PoolId, TaskId, Work};
use crate::trace::{SimResult, TaskRecord};
use janus_topology::LinkId;
use std::collections::BTreeSet;
use std::fmt;

/// Byte slack below which a flow counts as finished.
const BYTE_EPS: f64 = 1e-6;
/// Time slack for matching completion instants.
const TIME_EPS: f64 = 1e-12;

/// Errors surfaced by [`simulate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No runnable work remains but some tasks never finished — a cyclic
    /// dependency or a credit deadlock in the engine-built graph. Carries
    /// labels of up to ten stuck tasks.
    Deadlock(Vec<String>),
    /// A transfer crosses a zero-capacity link and can never finish.
    ZeroRateFlow(TaskId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(stuck) => {
                write!(f, "simulation deadlock; stuck tasks: {}", stuck.join(", "))
            }
            SimError::ZeroRateFlow(id) => {
                write!(f, "transfer {id:?} crosses a zero-capacity link")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug)]
struct Flow {
    task: usize,
    links: Vec<usize>,
    remaining: f64,
    rate: f64,
    lane: Option<LaneId>,
    /// Remaining fixed issue delay; bytes flow only once this reaches 0.
    latency_left: f64,
}

#[derive(Debug, Default)]
struct LaneState {
    /// Task currently occupying the lane.
    busy: Option<usize>,
    /// Compute end time when the busy task is a compute.
    end: f64,
    /// Ready tasks waiting for the lane: (priority, task index).
    queue: BTreeSet<(i64, usize)>,
}

#[derive(Debug, Default)]
struct PoolState {
    available: u32,
    /// Waiting acquires: (priority, task index, amount).
    waiters: BTreeSet<(i64, usize, u32)>,
}

struct Engine<'g> {
    graph: &'g Graph,
    capacities: &'g [f64],
    now: f64,
    pending_deps: Vec<usize>,
    ready_at: Vec<f64>,
    start_at: Vec<f64>,
    finish_at: Vec<f64>,
    finished: Vec<bool>,
    remaining_tasks: usize,
    instant: Vec<usize>,
    lanes: Vec<LaneState>,
    pools: Vec<PoolState>,
    flows: Vec<Flow>,
    rates_dirty: bool,
    pools_dirty: bool,
    link_bytes: Vec<f64>,
    link_busy: Vec<f64>,
    mem: Vec<f64>,
    mem_peak: Vec<f64>,
}

impl<'g> Engine<'g> {
    fn new(graph: &'g Graph, capacities: &'g [f64]) -> Self {
        assert!(
            capacities.len() >= graph.num_links,
            "capacity vector shorter than the graph's link space"
        );
        let n = graph.tasks.len();
        Engine {
            graph,
            capacities,
            now: 0.0,
            pending_deps: graph.tasks.iter().map(|t| t.deps.len()).collect(),
            ready_at: vec![f64::NAN; n],
            start_at: vec![f64::NAN; n],
            finish_at: vec![f64::NAN; n],
            finished: vec![false; n],
            remaining_tasks: n,
            instant: Vec::new(),
            lanes: (0..graph.lanes).map(|_| LaneState::default()).collect(),
            pools: graph
                .pools
                .iter()
                .map(|&cap| PoolState {
                    available: cap,
                    waiters: BTreeSet::new(),
                })
                .collect(),
            flows: Vec::new(),
            rates_dirty: false,
            pools_dirty: false,
            link_bytes: vec![0.0; capacities.len()],
            link_busy: vec![0.0; capacities.len()],
            mem: vec![0.0; graph.num_domains],
            mem_peak: vec![0.0; graph.num_domains],
        }
    }

    fn apply_mem(&mut self, task: usize, at_start: bool) {
        for d in &self.graph.tasks[task].spec.mem {
            if d.at_start == at_start {
                self.mem[d.domain] += d.bytes;
                if self.mem[d.domain] > self.mem_peak[d.domain] {
                    self.mem_peak[d.domain] = self.mem[d.domain];
                }
            }
        }
    }

    fn mark_started(&mut self, task: usize) {
        self.start_at[task] = self.now;
        self.apply_mem(task, true);
    }

    fn finish_task(&mut self, task: usize) {
        debug_assert!(!self.finished[task]);
        if self.start_at[task].is_nan() {
            self.start_at[task] = self.now;
            self.apply_mem(task, true);
        }
        self.finish_at[task] = self.now;
        self.finished[task] = true;
        self.remaining_tasks -= 1;
        self.apply_mem(task, false);
        for dep in &self.graph.tasks[task].dependents {
            let d = dep.0;
            self.pending_deps[d] -= 1;
            if self.pending_deps[d] == 0 {
                self.instant.push(d);
            }
        }
    }

    /// Dispatch a task that just became ready.
    fn dispatch(&mut self, task: usize) {
        self.ready_at[task] = self.now;
        let prio = self.graph.tasks[task].spec.priority;
        match &self.graph.tasks[task].spec.work {
            Work::NoOp => {
                self.mark_started(task);
                self.finish_task(task);
            }
            Work::ReleaseCredits { pool, amount } => {
                let (pool, amount) = (*pool, *amount);
                self.mark_started(task);
                self.pools[pool.0].available += amount;
                self.finish_task(task);
                self.pools_dirty = true;
            }
            Work::AcquireCredits { pool, amount } => {
                let (pool, amount) = (*pool, *amount);
                self.pools[pool.0].waiters.insert((prio, task, amount));
                // Grants happen in `settle` once every same-instant
                // acquire has enqueued, so priority ordering is exact
                // even among simultaneous requests.
                self.pools_dirty = true;
            }
            Work::Compute { lane, .. } => {
                let lane = *lane;
                self.lanes[lane.0].queue.insert((prio, task));
                self.pump_lane(lane);
            }
            Work::Transfer { lane, .. } => match lane {
                Some(lane) => {
                    let lane = *lane;
                    self.lanes[lane.0].queue.insert((prio, task));
                    self.pump_lane(lane);
                }
                None => self.start_transfer(task, None),
            },
        }
    }

    /// Grant credits to waiters in priority order until the head waiter
    /// cannot be satisfied (strict ordering — a large request blocks
    /// smaller later ones, keeping admission deterministic and fair).
    fn drain_pool(&mut self, pool: PoolId) {
        loop {
            let head = match self.pools[pool.0].waiters.iter().next() {
                Some(&h) => h,
                None => return,
            };
            let (_, task, amount) = head;
            if self.pools[pool.0].available < amount {
                return;
            }
            self.pools[pool.0].waiters.remove(&head);
            self.pools[pool.0].available -= amount;
            self.mark_started(task);
            self.finish_task(task);
        }
    }

    /// Start the next queued task on an idle lane.
    fn pump_lane(&mut self, lane: LaneId) {
        if self.lanes[lane.0].busy.is_some() {
            return;
        }
        let head = match self.lanes[lane.0].queue.iter().next() {
            Some(&h) => h,
            None => return,
        };
        self.lanes[lane.0].queue.remove(&head);
        let (_, task) = head;
        match &self.graph.tasks[task].spec.work {
            Work::Compute { duration, .. } => {
                let duration = *duration;
                self.mark_started(task);
                if duration <= 0.0 {
                    self.finish_task(task);
                    self.pump_lane(lane);
                } else {
                    self.lanes[lane.0].busy = Some(task);
                    self.lanes[lane.0].end = self.now + duration;
                }
            }
            Work::Transfer { .. } => {
                self.start_transfer(task, Some(lane));
            }
            other => unreachable!("non-lane work {other:?} queued on a lane"),
        }
    }

    fn start_transfer(&mut self, task: usize, lane: Option<LaneId>) {
        let (route, bytes, latency) = match &self.graph.tasks[task].spec.work {
            Work::Transfer {
                route,
                bytes,
                latency,
                ..
            } => (route, *bytes, *latency),
            _ => unreachable!(),
        };
        self.mark_started(task);
        if (route.is_empty() || bytes <= BYTE_EPS) && latency <= 0.0 {
            self.finish_task(task);
            if let Some(lane) = lane {
                self.pump_lane(lane);
            }
            return;
        }
        let mut links: Vec<usize> = route.iter().map(|l| l.index()).collect();
        links.sort_unstable();
        links.dedup();
        if let Some(lane) = lane {
            self.lanes[lane.0].busy = Some(task);
            self.lanes[lane.0].end = f64::INFINITY;
        }
        self.flows.push(Flow {
            task,
            links,
            remaining: bytes.max(0.0),
            rate: 0.0,
            lane,
            latency_left: latency,
        });
        self.rates_dirty = true;
    }

    fn recompute_rates(&mut self) {
        // Flows still in their issue-latency window consume no bandwidth.
        let routes: Vec<Vec<LinkId>> = self
            .flows
            .iter()
            .map(|f| {
                if f.latency_left > 0.0 {
                    Vec::new()
                } else {
                    f.links.iter().map(|&l| LinkId(l)).collect()
                }
            })
            .collect();
        let rates = max_min_rates(&routes, self.capacities);
        for (f, r) in self.flows.iter_mut().zip(rates) {
            f.rate = if f.latency_left > 0.0 { 0.0 } else { r };
        }
        self.rates_dirty = false;
    }

    /// Run every instantaneous transition available at the current time:
    /// alternate between dispatching ready tasks and draining credit
    /// pools until a fixpoint, then refresh flow rates.
    fn settle(&mut self) {
        loop {
            while let Some(task) = self.instant.pop() {
                self.dispatch(task);
            }
            if !self.pools_dirty {
                break;
            }
            self.pools_dirty = false;
            for p in 0..self.pools.len() {
                self.drain_pool(PoolId(p));
            }
        }
        if self.rates_dirty {
            self.recompute_rates();
        }
    }

    /// Earliest future event: a compute lane completing or a flow draining.
    fn next_event(&self) -> Option<f64> {
        let mut t = f64::INFINITY;
        for lane in &self.lanes {
            if let Some(task) = lane.busy {
                if !matches!(self.graph.tasks[task].spec.work, Work::Transfer { .. }) {
                    t = t.min(lane.end);
                }
            }
        }
        for f in &self.flows {
            if f.latency_left > 0.0 {
                t = t.min(self.now + f.latency_left);
            } else if f.rate > 0.0 {
                t = t.min(self.now + f.remaining / f.rate);
            }
        }
        t.is_finite().then_some(t)
    }

    /// Advance to `t`, draining flows and completing tasks.
    fn advance(&mut self, t: f64) {
        let dt = t - self.now;
        debug_assert!(dt >= -TIME_EPS, "time went backwards");
        if dt > 0.0 {
            let mut busy_links: Vec<bool> = vec![false; self.capacities.len()];
            for f in &mut self.flows {
                if f.latency_left > 0.0 {
                    f.latency_left -= dt;
                    if f.latency_left <= TIME_EPS {
                        f.latency_left = 0.0;
                        self.rates_dirty = true;
                    }
                    continue;
                }
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.links {
                    self.link_bytes[l] += moved;
                    busy_links[l] = true;
                }
            }
            for (l, busy) in busy_links.iter().enumerate() {
                if *busy {
                    self.link_busy[l] += dt;
                }
            }
        }
        self.now = t;

        // Complete drained flows. A flow is done when its bytes are gone
        // up to the absolute slack, or when the residue is so small that
        // draining it cannot advance the clock at all (now + dt == now in
        // f64) — without the latter, a sub-epsilon residue at high rate
        // freezes simulated time.
        let mut i = 0;
        while i < self.flows.len() {
            let drained = {
                let f = &self.flows[i];
                f.latency_left <= 0.0
                    && (f.remaining <= BYTE_EPS
                        || (f.rate > 0.0 && self.now + f.remaining / f.rate <= self.now))
            };
            if drained {
                let flow = self.flows.swap_remove(i);
                self.rates_dirty = true;
                self.finish_task(flow.task);
                if let Some(lane) = flow.lane {
                    self.lanes[lane.0].busy = None;
                    self.pump_lane(lane);
                }
            } else {
                i += 1;
            }
        }
        // Complete lane computes ending now.
        for l in 0..self.lanes.len() {
            if let Some(task) = self.lanes[l].busy {
                let is_compute = matches!(self.graph.tasks[task].spec.work, Work::Compute { .. });
                if is_compute && self.lanes[l].end <= self.now + TIME_EPS {
                    self.lanes[l].busy = None;
                    self.finish_task(task);
                    self.pump_lane(LaneId(l));
                }
            }
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        // Seed: tasks with no dependencies.
        for (i, &p) in self.pending_deps.iter().enumerate() {
            if p == 0 {
                self.instant.push(i);
            }
        }
        // Dispatch in id order for determinism (instant stack is LIFO).
        self.instant.reverse();

        let mut spins: u64 = 0;
        loop {
            self.settle();
            if self.remaining_tasks == 0 {
                break;
            }
            spins += 1;
            if spins.is_multiple_of(1_000_000) && std::env::var_os("JANUS_SIM_DEBUG").is_some() {
                eprintln!(
                    "sim spin {spins}: now={} next={:?} remaining={} flows={:?} lanes={:?}",
                    self.now,
                    self.next_event(),
                    self.remaining_tasks,
                    self.flows
                        .iter()
                        .map(|f| (f.task, f.remaining, f.rate, f.latency_left, f.links.len()))
                        .collect::<Vec<_>>(),
                    self.lanes
                        .iter()
                        .filter(|l| l.busy.is_some())
                        .map(|l| (l.busy, l.end))
                        .collect::<Vec<_>>(),
                );
            }
            match self.next_event() {
                Some(t) => self.advance(t),
                None => {
                    // A flow with zero rate can never finish.
                    if let Some(f) = self.flows.iter().find(|f| f.rate <= 0.0) {
                        return Err(SimError::ZeroRateFlow(TaskId(f.task)));
                    }
                    let stuck: Vec<String> = self
                        .finished
                        .iter()
                        .enumerate()
                        .filter(|(_, done)| !**done)
                        .take(10)
                        .map(|(i, _)| {
                            let t = &self.graph.tasks[i];
                            if t.spec.label.is_empty() {
                                format!("task{}:{}", i, t.spec.work.tag())
                            } else {
                                format!("task{}:{}", i, t.spec.label)
                            }
                        })
                        .collect();
                    return Err(SimError::Deadlock(stuck));
                }
            }
        }

        let records = self
            .graph
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskRecord {
                id: TaskId(i),
                label: t.spec.label.clone(),
                kind: t.spec.work.tag(),
                ready: self.ready_at[i],
                start: self.start_at[i],
                finish: self.finish_at[i],
            })
            .collect();
        Ok(SimResult {
            makespan: self.now,
            records,
            link_bytes: self.link_bytes,
            link_busy: self.link_busy,
            mem_peak: self.mem_peak,
            mem_final: self.mem,
        })
    }
}

/// Execute `graph` against links with the given `capacities` (bytes/s,
/// indexed by [`LinkId`]).
pub fn simulate(graph: &Graph, capacities: &[f64]) -> Result<SimResult, SimError> {
    Engine::new(graph, capacities).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, TaskSpec};

    fn route(ids: &[usize]) -> Vec<LinkId> {
        ids.iter().copied().map(LinkId).collect()
    }

    #[test]
    fn empty_graph_finishes_at_zero() {
        let g = GraphBuilder::new(0, 0).build();
        let r = simulate(&g, &[]).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert!(r.records.is_empty());
    }

    #[test]
    fn sequential_computes_on_one_lane() {
        let mut g = GraphBuilder::new(0, 0);
        let lane = g.lane();
        g.task(
            Work::Compute {
                lane,
                duration: 2.0,
            },
            &[],
        );
        g.task(
            Work::Compute {
                lane,
                duration: 3.0,
            },
            &[],
        );
        let r = simulate(&g.build(), &[]).unwrap();
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.records[1].start - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_computes_on_two_lanes() {
        let mut g = GraphBuilder::new(0, 0);
        let l0 = g.lane();
        let l1 = g.lane();
        g.task(
            Work::Compute {
                lane: l0,
                duration: 2.0,
            },
            &[],
        );
        g.task(
            Work::Compute {
                lane: l1,
                duration: 3.0,
            },
            &[],
        );
        let r = simulate(&g.build(), &[]).unwrap();
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lane_priority_orders_queued_tasks() {
        let mut g = GraphBuilder::new(0, 0);
        let lane = g.lane();
        // Occupy the lane first so both contenders queue.
        let head = g.task(
            Work::Compute {
                lane,
                duration: 1.0,
            },
            &[],
        );
        let low = g.add(
            TaskSpec::new(Work::Compute {
                lane,
                duration: 1.0,
            })
            .priority(10)
            .label("low"),
            &[],
        );
        let high = g.add(
            TaskSpec::new(Work::Compute {
                lane,
                duration: 1.0,
            })
            .priority(-10)
            .label("high"),
            &[],
        );
        let _ = head;
        let r = simulate(&g.build(), &[]).unwrap();
        assert!(r.records[high.0].start < r.records[low.0].start);
    }

    #[test]
    fn dependencies_gate_start_times() {
        let mut g = GraphBuilder::new(1, 0);
        let t0 = g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 10.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let lane = g.lane();
        g.task(
            Work::Compute {
                lane,
                duration: 1.0,
            },
            &[t0],
        );
        let r = simulate(&g.build(), &[5.0]).unwrap();
        assert!((r.records[1].start - 2.0).abs() < 1e-9);
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shared_link_fair_sharing_exact_times() {
        // Flows of 30 and 10 bytes share a 10 B/s link.
        // Phase 1: both at 5 B/s. Small flow done at t=2 (10 bytes).
        // Phase 2: big flow has 20 left at 10 B/s → done at t=4.
        let mut g = GraphBuilder::new(1, 0);
        let big = g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 30.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let small = g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 10.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let r = simulate(&g.build(), &[10.0]).unwrap();
        assert!((r.records[small.0].finish - 2.0).abs() < 1e-9);
        assert!((r.records[big.0].finish - 4.0).abs() < 1e-9);
        assert!((r.link_bytes[0] - 40.0).abs() < 1e-6);
        assert!((r.link_busy[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_on_one_lane_serialize() {
        let mut g = GraphBuilder::new(1, 0);
        let lane = g.lane();
        g.task(Work::transfer_on(route(&[0]), 10.0, lane), &[]);
        g.task(Work::transfer_on(route(&[0]), 10.0, lane), &[]);
        let r = simulate(&g.build(), &[10.0]).unwrap();
        // Serialized: 1 s + 1 s rather than 2 s shared.
        assert!((r.records[0].finish - 1.0).abs() < 1e-9);
        assert!((r.records[1].finish - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_is_instant_even_on_lane() {
        let mut g = GraphBuilder::new(1, 0);
        let lane = g.lane();
        g.task(Work::transfer_on(route(&[0]), 0.0, lane), &[]);
        g.task(Work::transfer_on(route(&[0]), 10.0, lane), &[]);
        let r = simulate(&g.build(), &[10.0]).unwrap();
        assert_eq!(r.records[0].finish, 0.0);
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_transfer_is_instant() {
        let mut g = GraphBuilder::new(0, 0);
        g.task(
            Work::Transfer {
                route: vec![],
                bytes: 100.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let r = simulate(&g.build(), &[]).unwrap();
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn credits_block_until_released() {
        let mut g = GraphBuilder::new(0, 0);
        let lane = g.lane();
        let pool = g.pool(1);
        // First holder takes the credit for 2 s of compute.
        let a0 = g.task(Work::AcquireCredits { pool, amount: 1 }, &[]);
        let c0 = g.task(
            Work::Compute {
                lane,
                duration: 2.0,
            },
            &[a0],
        );
        g.task(Work::ReleaseCredits { pool, amount: 1 }, &[c0]);
        // Second acquire must wait for the release at t=2.
        let a1 = g.task(Work::AcquireCredits { pool, amount: 1 }, &[]);
        let r = simulate(&g.build(), &[]).unwrap();
        assert!((r.records[a1.0].finish - 2.0).abs() < 1e-9);
        assert!((r.records[a1.0].queue_delay() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn credit_deadlock_detected() {
        let mut g = GraphBuilder::new(0, 0);
        let pool = g.pool(1);
        g.add(
            TaskSpec::new(Work::AcquireCredits { pool, amount: 2 }).label("too-greedy"),
            &[],
        );
        let err = simulate(&g.build(), &[]).unwrap_err();
        match err {
            SimError::Deadlock(stuck) => assert!(stuck[0].contains("too-greedy")),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_link_reported() {
        let mut g = GraphBuilder::new(1, 0);
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 5.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let err = simulate(&g.build(), &[0.0]).unwrap_err();
        assert_eq!(err, SimError::ZeroRateFlow(TaskId(0)));
    }

    #[test]
    fn memory_peaks_tracked() {
        let mut g = GraphBuilder::new(1, 1);
        // Transfer holds 100 bytes for its duration; released at finish.
        g.add(
            TaskSpec::new(Work::Transfer {
                route: route(&[0]),
                bytes: 10.0,
                lane: None,
                latency: 0.0,
            })
            .mem(0, 100.0, true)
            .mem(0, -100.0, false),
            &[],
        );
        let r = simulate(&g.build(), &[10.0]).unwrap();
        assert_eq!(r.mem_peak[0], 100.0);
        assert_eq!(r.mem_final[0], 0.0);
    }

    #[test]
    fn diamond_dependency_joins() {
        let mut g = GraphBuilder::new(0, 0);
        let lane = g.lane();
        let src = g.task(Work::NoOp, &[]);
        let a = g.task(
            Work::Compute {
                lane,
                duration: 1.0,
            },
            &[src],
        );
        let lane2 = g.lane();
        let b = g.task(
            Work::Compute {
                lane: lane2,
                duration: 4.0,
            },
            &[src],
        );
        let join = g.task(Work::NoOp, &[a, b]);
        let r = simulate(&g.build(), &[]).unwrap();
        assert!((r.records[join.0].finish - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_when_flow_departs() {
        // Three equal flows on one link (9 B/s): 3 each. First finishes,
        // remaining two split 4.5 each, etc. 9 bytes per flow:
        // all identical → all finish at t = 3.
        let mut g = GraphBuilder::new(1, 0);
        for _ in 0..3 {
            g.task(
                Work::Transfer {
                    route: route(&[0]),
                    bytes: 9.0,
                    lane: None,
                    latency: 0.0,
                },
                &[],
            );
        }
        let r = simulate(&g.build(), &[9.0]).unwrap();
        assert!((r.makespan - 3.0).abs() < 1e-9);

        // Unequal flows: 9 and 18 bytes on 9 B/s. Phase 1: both 4.5 B/s,
        // flow0 done at t=2. Flow1 has 9 left at 9 B/s → t=3.
        let mut g = GraphBuilder::new(1, 0);
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 9.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 18.0,
                lane: None,
                latency: 0.0,
            },
            &[],
        );
        let r = simulate(&g.build(), &[9.0]).unwrap();
        assert!((r.records[0].finish - 2.0).abs() < 1e-9);
        assert!((r.records[1].finish - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sub_epsilon_residue_cannot_freeze_the_clock() {
        // Regression: a flow whose remaining bytes are just above the
        // absolute slack, at a rate high enough that draining them cannot
        // advance a large clock (now + dt == now), must still complete.
        let mut g = GraphBuilder::new(1, 0);
        let lane = g.lane();
        // Push the clock far from zero so f64 ulp(now) dwarfs the drain dt.
        let warm = g.task(
            Work::Compute {
                lane,
                duration: 1e6,
            },
            &[],
        );
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 2e-6,
                lane: None,
                latency: 0.0,
            },
            &[warm],
        );
        let r = simulate(&g.build(), &[1e12]).unwrap();
        assert!((r.makespan - 1e6).abs() < 1.0);
    }

    #[test]
    fn latency_delays_byte_flow_and_holds_lane() {
        let mut g = GraphBuilder::new(1, 0);
        let lane = g.lane();
        // 10 bytes at 10 B/s after a 0.5 s issue delay -> finish at 1.5 s,
        // and a second lane transfer must wait for the whole window.
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 10.0,
                lane: Some(lane),
                latency: 0.5,
            },
            &[],
        );
        g.task(
            Work::Transfer {
                route: route(&[0]),
                bytes: 10.0,
                lane: Some(lane),
                latency: 0.5,
            },
            &[],
        );
        let r = simulate(&g.build(), &[10.0]).unwrap();
        assert!(
            (r.records[0].finish - 1.5).abs() < 1e-9,
            "{:?}",
            r.records[0]
        );
        assert!((r.records[1].start - 1.5).abs() < 1e-9);
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_only_transfer_with_empty_route_takes_latency() {
        let mut g = GraphBuilder::new(0, 0);
        g.task(
            Work::Transfer {
                route: vec![],
                bytes: 100.0,
                lane: None,
                latency: 0.25,
            },
            &[],
        );
        let r = simulate(&g.build(), &[]).unwrap();
        assert!((r.makespan - 0.25).abs() < 1e-9);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let build = || {
            let mut g = GraphBuilder::new(2, 0);
            let lane = g.lane();
            let pool = g.pool(2);
            let mut last = None;
            for i in 0..10 {
                let a = g.task(Work::AcquireCredits { pool, amount: 1 }, &[]);
                let t = g.task(
                    Work::Transfer {
                        route: route(&[i % 2]),
                        bytes: 7.0,
                        lane: None,
                        latency: 0.0,
                    },
                    &[a],
                );
                let c = g.task(
                    Work::Compute {
                        lane,
                        duration: 0.3,
                    },
                    &[t],
                );
                last = Some(g.task(Work::ReleaseCredits { pool, amount: 1 }, &[c]));
            }
            let _ = last;
            g.build()
        };
        let r1 = simulate(&build(), &[3.0, 5.0]).unwrap();
        let r2 = simulate(&build(), &[3.0, 5.0]).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        for (a, b) in r1.records.iter().zip(&r2.records) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.finish, b.finish);
        }
    }
}
