//! Synthetic token→expert assignment matrices.
//!
//! The simulation engines need only the *histogram* of tokens each worker
//! sends to each expert. Real gates produce imbalanced histograms (paper
//! §3.1 cites [24]); this module generates balanced and skewed variants
//! with a seeded RNG so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How skewed the expert popularity distribution is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Imbalance {
    /// Every expert receives exactly `T/experts` tokens from each worker
    /// (the paper's lower-bound case for expert-centric communication).
    Balanced,
    /// Expert popularity follows a Zipf distribution with this exponent;
    /// tokens are assigned by multinomial sampling. `Zipf(0.0)` is uniform
    /// in expectation, `Zipf(1.2)` is heavily hot-expert skewed.
    Zipf(f64),
}

/// `counts[w][e]` = tokens worker `w` routes to global expert `e` in one
/// MoE block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentMatrix {
    /// Token counts per (worker, expert).
    pub counts: Vec<Vec<usize>>,
}

impl AssignmentMatrix {
    /// Generate an assignment of `tokens_per_worker` token slots from each
    /// of `workers` workers over `experts` experts.
    pub fn generate(
        workers: usize,
        experts: usize,
        tokens_per_worker: usize,
        imbalance: Imbalance,
        seed: u64,
    ) -> Self {
        assert!(workers > 0 && experts > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = match imbalance {
            Imbalance::Balanced => {
                let base = tokens_per_worker / experts;
                let rem = tokens_per_worker % experts;
                (0..workers)
                    .map(|_| (0..experts).map(|e| base + usize::from(e < rem)).collect())
                    .collect()
            }
            Imbalance::Zipf(s) => {
                // Shared expert popularity across workers: hot experts are
                // hot everywhere, which is what gates produce in practice.
                let weights: Vec<f64> = (1..=experts)
                    .map(|rank| 1.0 / (rank as f64).powf(s))
                    .collect();
                // Randomly permute which expert gets which popularity rank.
                let mut perm: Vec<usize> = (0..experts).collect();
                for i in (1..experts).rev() {
                    perm.swap(i, rng.random_range(0..=i));
                }
                let total: f64 = weights.iter().sum();
                let cdf: Vec<f64> = weights
                    .iter()
                    .scan(0.0, |acc, w| {
                        *acc += w / total;
                        Some(*acc)
                    })
                    .collect();
                (0..workers)
                    .map(|_| {
                        let mut row = vec![0usize; experts];
                        for _ in 0..tokens_per_worker {
                            let u: f64 = rng.random();
                            let slot = cdf.partition_point(|&c| c < u).min(experts - 1);
                            row[perm[slot]] += 1;
                        }
                        row
                    })
                    .collect()
            }
        };
        AssignmentMatrix { counts }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.counts.len()
    }

    /// Number of experts.
    pub fn experts(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Tokens worker `w` routes to expert `e`.
    pub fn tokens(&self, w: usize, e: usize) -> usize {
        self.counts[w][e]
    }

    /// Total tokens arriving at `expert` across all workers.
    pub fn expert_load(&self, expert: usize) -> usize {
        self.counts.iter().map(|row| row[expert]).sum()
    }

    /// Total tokens emitted by `worker`.
    pub fn worker_tokens(&self, worker: usize) -> usize {
        self.counts[worker].iter().sum()
    }

    /// Ratio of the busiest expert's load to the mean load — 1.0 when
    /// perfectly balanced. The paper's All-to-All latency is governed by
    /// this factor.
    pub fn imbalance_factor(&self) -> f64 {
        let experts = self.experts();
        if experts == 0 {
            return 1.0;
        }
        let loads: Vec<usize> = (0..experts).map(|e| self.expert_load(e)).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<usize>() as f64 / experts as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_rows_are_exact() {
        let a = AssignmentMatrix::generate(4, 8, 64, Imbalance::Balanced, 0);
        assert_eq!(a.workers(), 4);
        assert_eq!(a.experts(), 8);
        for w in 0..4 {
            assert_eq!(a.worker_tokens(w), 64);
            for e in 0..8 {
                assert_eq!(a.tokens(w, e), 8);
            }
        }
        assert!((a.imbalance_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_distributes_remainder() {
        let a = AssignmentMatrix::generate(1, 4, 10, Imbalance::Balanced, 0);
        assert_eq!(a.counts[0], vec![3, 3, 2, 2]);
        assert_eq!(a.worker_tokens(0), 10);
    }

    #[test]
    fn zipf_conserves_tokens() {
        let a = AssignmentMatrix::generate(3, 16, 500, Imbalance::Zipf(1.1), 42);
        for w in 0..3 {
            assert_eq!(a.worker_tokens(w), 500);
        }
    }

    #[test]
    fn zipf_is_more_imbalanced_than_uniform() {
        let hot = AssignmentMatrix::generate(4, 16, 2000, Imbalance::Zipf(1.2), 7);
        let flat = AssignmentMatrix::generate(4, 16, 2000, Imbalance::Zipf(0.0), 7);
        assert!(
            hot.imbalance_factor() > flat.imbalance_factor(),
            "zipf {} <= uniform {}",
            hot.imbalance_factor(),
            flat.imbalance_factor()
        );
        assert!(hot.imbalance_factor() > 1.5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = AssignmentMatrix::generate(2, 8, 100, Imbalance::Zipf(1.0), 3);
        let b = AssignmentMatrix::generate(2, 8, 100, Imbalance::Zipf(1.0), 3);
        let c = AssignmentMatrix::generate(2, 8, 100, Imbalance::Zipf(1.0), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn expert_load_sums_workers() {
        let a = AssignmentMatrix::generate(4, 4, 100, Imbalance::Balanced, 0);
        for e in 0..4 {
            assert_eq!(a.expert_load(e), 100);
        }
    }
}
