//! MoE model substrate: configurations, gate, experts, workloads, and the
//! paper's analytic communication model.
//!
//! * [`config`] — model descriptions and the paper's Table 1 presets
//!   (MoE-BERT, MoE-GPT, MoE-Transformer-xl, PR-MoE).
//! * [`gate`] — a real top-k softmax gate over token embeddings.
//! * [`expert`] — the FFN expert (`W2 · gelu(W1·x + b1) + b2`) with exact
//!   backward pass; the unit whose weights Janus moves between GPUs.
//! * [`workload`] — synthetic token→expert assignment matrices spanning
//!   the balanced→skewed range the paper discusses.
//! * [`traffic`] — closed forms from §5.1.3: `Comm_DC = 8H²Em(n−1)`,
//!   `Comm_EC = 2mHT·(n−1)/n`, and the gain `R = BSk/(4nHE)`.
//! * [`flops`] — FLOP model used to convert computation into simulated
//!   time.
//!
//! ```
//! use janus_moe::config::ModelPreset;
//! use janus_moe::traffic::r_metric;
//!
//! let m = ModelPreset::MoeBert.config(32);
//! // Paper §7.3: R = 5.33 for MoE-BERT on 32 GPUs.
//! let r = r_metric(m.batch, m.seq_len, m.top_k, 4, m.hidden_dim, 1);
//! assert!((r - 5.33).abs() < 0.01);
//! ```

pub mod config;
pub mod expert;
pub mod flops;
pub mod gate;
pub mod traffic;
pub mod workload;

pub use config::{ModelConfig, ModelPreset};
pub use expert::{ExpertFfn, ExpertScratch};
pub use gate::TopKGate;
pub use workload::{AssignmentMatrix, Imbalance};
