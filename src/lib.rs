//! Janus — a unified distributed training framework for sparse
//! Mixture-of-Experts models (Rust reproduction of the SIGCOMM'23 paper).
//!
//! This facade crate re-exports the workspace members under one roof so
//! examples and downstream users can depend on a single crate:
//!
//! * [`topology`] — cluster model (machines, GPUs, NVLink/PCIe/NIC links).
//! * [`netsim`] — deterministic discrete-event fluid-flow simulator.
//! * [`tensor`] — minimal dense tensor math used by the numerical engines.
//! * [`moe`] — MoE model configs, gate, experts, workloads, analytic
//!   traffic model (Table 1, the `R` metric).
//! * [`comm`] — message-passing runtime (framing, channel/TCP transports,
//!   collectives).
//! * [`core`] — the paper's contribution: the Janus Task Queue, schedulers,
//!   topology-aware priorities, prefetch, paradigm selection, and the
//!   simulation/execution engines.
//! * [`obs`] — span tracing, metrics, and Chrome-trace/Prometheus export
//!   shared by the execution engines, transports, and simulator.
//! * [`lab`] — the experiment DAG runner: manifests, canonical digests,
//!   and bitwise verification of artifacts.
//! * [`serve`] — the inference serving plane: continuous batching,
//!   disaggregated attention/expert workers, gate-driven replica
//!   scaling, and SLO measurement.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use janus_comm as comm;
pub use janus_core as core;
pub use janus_lab as lab;
pub use janus_moe as moe;
pub use janus_netsim as netsim;
pub use janus_obs as obs;
pub use janus_serve as serve;
pub use janus_tensor as tensor;
pub use janus_topology as topology;
