//! Dense tensor library backing the numerical MoE engines.
//!
//! The crate implements exactly what the numerical-equivalence engines
//! need — a row-major [`Matrix`] of `f32`, the matmul variants required
//! for forward and backward passes, activations with exact derivatives,
//! and row-wise softmax for the gate — on a register-blocked, optionally
//! multi-threaded compute substrate ([`linalg`], [`pool`]). The blocked
//! and parallel kernels keep the per-element reduction order of the
//! scalar reference, so every speed tier produces **bitwise identical**
//! results (see [`linalg::matmul_reference`]).
//!
//! Everything is deterministic given a seed; all shapes are checked with
//! panics (shape errors are programming errors, not runtime conditions).
//!
//! ```
//! use janus_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod activation;
pub mod check;
pub mod linalg;
pub mod matrix;
pub mod pool;
pub mod simd;

pub use activation::{
    add_bias_gelu, gelu, gelu_backward, gelu_backward_into, relu, relu_backward, softmax_rows,
};
pub use linalg::matmul_reference;
pub use matrix::Matrix;
