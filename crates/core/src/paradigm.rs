//! Paradigm selection: the unified part of Janus.
//!
//! Janus evaluates the analytic gain `R = BSk/(4nHE)` for every MoE block
//! before training starts (§5.1.3). Blocks with `R > 1` use the
//! data-centric paradigm (move experts), the rest fall back to
//! expert-centric All-to-All (move tokens). §7.5 notes the measured PCIe
//! ceiling makes expert-centric preferable already at `R = 1`, so the
//! threshold is `R > threshold` with `threshold = 1`.

use janus_moe::config::ModelConfig;
use janus_moe::traffic::r_for_block;
use serde::{Deserialize, Serialize};

/// Communication paradigm for one MoE block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Paradigm {
    /// Keep experts in place, All-to-All the tokens.
    ExpertCentric,
    /// Keep tokens in place, pull the experts.
    DataCentric,
}

/// How MoE blocks choose their communication paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParadigmPolicy {
    /// All-to-All everywhere (Janus's expert-centric mode; with
    /// `hierarchical_a2a` it approximates Tutel).
    ExpertCentric,
    /// Pull experts everywhere.
    DataCentric,
    /// Per block by the paper's `R > 1` rule (§5.1.3) — the real Janus.
    Unified,
}

/// The single paradigm-decision site: every consumer (simulator graph
/// building, numerical engines, plan compilation, tooling) routes through
/// this function, so the R-threshold rule has exactly one implementation.
pub fn paradigm_for_block(
    model: &ModelConfig,
    block: usize,
    n_machines: usize,
    m_gpus: usize,
    policy: ParadigmPolicy,
    r_threshold: f64,
) -> Paradigm {
    if !model.blocks[block].is_moe() {
        // Dense blocks have no expert communication; tag them
        // expert-centric (a no-op either way).
        return Paradigm::ExpertCentric;
    }
    match policy {
        ParadigmPolicy::ExpertCentric => Paradigm::ExpertCentric,
        ParadigmPolicy::DataCentric => Paradigm::DataCentric,
        ParadigmPolicy::Unified => {
            choose_with_threshold(model, block, n_machines, m_gpus, r_threshold)
        }
    }
}

/// Paradigm for one block given the cluster shape, using the paper's
/// `R > 1` rule.
pub fn choose_paradigm(
    model: &ModelConfig,
    block: usize,
    n_machines: usize,
    m_gpus: usize,
) -> Paradigm {
    choose_with_threshold(model, block, n_machines, m_gpus, 1.0)
}

/// Paradigm choice with an explicit threshold (exposed for sensitivity
/// studies; the paper uses 1.0).
pub fn choose_with_threshold(
    model: &ModelConfig,
    block: usize,
    n_machines: usize,
    m_gpus: usize,
    threshold: f64,
) -> Paradigm {
    if n_machines <= 1 {
        // A single machine has no cross-node traffic; All-to-All over
        // NVLink beats staging experts through CPU memory.
        return Paradigm::ExpertCentric;
    }
    if r_for_block(model, block, n_machines, m_gpus) > threshold {
        Paradigm::DataCentric
    } else {
        Paradigm::ExpertCentric
    }
}

/// The per-block plan for a whole model.
pub fn paradigm_plan(model: &ModelConfig, n_machines: usize, m_gpus: usize) -> Vec<Paradigm> {
    (0..model.blocks.len())
        .map(|b| paradigm_for_block(model, b, n_machines, m_gpus, ParadigmPolicy::Unified, 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_moe::config::{pr_moe_transformer_xl, ModelPreset};

    #[test]
    fn evaluation_models_pick_data_centric_on_4_machines() {
        for preset in ModelPreset::all() {
            let model = preset.config(32);
            for b in model.moe_blocks() {
                assert_eq!(
                    choose_paradigm(&model, b, 4, 8),
                    Paradigm::DataCentric,
                    "{preset:?} block {b}"
                );
            }
        }
    }

    #[test]
    fn pr_moe_splits_shallow_and_deep_blocks() {
        // On 2×8 machines the shallow blocks (E = 1) have R = 8 and the
        // deep ones (E = 4) R = 2. (The paper quotes R = 4 and R = 1,
        // which correspond to a 4-machine partition of its 16 GPUs; the
        // split is the same.) With the paper's conservative PCIe-ceiling
        // threshold (§7.5, R ≤ 2 stays expert-centric) the deep blocks
        // fall back to All-to-All.
        let model = pr_moe_transformer_xl(16);
        let moe = model.moe_blocks();
        let r = |b: usize| janus_moe::traffic::r_for_block(&model, b, 2, 8);
        assert!((r(moe[0]) - 8.0).abs() < 1e-9);
        assert!((r(moe[3]) - 2.0).abs() < 1e-9);
        assert_eq!(
            choose_with_threshold(&model, moe[0], 2, 8, 2.0),
            Paradigm::DataCentric
        );
        assert_eq!(
            choose_with_threshold(&model, moe[1], 2, 8, 2.0),
            Paradigm::DataCentric
        );
        assert_eq!(
            choose_with_threshold(&model, moe[2], 2, 8, 2.0),
            Paradigm::ExpertCentric
        );
        assert_eq!(
            choose_with_threshold(&model, moe[3], 2, 8, 2.0),
            Paradigm::ExpertCentric
        );

        // Same split on the 32-GPU variant (R = 8 and 2 again, because
        // batch size doubles with machine count).
        let model = pr_moe_transformer_xl(32);
        let moe = model.moe_blocks();
        assert_eq!(
            choose_with_threshold(&model, moe[0], 4, 8, 2.0),
            Paradigm::DataCentric
        );
        assert_eq!(
            choose_with_threshold(&model, moe[3], 4, 8, 2.0),
            Paradigm::ExpertCentric
        );
    }

    #[test]
    fn single_machine_always_expert_centric() {
        let model = ModelPreset::MoeTransformerXl.config(16);
        for b in model.moe_blocks() {
            assert_eq!(choose_paradigm(&model, b, 1, 16), Paradigm::ExpertCentric);
        }
    }

    #[test]
    fn plan_covers_every_block() {
        let model = ModelPreset::MoeBert.config(32);
        let plan = paradigm_plan(&model, 4, 8);
        assert_eq!(plan.len(), model.blocks.len());
        for b in model.moe_blocks() {
            assert_eq!(plan[b], Paradigm::DataCentric);
        }
        // Dense blocks tagged expert-centric.
        assert_eq!(plan[0], Paradigm::ExpertCentric);
    }

    #[test]
    fn policy_dispatch_routes_through_the_threshold_rule() {
        let model = ModelPreset::MoeBert.config(32);
        let b = model.moe_blocks()[0];
        assert_eq!(
            paradigm_for_block(&model, b, 4, 8, ParadigmPolicy::ExpertCentric, 1.0),
            Paradigm::ExpertCentric
        );
        assert_eq!(
            paradigm_for_block(&model, b, 4, 8, ParadigmPolicy::DataCentric, 1.0),
            Paradigm::DataCentric
        );
        assert_eq!(
            paradigm_for_block(&model, b, 4, 8, ParadigmPolicy::Unified, 1.0),
            choose_with_threshold(&model, b, 4, 8, 1.0)
        );
        // Dense blocks are expert-centric under every policy.
        assert_eq!(
            paradigm_for_block(&model, 0, 4, 8, ParadigmPolicy::DataCentric, 1.0),
            Paradigm::ExpertCentric
        );
    }

    #[test]
    fn threshold_is_respected() {
        let model = ModelPreset::MoeBert.config(32); // R = 5.33 on 4 machines
        let b = model.moe_blocks()[0];
        assert_eq!(
            choose_with_threshold(&model, b, 4, 8, 10.0),
            Paradigm::ExpertCentric
        );
        assert_eq!(
            choose_with_threshold(&model, b, 4, 8, 5.0),
            Paradigm::DataCentric
        );
    }
}
