//! Minimal dense tensor library backing the numerical MoE engines.
//!
//! The paper's claims rest on *where* data moves, not on kernel speed, so
//! this crate deliberately implements only what the numerical-equivalence
//! engines need: a row-major [`Matrix`] of `f32`, the matmul variants
//! required for forward and backward passes, activations with exact
//! derivatives, and row-wise softmax for the gate.
//!
//! Everything is deterministic given a seed; all shapes are checked with
//! panics (shape errors are programming errors, not runtime conditions).
//!
//! ```
//! use janus_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod activation;
pub mod check;
pub mod linalg;
pub mod matrix;

pub use activation::{gelu, gelu_backward, relu, relu_backward, softmax_rows};
pub use matrix::Matrix;
