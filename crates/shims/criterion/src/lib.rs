//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! with the same entry points the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`, `sample_size`).
//!
//! No statistical analysis or HTML reports — each benchmark runs
//! `sample_size` timed samples after a short calibration phase and prints
//! the median, min, and max time per iteration.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group; the shim just prefixes benchmark names.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// End the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples. Each sample runs
    /// enough iterations (calibrated once) that timer overhead is
    /// negligible for sub-microsecond routines.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration: run until ~20ms or 50 iterations to estimate cost.
        let cal_start = Instant::now();
        let mut cal_iters = 0u64;
        while cal_iters < 50 && cal_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            cal_iters += 1;
        }
        let est = cal_start.elapsed() / cal_iters.max(1) as u32;

        // Aim for ~10ms per sample, clamped so the whole benchmark stays
        // within a few hundred ms even for very fast routines.
        let per_sample = if est.is_zero() {
            1000
        } else {
            (Duration::from_millis(10).as_nanos() / est.as_nanos().max(1)).clamp(1, 100_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} median {:>12} [min {}, max {}]",
            fmt_dur(median),
            fmt_dur(min),
            fmt_dur(max)
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group; supports both the plain list form and the
/// `name = ...; config = ...; targets = ...` struct form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
