//! Diagnostic: is data-centric training bitwise deterministic run-to-run?

use janus::core::exec::model::ExecConfig;
use janus::core::exec::trainer::train_data_centric;

fn cfg() -> ExecConfig {
    ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 8,
        blocks: 2,
        experts: 8,
        top_k: 2,
        tokens: 12,
        seed: 99,
        lr: 0.03,
    }
}

#[test]
fn dc_is_bitwise_deterministic_run_to_run() {
    let cfg = cfg();
    let a = train_data_centric(&cfg, 3);
    let b = train_data_centric(&cfg, 3);
    assert_eq!(
        a.losses, b.losses,
        "losses differ across identical runs:\n{:?}\n{:?}",
        a.losses, b.losses
    );
    for (ra, rb) in a.experts.iter().zip(&b.experts) {
        for (ba, bb) in ra.iter().zip(rb) {
            for (ea, eb) in ba.iter().zip(bb) {
                assert_eq!(ea.w1.max_abs_diff(&eb.w1), 0.0, "w1 differs");
                assert_eq!(ea.w2.max_abs_diff(&eb.w2), 0.0, "w2 differs");
            }
        }
    }
}
